//! Incremental likelihood evaluation with flip buffers — MrBayes's
//! production mechanism for cheap proposals.
//!
//! Each internal node owns *two* CLV buffers (and two per-node scaler
//! vectors). A proposal recomputes only the invalidated path to the
//! root ([`crate::kernels::plan::PlfPlan::for_update`]), writing into
//! each touched node's inactive buffer and flipping it. Rejection flips
//! the touched nodes back — an O(depth) undo with no data copied —
//! while acceptance simply commits the flips. This is why MrBayes can
//! afford a PLF call per proposal, and it is the mechanism that makes
//! the number of *calls* to the parallel section (rather than raw
//! flops) the quantity the paper's scalability study stresses.

use crate::alignment::PatternAlignment;
use crate::clv::{Clv, TransitionMatrices};
use crate::dna::N_STATES;
use crate::kernels::plan::{PlfOp, PlfPlan};
use crate::kernels::PlfBackend;
use crate::likelihood::LikelihoodError;
use crate::model::SiteModel;
use crate::tree::{NodeId, Tree};
use std::collections::HashMap;

/// Double-buffered incremental tree-likelihood evaluator.
pub struct IncrementalLikelihood {
    model: SiteModel,
    n_patterns: usize,
    weights: Vec<f64>,
    /// Tip CLVs (immutable, single-buffered).
    tips: Vec<Option<Clv>>,
    /// Internal-node CLV pairs.
    bufs: Vec<Option<[Clv; 2]>>,
    /// Per-pattern constant-state masks (for the +I likelihood term).
    const_masks: Vec<u8>,
    /// Internal-node per-pattern log-scaler pairs.
    scaler_bufs: Vec<Option<[Vec<f32>; 2]>>,
    /// Which buffer of each pair is live.
    active: Vec<u8>,
    /// Nodes flipped by the in-flight proposal (for reject/accept).
    pending: Vec<NodeId>,
    /// Kernel calls issued by the most recent plan (for run statistics).
    last_calls: usize,
    root: NodeId,
}

impl IncrementalLikelihood {
    /// Build the double-buffered workspace for `tree` over `data`.
    pub fn new(
        tree: &Tree,
        data: &PatternAlignment,
        model: SiteModel,
    ) -> Result<IncrementalLikelihood, LikelihoodError> {
        tree.validate()?;
        let n_patterns = data.n_patterns();
        let n_rates = model.n_rates();
        let taxon_index: HashMap<&str, usize> = data
            .taxa()
            .iter()
            .enumerate()
            .map(|(i, t)| (t.as_str(), i))
            .collect();
        let mut tips = Vec::with_capacity(tree.n_nodes());
        let mut bufs = Vec::with_capacity(tree.n_nodes());
        let mut scaler_bufs = Vec::with_capacity(tree.n_nodes());
        for id in tree.node_ids() {
            let node = tree.node(id);
            if node.is_leaf() {
                let name = node.name.as_deref().expect("validated leaf has a name");
                let &t = taxon_index
                    .get(name)
                    .ok_or_else(|| LikelihoodError::UnknownTaxon(name.to_string()))?;
                tips.push(Some(Clv::tip(data.taxon_patterns(t), n_rates)));
                bufs.push(None);
                scaler_bufs.push(None);
            } else {
                tips.push(None);
                bufs.push(Some([
                    Clv::zeroed(n_patterns, n_rates),
                    Clv::zeroed(n_patterns, n_rates),
                ]));
                scaler_bufs.push(Some([vec![0.0; n_patterns], vec![0.0; n_patterns]]));
            }
        }
        Ok(IncrementalLikelihood {
            model,
            n_patterns,
            weights: data.weights().iter().map(|&w| w as f64).collect(),
            tips,
            bufs,
            const_masks: data.constant_masks(),
            scaler_bufs,
            active: vec![0; tree.n_nodes()],
            pending: Vec::new(),
            last_calls: 0,
            root: tree.root(),
        })
    }

    /// The site model in use.
    pub fn model(&self) -> &SiteModel {
        &self.model
    }

    /// Replace the model. The next evaluation must be a
    /// [`IncrementalLikelihood::full_evaluate`] (every CLV is stale).
    pub fn set_model(&mut self, model: SiteModel) {
        assert_eq!(model.n_rates(), self.model.n_rates());
        self.model = model;
    }

    /// Is a proposal currently uncommitted?
    pub fn has_pending(&self) -> bool {
        !self.pending.is_empty()
    }

    fn active_clv(&self, tree: &Tree, id: NodeId) -> &Clv {
        if tree.node(id).is_leaf() {
            self.tips[id.0].as_ref().expect("tip CLV present")
        } else {
            &self.bufs[id.0].as_ref().expect("internal buffers present")[self.active[id.0] as usize]
        }
    }

    /// Run `plan`, writing each touched node's results into its inactive
    /// buffer and flipping it; returns the resulting log-likelihood.
    ///
    /// On a backend error the flips made so far stay pending, so the
    /// caller can [`IncrementalLikelihood::reject`] to roll back to the
    /// pre-proposal state.
    fn run_plan(
        &mut self,
        tree: &Tree,
        plan: &PlfPlan,
        backend: &mut dyn PlfBackend,
    ) -> Result<f64, LikelihoodError> {
        assert!(
            self.pending.is_empty(),
            "previous proposal not accepted/rejected"
        );
        self.last_calls = plan.n_calls();
        backend.begin_evaluation();
        // Transition matrices for the children of recomputed nodes only.
        let mut tm_cache: HashMap<NodeId, TransitionMatrices> = HashMap::new();
        let mut tm = |model: &SiteModel, tree: &Tree, id: NodeId| -> TransitionMatrices {
            tm_cache
                .entry(id)
                .or_insert_with(|| model.transition_matrices(tree.node(id).branch))
                .clone()
        };
        for op in plan.ops() {
            match op {
                PlfOp::Down { node, left, right } => {
                    self.flip(*node);
                    let p_l = tm(&self.model, tree, *left);
                    let p_r = tm(&self.model, tree, *right);
                    let mut out = self.take_active(*node);
                    let result = {
                        let l = self.active_clv(tree, *left);
                        let r = self.active_clv(tree, *right);
                        backend.cond_like_down(l, &p_l, r, &p_r, &mut out)
                    };
                    // Restore the buffer slot before propagating any
                    // error, or the workspace is poisoned.
                    self.put_active(*node, out);
                    result?;
                }
                PlfOp::Root { node, children } => {
                    self.flip(*node);
                    let p_a = tm(&self.model, tree, children[0]);
                    let p_b = tm(&self.model, tree, children[1]);
                    let p_c = children.get(2).map(|&c| tm(&self.model, tree, c));
                    let mut out = self.take_active(*node);
                    let result = {
                        let a = self.active_clv(tree, children[0]);
                        let b = self.active_clv(tree, children[1]);
                        let c = children
                            .get(2)
                            .map(|&c3| (self.active_clv(tree, c3), p_c.as_ref().unwrap()));
                        backend.cond_like_root(a, &p_a, b, &p_b, c, &mut out)
                    };
                    self.put_active(*node, out);
                    result?;
                }
                PlfOp::Scale { node } => {
                    // The node was just recomputed (and flipped); its
                    // active scaler buffer gets this evaluation's values.
                    let a = self.active[node.0] as usize;
                    let mut clv = self.take_active(*node);
                    let scalers = &mut self.scaler_bufs[node.0]
                        .as_mut()
                        .expect("internal node has scalers")[a];
                    scalers.iter_mut().for_each(|s| *s = 0.0);
                    let result = backend.cond_like_scaler(&mut clv, scalers);
                    self.put_active(*node, clv);
                    result?;
                }
            }
        }
        Ok(self.integrate_root())
    }

    /// Flip `node` to its inactive buffer, recording it as pending, and
    /// carry the old scaler values over (a node recomputed *without* a
    /// Scale op keeps contributing its previous scalers — matching a
    /// scale-free plan).
    fn flip(&mut self, node: NodeId) {
        let old = self.active[node.0] as usize;
        let new = old ^ 1;
        // Carry scalers so an unscaled recompute keeps the old values.
        let pair = self.scaler_bufs[node.0].as_mut().expect("internal node");
        let (src, dst) = if old == 0 {
            let (a, b) = pair.split_at_mut(1);
            (&a[0], &mut b[0])
        } else {
            let (a, b) = pair.split_at_mut(1);
            (&b[0], &mut a[0])
        };
        dst.copy_from_slice(src);
        self.active[node.0] = new as u8;
        self.pending.push(node);
    }

    fn take_active(&mut self, node: NodeId) -> Clv {
        let a = self.active[node.0] as usize;
        let pair = self.bufs[node.0].as_mut().expect("internal node");
        std::mem::replace(&mut pair[a], Clv::zeroed(0, 1))
    }

    fn put_active(&mut self, node: NodeId, clv: Clv) {
        let a = self.active[node.0] as usize;
        self.bufs[node.0].as_mut().expect("internal node")[a] = clv;
    }

    fn integrate_root(&self) -> f64 {
        let root_clv = &self.bufs[self.root.0].as_ref().expect("root is internal")
            [self.active[self.root.0] as usize];
        let n_rates = self.model.n_rates();
        let freqs = self.model.freqs();
        let cat_weight = 1.0 / n_rates as f64;
        // Per-pattern scaler sum across all internal nodes' active buffers.
        let mut scaler_sum = vec![0.0f64; self.n_patterns];
        for (id, pair) in self.scaler_bufs.iter().enumerate() {
            if let Some(pair) = pair {
                let s = &pair[self.active[id] as usize];
                for (acc, &v) in scaler_sum.iter_mut().zip(s) {
                    *acc += v as f64;
                }
            }
        }
        let pinvar = self.model.pinvar();
        let mut lnl = 0.0f64;
        for i in 0..self.n_patterns {
            let mut site = 0.0f64;
            for k in 0..n_rates {
                let e = root_clv.entry(i, k);
                let mut acc = 0.0f64;
                for s in 0..N_STATES {
                    acc += freqs[s] * e[s] as f64;
                }
                site += cat_weight * acc;
            }
            let inv = crate::likelihood::invariant_support(self.const_masks[i], &freqs);
            lnl += self.weights[i]
                * crate::likelihood::ln_site_likelihood(site, scaler_sum[i], pinvar, inv);
        }
        lnl
    }

    /// Full evaluation: recompute every internal CLV and commit.
    pub fn full_evaluate(
        &mut self,
        tree: &Tree,
        backend: &mut dyn PlfBackend,
    ) -> Result<f64, LikelihoodError> {
        let plan = PlfPlan::for_tree(tree, 1)?;
        let lnl = self.run_plan(tree, &plan, backend);
        match lnl {
            Ok(lnl) => {
                self.accept();
                Ok(lnl)
            }
            Err(e) => {
                // Roll the half-applied sweep back so the workspace
                // still holds the previous consistent state.
                self.reject();
                Err(e)
            }
        }
    }

    /// Partial evaluation of a proposal that dirtied `dirty` (changed
    /// branches / NNI endpoints). Leaves the flips pending: call
    /// [`IncrementalLikelihood::accept`] or
    /// [`IncrementalLikelihood::reject`] afterwards.
    pub fn propose(
        &mut self,
        tree: &Tree,
        dirty: &[NodeId],
        backend: &mut dyn PlfBackend,
    ) -> Result<f64, LikelihoodError> {
        let plan = PlfPlan::for_update(tree, dirty, true)?;
        self.run_plan(tree, &plan, backend)
    }

    /// Like [`IncrementalLikelihood::propose`], but recomputing the
    /// whole tree (model-parameter moves invalidate every CLV) while
    /// staying rejectable.
    pub fn propose_full(
        &mut self,
        tree: &Tree,
        backend: &mut dyn PlfBackend,
    ) -> Result<f64, LikelihoodError> {
        let plan = PlfPlan::for_tree(tree, 1)?;
        self.run_plan(tree, &plan, backend)
    }

    /// Commit the pending proposal.
    pub fn accept(&mut self) {
        self.pending.clear();
    }

    /// Undo the pending proposal: every touched node flips back to the
    /// buffer holding the previous state.
    pub fn reject(&mut self) {
        for node in self.pending.drain(..) {
            self.active[node.0] ^= 1;
        }
    }

    /// Kernel calls a partial plan would issue (for stats).
    pub fn plan_calls(tree: &Tree, dirty: &[NodeId]) -> usize {
        PlfPlan::for_update(tree, dirty, true).map_or(0, |p| p.n_calls())
    }

    /// Kernel calls issued by the most recent evaluation.
    pub fn last_calls(&self) -> usize {
        self.last_calls
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alignment::Alignment;
    use crate::kernels::ScalarBackend;
    use crate::likelihood::TreeLikelihood;
    use crate::model::GtrParams;

    fn setup() -> (Tree, PatternAlignment, SiteModel) {
        let tree = Tree::from_newick(
            "(((a:0.1,b:0.15):0.1,(c:0.2,d:0.1):0.05):0.1,(e:0.1,f:0.3):0.1,g:0.2);",
        )
        .unwrap();
        let aln = Alignment::from_strings(&[
            ("a", "ACGTACGTAAGGCCTTAGCA"),
            ("b", "ACGTACGTACGGCCTTAGCA"),
            ("c", "ACGAACGTTAGGCCTAAGCA"),
            ("d", "ACTTACGTAAGGCGTTAGCA"),
            ("e", "ACGTACGTAAGGCCTTAGCC"),
            ("f", "ACGTTCGTAAGGCCTTAGCA"),
            ("g", "AGGTACGTAAGGCCTTAGCA"),
        ])
        .unwrap()
        .compress();
        let model = SiteModel::gtr_gamma4(GtrParams::hky85(2.0, [0.3, 0.2, 0.2, 0.3]), 0.6).unwrap();
        (tree, aln, model)
    }

    #[test]
    fn full_evaluate_matches_simple_evaluator() {
        let (tree, aln, model) = setup();
        let mut inc = IncrementalLikelihood::new(&tree, &aln, model.clone()).unwrap();
        let a = inc.full_evaluate(&tree, &mut ScalarBackend).unwrap();
        let mut simple = TreeLikelihood::new(&tree, &aln, model).unwrap();
        let b = simple.log_likelihood(&tree, &mut ScalarBackend).unwrap();
        // Scaler contributions are summed in a different order (per-node
        // vectors vs one running vector), so agreement is to float
        // accumulation tolerance, not bitwise.
        assert!((a - b).abs() < b.abs() * 1e-8 + 1e-6, "{a} vs {b}");
    }

    #[test]
    fn partial_update_matches_full_recompute() {
        let (mut tree, aln, model) = setup();
        let mut inc = IncrementalLikelihood::new(&tree, &aln, model.clone()).unwrap();
        inc.full_evaluate(&tree, &mut ScalarBackend).unwrap();
        // Change one branch and compare partial vs from-scratch.
        let victim = tree.branches()[2];
        tree.node_mut(victim).branch *= 1.7;
        let partial = inc.propose(&tree, &[victim], &mut ScalarBackend).unwrap();
        inc.accept();
        let mut fresh = IncrementalLikelihood::new(&tree, &aln, model).unwrap();
        let full = fresh.full_evaluate(&tree, &mut ScalarBackend).unwrap();
        assert!((partial - full).abs() < 1e-6, "partial {partial} vs full {full}");
    }

    #[test]
    fn reject_restores_previous_state_exactly() {
        let (mut tree, aln, model) = setup();
        let mut inc = IncrementalLikelihood::new(&tree, &aln, model).unwrap();
        let before = inc.full_evaluate(&tree, &mut ScalarBackend).unwrap();
        let victim = tree.branches()[0];
        let old_branch = tree.node(victim).branch;
        tree.node_mut(victim).branch *= 3.0;
        let during = inc.propose(&tree, &[victim], &mut ScalarBackend).unwrap();
        assert_ne!(before, during);
        inc.reject();
        tree.node_mut(victim).branch = old_branch;
        // Re-proposing a no-op change must give exactly the old value.
        let after = inc.propose(&tree, &[victim], &mut ScalarBackend).unwrap();
        inc.accept();
        assert_eq!(before, after, "reject failed to restore state");
    }

    #[test]
    fn nni_partial_update_matches_full() {
        let (mut tree, aln, model) = setup();
        let mut inc = IncrementalLikelihood::new(&tree, &aln, model.clone()).unwrap();
        inc.full_evaluate(&tree, &mut ScalarBackend).unwrap();
        let (p, c) = tree.internal_edges()[0];
        tree.nni(p, c, 0, 0).unwrap();
        let partial = inc.propose(&tree, &[p, c], &mut ScalarBackend).unwrap();
        inc.accept();
        let mut fresh = IncrementalLikelihood::new(&tree, &aln, model).unwrap();
        let full = fresh.full_evaluate(&tree, &mut ScalarBackend).unwrap();
        assert!((partial - full).abs() < 1e-6, "{partial} vs {full}");
    }

    #[test]
    fn accept_then_more_proposals() {
        let (mut tree, aln, model) = setup();
        let mut inc = IncrementalLikelihood::new(&tree, &aln, model.clone()).unwrap();
        inc.full_evaluate(&tree, &mut ScalarBackend).unwrap();
        let mut last = 0.0;
        for (i, victim) in tree.branches().into_iter().take(5).enumerate() {
            tree.node_mut(victim).branch *= if i % 2 == 0 { 1.3 } else { 0.8 };
            last = inc.propose(&tree, &[victim], &mut ScalarBackend).unwrap();
            inc.accept();
        }
        let mut fresh = IncrementalLikelihood::new(&tree, &aln, model).unwrap();
        let full = fresh.full_evaluate(&tree, &mut ScalarBackend).unwrap();
        assert!((last - full).abs() < 1e-6, "{last} vs {full}");
    }

    #[test]
    fn double_propose_without_commit_panics() {
        let (tree, aln, model) = setup();
        let mut inc = IncrementalLikelihood::new(&tree, &aln, model).unwrap();
        inc.full_evaluate(&tree, &mut ScalarBackend).unwrap();
        let victim = tree.branches()[0];
        inc.propose(&tree, &[victim], &mut ScalarBackend).unwrap();
        assert!(inc.has_pending());
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _ = inc.propose(&tree, &[victim], &mut ScalarBackend);
        }));
        assert!(result.is_err(), "second propose without accept/reject must panic");
    }

    #[test]
    fn partial_plans_are_much_smaller() {
        let (tree, _, _) = setup();
        let leaf = tree.leaves()[0];
        let partial = IncrementalLikelihood::plan_calls(&tree, &[leaf]);
        let full = PlfPlan::for_tree(&tree, 1).unwrap().n_calls();
        assert!(partial < full, "{partial} !< {full}");
    }
}

//! Deterministic, seeded fault injection.
//!
//! A [`FaultInjector`] is shared (via `Arc`) between a test harness and
//! one or more backends. Backends consult it at well-defined *sites* —
//! kernel output, DMA transfer, PCIe transfer, kernel launch, worker
//! body — and the injector decides, deterministically, whether that
//! occasion fails. Two trigger mechanisms exist:
//!
//! * **scheduled** one-shot faults: "the 3rd DMA transfer fails" —
//!   exact and consumed once, so a retry of the same call succeeds;
//! * **rate-based** faults: every roll at a site fails with probability
//!   `p`, decided by hashing `(seed, site, roll index)` — independent
//!   of thread interleaving, so concurrent backends stay reproducible
//!   in *which* roll numbers fire even when threads race.
//!
//! The environment knobs `PLF_FAULT_SEED`, `PLF_FAULT_CORRUPT_RATE`,
//! `PLF_FAULT_DMA_RATE`, `PLF_FAULT_PCIE_RATE`, `PLF_FAULT_LAUNCH_RATE`,
//! `PLF_FAULT_PANIC_RATE`, `PLF_FAULT_WORKER_KILL_RATE` and
//! `PLF_FAULT_BLACKOUT_RATE` build an injector without code changes
//! (see [`FaultInjector::from_env`]).
//!
//! The last two sites are *service-level*: they are consulted by the
//! `plfd` dispatch layer rather than by a backend. A worker-kill roll
//! makes a dispatch worker thread die before its next job (exercising
//! the watchdog respawn path); a blackout roll makes a worker's backend
//! refuse a run of consecutive jobs (exercising the circuit breaker).

use std::sync::Mutex;

/// Where in a backend a fault can be injected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultSite {
    /// The CLV a kernel wrote (corruption).
    KernelOutput,
    /// A Cell/BE DMA command.
    DmaTransfer,
    /// A GPU PCIe transfer.
    PcieTransfer,
    /// A GPU kernel launch.
    KernelLaunch,
    /// A thread-pool worker body (injected panic).
    Worker,
    /// A `plfd` dispatch worker thread dying outright (service-level;
    /// exercises the watchdog respawn path).
    WorkerKill,
    /// A `plfd` worker's backend going dark for a run of jobs
    /// (service-level; exercises the circuit breaker).
    BackendBlackout,
}

impl FaultSite {
    fn index(self) -> usize {
        match self {
            FaultSite::KernelOutput => 0,
            FaultSite::DmaTransfer => 1,
            FaultSite::PcieTransfer => 2,
            FaultSite::KernelLaunch => 3,
            FaultSite::Worker => 4,
            FaultSite::WorkerKill => 5,
            FaultSite::BackendBlackout => 6,
        }
    }
}

const N_SITES: usize = 7;

/// A `PLF_FAULT_*` environment variable held a value that cannot
/// configure fault injection (unparsable, or a probability outside
/// `[0, 1]`). Surfaced by [`FaultInjector::from_env`] so a typo fails
/// loudly instead of silently disarming the injector.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultEnvError {
    /// The offending variable name.
    pub var: &'static str,
    /// Its raw value as found in the environment.
    pub value: String,
    /// Why it was rejected.
    pub reason: String,
}

impl std::fmt::Display for FaultEnvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "invalid fault-injection knob {}={:?}: {}",
            self.var, self.value, self.reason
        )
    }
}

impl std::error::Error for FaultEnvError {}

/// Flavor of value written into a corrupted CLV entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CorruptionKind {
    /// `f32::NAN`.
    Nan,
    /// `f32::INFINITY`.
    Inf,
    /// A subnormal `f32` (silent-precision-loss class; only caught by a
    /// strict validation policy).
    Denormal,
}

impl CorruptionKind {
    /// The poisoned value itself.
    pub fn value(self) -> f32 {
        match self {
            CorruptionKind::Nan => f32::NAN,
            CorruptionKind::Inf => f32::INFINITY,
            CorruptionKind::Denormal => 1e-41,
        }
    }
}

#[derive(Debug, Clone)]
struct Scheduled {
    site: FaultSite,
    at_roll: u64,
    corruption: CorruptionKind,
    armed: bool,
}

#[derive(Debug, Default)]
struct Inner {
    /// Rolls seen per site.
    counters: [u64; N_SITES],
    scheduled: Vec<Scheduled>,
    /// `(site, probability, corruption flavor)` rate rules.
    rates: Vec<(FaultSite, f64, CorruptionKind)>,
    fired: u64,
}

/// Deterministic seeded fault source, shared between harness and
/// backends via `Arc<FaultInjector>`.
#[derive(Debug)]
pub struct FaultInjector {
    seed: u64,
    inner: Mutex<Inner>,
}

fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl FaultInjector {
    /// A quiet injector (no faults until scheduled or rated).
    pub fn new(seed: u64) -> FaultInjector {
        FaultInjector {
            seed,
            inner: Mutex::new(Inner::default()),
        }
    }

    /// Schedule a one-shot fault: the `at_roll`-th roll (0-based) at
    /// `site` fails, exactly once. For [`FaultSite::KernelOutput`] the
    /// corruption flavor is NaN; use
    /// [`FaultInjector::schedule_corruption`] to choose another.
    pub fn schedule(self, site: FaultSite, at_roll: u64) -> FaultInjector {
        self.schedule_with(site, at_roll, CorruptionKind::Nan)
    }

    /// Schedule a one-shot output corruption with an explicit flavor.
    pub fn schedule_corruption(self, at_roll: u64, flavor: CorruptionKind) -> FaultInjector {
        self.schedule_with(FaultSite::KernelOutput, at_roll, flavor)
    }

    fn schedule_with(self, site: FaultSite, at_roll: u64, flavor: CorruptionKind) -> FaultInjector {
        self.inner.lock().expect("injector lock").scheduled.push(Scheduled {
            site,
            at_roll,
            corruption: flavor,
            armed: true,
        });
        self
    }

    /// Add a rate rule: each roll at `site` fails with probability `p`.
    pub fn with_rate(self, site: FaultSite, p: f64) -> FaultInjector {
        self.with_rate_flavor(site, p, CorruptionKind::Nan)
    }

    /// Rate rule with an explicit corruption flavor (output site only).
    pub fn with_rate_flavor(self, site: FaultSite, p: f64, flavor: CorruptionKind) -> FaultInjector {
        assert!((0.0..=1.0).contains(&p), "rate {p} outside [0, 1]");
        self.inner.lock().expect("injector lock").rates.push((site, p, flavor));
        self
    }

    /// Build an injector from `PLF_FAULT_*` environment variables, or
    /// `Ok(None)` when no knob is set. `PLF_FAULT_SEED` defaults to 0;
    /// `PLF_FAULT_{CORRUPT,DMA,PCIE,LAUNCH,PANIC}_RATE` set per-site
    /// probabilities in `[0, 1]`.
    ///
    /// A malformed or out-of-range value is an error, not a silently
    /// disarmed knob: a typo like `PLF_FAULT_DMA_RATE=0,5` used to turn
    /// fault injection off with no signal at all.
    pub fn from_env() -> Result<Option<FaultInjector>, FaultEnvError> {
        FaultInjector::from_env_with(|name| std::env::var(name).ok())
    }

    /// [`FaultInjector::from_env`] over an arbitrary variable source, so
    /// parsing is testable without mutating the process environment.
    pub fn from_env_with(
        lookup: impl Fn(&str) -> Option<String>,
    ) -> Result<Option<FaultInjector>, FaultEnvError> {
        let rate = |name: &'static str| -> Result<Option<f64>, FaultEnvError> {
            let Some(raw) = lookup(name) else {
                return Ok(None);
            };
            let p: f64 = raw.parse().map_err(|_| FaultEnvError {
                var: name,
                value: raw.clone(),
                reason: "not a number".into(),
            })?;
            if !(0.0..=1.0).contains(&p) {
                return Err(FaultEnvError {
                    var: name,
                    value: raw,
                    reason: "probability outside [0, 1]".into(),
                });
            }
            Ok(Some(p))
        };
        let seed = match lookup("PLF_FAULT_SEED") {
            None => None,
            Some(raw) => Some(raw.parse::<u64>().map_err(|_| FaultEnvError {
                var: "PLF_FAULT_SEED",
                value: raw,
                reason: "not an unsigned integer".into(),
            })?),
        };
        let knobs = [
            (FaultSite::KernelOutput, rate("PLF_FAULT_CORRUPT_RATE")?),
            (FaultSite::DmaTransfer, rate("PLF_FAULT_DMA_RATE")?),
            (FaultSite::PcieTransfer, rate("PLF_FAULT_PCIE_RATE")?),
            (FaultSite::KernelLaunch, rate("PLF_FAULT_LAUNCH_RATE")?),
            (FaultSite::Worker, rate("PLF_FAULT_PANIC_RATE")?),
            (FaultSite::WorkerKill, rate("PLF_FAULT_WORKER_KILL_RATE")?),
            (FaultSite::BackendBlackout, rate("PLF_FAULT_BLACKOUT_RATE")?),
        ];
        if seed.is_none() && knobs.iter().all(|(_, p)| p.is_none()) {
            return Ok(None);
        }
        let mut inj = FaultInjector::new(seed.unwrap_or(0));
        for (site, p) in knobs {
            if let Some(p) = p {
                inj = inj.with_rate(site, p);
            }
        }
        Ok(Some(inj))
    }

    /// Roll at a non-output site; `true` means the occasion fails.
    pub fn fire(&self, site: FaultSite) -> bool {
        self.decide(site).is_some()
    }

    /// Roll at the kernel-output site; `Some(flavor)` means corrupt.
    pub fn fire_corruption(&self) -> Option<CorruptionKind> {
        self.decide(FaultSite::KernelOutput)
    }

    fn decide(&self, site: FaultSite) -> Option<CorruptionKind> {
        let mut inner = self.inner.lock().expect("injector lock");
        let roll = inner.counters[site.index()];
        inner.counters[site.index()] += 1;
        // Scheduled one-shots take priority and are consumed.
        if let Some(s) = inner
            .scheduled
            .iter_mut()
            .find(|s| s.armed && s.site == site && s.at_roll == roll)
        {
            s.armed = false;
            let flavor = s.corruption;
            inner.fired += 1;
            return Some(flavor);
        }
        // Rate rules: hash (seed, site, roll) so the decision depends
        // only on the roll index, never on thread interleaving.
        let rates: Vec<(f64, CorruptionKind)> = inner
            .rates
            .iter()
            .filter(|(s, _, _)| *s == site)
            .map(|&(_, p, f)| (p, f))
            .collect();
        for (p, flavor) in rates {
            let h = splitmix64(self.seed ^ ((site.index() as u64) << 56) ^ roll);
            let u = (h >> 11) as f64 / (1u64 << 53) as f64;
            if u < p {
                inner.fired += 1;
                return Some(flavor);
            }
        }
        None
    }

    /// Corrupt a handful of entries of `out` with `flavor`, at positions
    /// derived deterministically from the seed and the fire count.
    pub fn corrupt(&self, out: &mut [f32], flavor: CorruptionKind) {
        if out.is_empty() {
            return;
        }
        let salt = self.inner.lock().expect("injector lock").fired;
        let n = 1 + (splitmix64(self.seed ^ salt) % 3) as usize;
        for k in 0..n {
            let idx = splitmix64(self.seed ^ salt ^ ((k as u64) << 32)) as usize % out.len();
            out[idx] = flavor.value();
        }
    }

    /// Faults fired so far (for test assertions).
    pub fn fired(&self) -> u64 {
        self.inner.lock().expect("injector lock").fired
    }

    /// Rolls observed at `site` so far.
    pub fn rolls(&self, site: FaultSite) -> u64 {
        self.inner.lock().expect("injector lock").counters[site.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quiet_injector_never_fires() {
        let inj = FaultInjector::new(1);
        for _ in 0..100 {
            assert!(!inj.fire(FaultSite::DmaTransfer));
            assert!(inj.fire_corruption().is_none());
        }
        assert_eq!(inj.fired(), 0);
    }

    #[test]
    fn scheduled_fault_fires_exactly_once() {
        let inj = FaultInjector::new(7).schedule(FaultSite::KernelLaunch, 2);
        let fired: Vec<bool> = (0..5).map(|_| inj.fire(FaultSite::KernelLaunch)).collect();
        assert_eq!(fired, vec![false, false, true, false, false]);
        assert_eq!(inj.fired(), 1);
    }

    #[test]
    fn sites_count_independently() {
        let inj = FaultInjector::new(7).schedule(FaultSite::DmaTransfer, 0);
        assert!(!inj.fire(FaultSite::PcieTransfer));
        assert!(inj.fire(FaultSite::DmaTransfer));
        assert_eq!(inj.rolls(FaultSite::PcieTransfer), 1);
        assert_eq!(inj.rolls(FaultSite::DmaTransfer), 1);
    }

    #[test]
    fn rate_decisions_are_deterministic_in_roll_index() {
        let a = FaultInjector::new(3).with_rate(FaultSite::Worker, 0.5);
        let b = FaultInjector::new(3).with_rate(FaultSite::Worker, 0.5);
        let fa: Vec<bool> = (0..200).map(|_| a.fire(FaultSite::Worker)).collect();
        let fb: Vec<bool> = (0..200).map(|_| b.fire(FaultSite::Worker)).collect();
        assert_eq!(fa, fb);
        let hits = fa.iter().filter(|&&x| x).count();
        assert!(hits > 50 && hits < 150, "rate 0.5 fired {hits}/200");
    }

    #[test]
    fn rate_one_always_fires_rate_zero_never() {
        let hot = FaultInjector::new(9).with_rate(FaultSite::DmaTransfer, 1.0);
        let cold = FaultInjector::new(9).with_rate(FaultSite::DmaTransfer, 0.0);
        for _ in 0..20 {
            assert!(hot.fire(FaultSite::DmaTransfer));
            assert!(!cold.fire(FaultSite::DmaTransfer));
        }
    }

    #[test]
    fn corruption_poisons_entries() {
        let inj = FaultInjector::new(11).schedule_corruption(0, CorruptionKind::Nan);
        let flavor = inj.fire_corruption().expect("scheduled");
        let mut data = vec![0.5f32; 64];
        inj.corrupt(&mut data, flavor);
        assert!(data.iter().any(|v| v.is_nan()));
    }

    #[test]
    fn denormal_value_is_subnormal() {
        let v = CorruptionKind::Denormal.value();
        assert!(v.is_subnormal());
        assert!(CorruptionKind::Inf.value().is_infinite());
    }

    #[test]
    fn from_env_without_knobs_is_none() {
        // The test environment does not set PLF_FAULT_*.
        assert!(FaultInjector::from_env().unwrap().is_none());
    }

    #[test]
    fn from_env_with_empty_lookup_is_none() {
        assert!(FaultInjector::from_env_with(|_| None).unwrap().is_none());
    }

    #[test]
    fn from_env_builds_injector_from_knobs() {
        let inj = FaultInjector::from_env_with(|name| match name {
            "PLF_FAULT_SEED" => Some("42".into()),
            "PLF_FAULT_DMA_RATE" => Some("1.0".into()),
            _ => None,
        })
        .unwrap()
        .expect("knobs set");
        assert!(inj.fire(FaultSite::DmaTransfer));
        assert!(!inj.fire(FaultSite::PcieTransfer));
    }

    #[test]
    fn from_env_seed_alone_arms_a_quiet_injector() {
        let inj = FaultInjector::from_env_with(|name| {
            (name == "PLF_FAULT_SEED").then(|| "7".to_string())
        })
        .unwrap()
        .expect("seed set");
        assert!(!inj.fire(FaultSite::Worker));
    }

    #[test]
    fn from_env_builds_service_level_sites() {
        let inj = FaultInjector::from_env_with(|name| match name {
            "PLF_FAULT_WORKER_KILL_RATE" => Some("1.0".into()),
            "PLF_FAULT_BLACKOUT_RATE" => Some("1.0".into()),
            _ => None,
        })
        .unwrap()
        .expect("knobs set");
        assert!(inj.fire(FaultSite::WorkerKill));
        assert!(inj.fire(FaultSite::BackendBlackout));
        // Backend-level sites stay quiet.
        assert!(!inj.fire(FaultSite::DmaTransfer));
    }

    #[test]
    fn service_sites_count_independently_of_backend_sites() {
        let inj = FaultInjector::new(13).schedule(FaultSite::WorkerKill, 0);
        assert!(!inj.fire(FaultSite::Worker));
        assert!(inj.fire(FaultSite::WorkerKill));
        assert_eq!(inj.rolls(FaultSite::Worker), 1);
        assert_eq!(inj.rolls(FaultSite::WorkerKill), 1);
        assert_eq!(inj.rolls(FaultSite::BackendBlackout), 0);
    }

    #[test]
    fn from_env_rejects_unparsable_rate() {
        // The old implementation swallowed this typo ("0,5" for "0.5")
        // and silently disabled injection.
        let err = FaultInjector::from_env_with(|name| {
            (name == "PLF_FAULT_DMA_RATE").then(|| "0,5".to_string())
        })
        .unwrap_err();
        assert_eq!(err.var, "PLF_FAULT_DMA_RATE");
        assert_eq!(err.value, "0,5");
        assert!(err.to_string().contains("not a number"), "{err}");
    }

    #[test]
    fn from_env_rejects_out_of_range_rate() {
        let err = FaultInjector::from_env_with(|name| {
            (name == "PLF_FAULT_CORRUPT_RATE").then(|| "1.5".to_string())
        })
        .unwrap_err();
        assert_eq!(err.var, "PLF_FAULT_CORRUPT_RATE");
        assert!(err.to_string().contains("outside [0, 1]"), "{err}");
    }

    #[test]
    fn from_env_rejects_bad_seed() {
        let err = FaultInjector::from_env_with(|name| {
            (name == "PLF_FAULT_SEED").then(|| "-1".to_string())
        })
        .unwrap_err();
        assert_eq!(err.var, "PLF_FAULT_SEED");
        assert!(err.to_string().contains("unsigned"), "{err}");
    }
}

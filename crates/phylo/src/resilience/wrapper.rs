//! The resilient execution wrapper: validate → retry → degrade.
//!
//! [`ResilientBackend`] owns an ordered chain of backends (the caller
//! composes it, typically gpu → multicore → scalar) and implements
//! [`PlfBackend`] itself, so the likelihood evaluators and the MCMC
//! driver need no changes to run under it. Every kernel call is
//!
//! 1. executed on the *active* tier under `catch_unwind`, so a worker
//!    panic becomes a [`PlfError::WorkerPanic`] instead of tearing down
//!    the chain;
//! 2. validated: all written CLV entries (and scaler entries) must be
//!    finite, optionally rejecting subnormals;
//! 3. on failure, retried on the same tier up to
//!    [`RetryPolicy::max_retries`] times with bounded exponential
//!    backoff, then the wrapper *degrades* to the next tier;
//! 4. recorded in a [`ResilienceReport`].
//!
//! `CondLikeScaler` mutates its CLV in place and accumulates into the
//! scaler vector, so it is **not** idempotent; the wrapper snapshots
//! both before the first attempt and restores them before every
//! re-attempt. `CondLikeDown`/`CondLikeRoot` fully overwrite their
//! output, so they retry without restoration.

use super::error::{panic_message, PlfError, PlfOpKind};
use crate::clv::{Clv, TransitionMatrices};
use crate::kernels::PlfBackend;
use crate::metrics::PlfCounters;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::time::Duration;

/// Retry / validation policy of a [`ResilientBackend`].
#[derive(Debug, Clone, Copy)]
pub struct RetryPolicy {
    /// Re-attempts on the same tier before degrading (0 = degrade at
    /// once).
    pub max_retries: u32,
    /// Backoff before the first retry; doubles per retry.
    pub base_backoff: Duration,
    /// Backoff ceiling.
    pub max_backoff: Duration,
    /// Scan kernel outputs for non-finite values.
    pub validate_outputs: bool,
    /// Additionally reject subnormal CLV entries. Off by default: on
    /// extreme trees, pre-rescale CLV magnitudes may legitimately dip
    /// into the subnormal range.
    pub reject_subnormals: bool,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_retries: 2,
            base_backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(100),
            validate_outputs: true,
            reject_subnormals: false,
        }
    }
}

impl RetryPolicy {
    fn backoff(&self, retry: u32) -> Duration {
        let d = self
            .base_backoff
            .saturating_mul(1u32.checked_shl(retry).unwrap_or(u32::MAX));
        d.min(self.max_backoff)
    }
}

/// What the wrapper did in response to one failed attempt.
#[derive(Debug, Clone, PartialEq)]
pub enum RecoveryAction {
    /// Same tier, tried again.
    Retried,
    /// Moved to the next tier.
    Degraded {
        /// Name of the tier taking over.
        to: String,
    },
    /// No tiers left; the error was returned to the caller.
    GaveUp,
}

/// One recorded failure + response.
#[derive(Debug, Clone)]
pub struct ResilienceEvent {
    /// Kernel in which the failure occurred.
    pub op: PlfOpKind,
    /// Tier that failed.
    pub backend: String,
    /// Attempt number on that tier (0 = first try).
    pub attempt: u32,
    /// The failure itself.
    pub error: PlfError,
    /// What the wrapper did about it.
    pub action: RecoveryAction,
}

/// Structured account of everything the wrapper observed.
#[derive(Debug, Clone, Default)]
pub struct ResilienceReport {
    /// Every failure, in order.
    pub events: Vec<ResilienceEvent>,
    /// Kernel calls issued through the wrapper.
    pub total_calls: u64,
    /// Same-tier re-attempts.
    pub retries: u64,
    /// Tier switches.
    pub degradations: u64,
}

impl ResilienceReport {
    /// Did any fault at all surface?
    pub fn any_faults(&self) -> bool {
        !self.events.is_empty()
    }
}

/// A [`PlfBackend`] that survives faults in the backends it wraps.
pub struct ResilientBackend {
    tiers: Vec<Box<dyn PlfBackend>>,
    active: usize,
    policy: RetryPolicy,
    report: ResilienceReport,
    metrics: Option<Arc<PlfCounters>>,
}

impl ResilientBackend {
    /// Wrap a primary backend with the default policy. Add fallbacks
    /// with [`ResilientBackend::with_fallback`] in degradation order.
    pub fn new(primary: Box<dyn PlfBackend>) -> ResilientBackend {
        ResilientBackend {
            tiers: vec![primary],
            active: 0,
            policy: RetryPolicy::default(),
            report: ResilienceReport::default(),
            metrics: None,
        }
    }

    /// Append a fallback tier (used after the previous tiers fail).
    pub fn with_fallback(mut self, backend: Box<dyn PlfBackend>) -> ResilientBackend {
        self.tiers.push(backend);
        self
    }

    /// Replace the retry/validation policy.
    pub fn with_policy(mut self, policy: RetryPolicy) -> ResilientBackend {
        self.policy = policy;
        self
    }

    /// Mirror recovery events (retries, degradations) into a shared
    /// [`PlfCounters`], alongside whatever counters the wrapped tiers
    /// already feed.
    pub fn with_metrics(mut self, counters: Arc<PlfCounters>) -> ResilientBackend {
        self.metrics = Some(counters);
        self
    }

    /// Name of the tier currently executing calls.
    pub fn active_tier(&self) -> String {
        self.tiers[self.active].name()
    }

    /// The structured event log.
    pub fn report(&self) -> &ResilienceReport {
        &self.report
    }

    /// Clear the event log (tier degradation is kept — a failed device
    /// stays failed).
    pub fn reset_report(&mut self) {
        self.report = ResilienceReport::default();
    }

    /// Total attempts across the events recorded so far.
    fn attempts_so_far(&self) -> u32 {
        self.report.events.len() as u32 + 1
    }

    /// Handle one failed attempt: retry, degrade, or give up. Returns
    /// `Ok(())` when another attempt should be made.
    fn after_failure(&mut self, op: PlfOpKind, err: PlfError, retry: &mut u32) -> Result<(), PlfError> {
        let backend = self.tiers[self.active].name();
        if *retry < self.policy.max_retries {
            let backoff = self.policy.backoff(*retry);
            self.report.events.push(ResilienceEvent {
                op,
                backend,
                attempt: *retry,
                error: err,
                action: RecoveryAction::Retried,
            });
            self.report.retries += 1;
            if let Some(m) = &self.metrics {
                m.record_retry();
            }
            *retry += 1;
            if !backoff.is_zero() {
                std::thread::sleep(backoff);
            }
            return Ok(());
        }
        if self.active + 1 < self.tiers.len() {
            let to = self.tiers[self.active + 1].name();
            self.report.events.push(ResilienceEvent {
                op,
                backend,
                attempt: *retry,
                error: err,
                action: RecoveryAction::Degraded { to },
            });
            self.report.degradations += 1;
            if let Some(m) = &self.metrics {
                m.record_degradation();
            }
            self.active += 1;
            *retry = 0;
            return Ok(());
        }
        let attempts = self.attempts_so_far();
        self.report.events.push(ResilienceEvent {
            op,
            backend,
            attempt: *retry,
            error: err.clone(),
            action: RecoveryAction::GaveUp,
        });
        Err(PlfError::Exhausted {
            attempts,
            last: Box::new(err),
        })
    }

    /// Validate a kernel-written buffer.
    fn check(&self, data: &[f32], backend: &str, op: PlfOpKind, what: &str) -> Result<(), PlfError> {
        if !self.policy.validate_outputs {
            return Ok(());
        }
        for (i, &v) in data.iter().enumerate() {
            let bad = !v.is_finite() || (self.policy.reject_subnormals && v.is_subnormal());
            if bad {
                return Err(PlfError::InvalidOutput {
                    backend: backend.to_string(),
                    op,
                    detail: format!("{what}[{i}] = {v}"),
                });
            }
        }
        Ok(())
    }
}

/// Run `f` and fold a panic into [`PlfError::WorkerPanic`].
fn guard<F: FnOnce() -> Result<(), PlfError>>(backend: &str, f: F) -> Result<(), PlfError> {
    match catch_unwind(AssertUnwindSafe(f)) {
        Ok(r) => r,
        Err(payload) => Err(PlfError::WorkerPanic {
            backend: backend.to_string(),
            detail: panic_message(payload.as_ref()),
        }),
    }
}

impl PlfBackend for ResilientBackend {
    fn name(&self) -> String {
        let chain: Vec<String> = self.tiers.iter().map(|t| t.name()).collect();
        format!("resilient({})", chain.join("→"))
    }

    fn begin_evaluation(&mut self) {
        // Every tier gets the notification: a degradation mid-evaluation
        // must land on a tier whose per-evaluation state is current.
        for tier in &mut self.tiers {
            tier.begin_evaluation();
        }
    }

    fn preferred_batch_patterns(&self, n_rates: usize) -> usize {
        // Batch geometry follows the tier currently executing calls; a
        // degraded wrapper sizes work for its fallback, not the dead
        // device.
        self.tiers[self.active].preferred_batch_patterns(n_rates)
    }

    fn cond_like_down(
        &mut self,
        left: &Clv,
        p_left: &TransitionMatrices,
        right: &Clv,
        p_right: &TransitionMatrices,
        out: &mut Clv,
    ) -> Result<(), PlfError> {
        self.report.total_calls += 1;
        let mut retry = 0u32;
        loop {
            let backend = self.tiers[self.active].name();
            let tier = self.tiers[self.active].as_mut();
            let res = guard(&backend, || {
                tier.cond_like_down(left, p_left, right, p_right, out)
            })
            .and_then(|()| self.check(out.as_slice(), &backend, PlfOpKind::Down, "clv"));
            match res {
                Ok(()) => return Ok(()),
                // Down fully overwrites `out`: safe to re-run as is.
                Err(e) => self.after_failure(PlfOpKind::Down, e, &mut retry)?,
            }
        }
    }

    fn cond_like_root(
        &mut self,
        a: &Clv,
        p_a: &TransitionMatrices,
        b: &Clv,
        p_b: &TransitionMatrices,
        c: Option<(&Clv, &TransitionMatrices)>,
        out: &mut Clv,
    ) -> Result<(), PlfError> {
        self.report.total_calls += 1;
        let mut retry = 0u32;
        loop {
            let backend = self.tiers[self.active].name();
            let tier = self.tiers[self.active].as_mut();
            let res = guard(&backend, || tier.cond_like_root(a, p_a, b, p_b, c, out))
                .and_then(|()| self.check(out.as_slice(), &backend, PlfOpKind::Root, "clv"));
            match res {
                Ok(()) => return Ok(()),
                Err(e) => self.after_failure(PlfOpKind::Root, e, &mut retry)?,
            }
        }
    }

    fn cond_like_scaler(&mut self, clv: &mut Clv, ln_scalers: &mut [f32]) -> Result<(), PlfError> {
        self.report.total_calls += 1;
        // The scaler divides in place and accumulates — not idempotent.
        let clv_snapshot: Vec<f32> = clv.as_slice().to_vec();
        let sc_snapshot: Vec<f32> = ln_scalers.to_vec();
        let mut retry = 0u32;
        loop {
            let backend = self.tiers[self.active].name();
            let tier = self.tiers[self.active].as_mut();
            let res = guard(&backend, || tier.cond_like_scaler(clv, ln_scalers))
                .and_then(|()| self.check(clv.as_slice(), &backend, PlfOpKind::Scale, "clv"))
                .and_then(|()| self.check(ln_scalers, &backend, PlfOpKind::Scale, "ln_scalers"));
            match res {
                Ok(()) => return Ok(()),
                Err(e) => {
                    self.after_failure(PlfOpKind::Scale, e, &mut retry)?;
                    clv.as_mut_slice().copy_from_slice(&clv_snapshot);
                    ln_scalers.copy_from_slice(&sc_snapshot);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::ScalarBackend;

    /// A backend that fails its first `fail_n` down-calls.
    struct Flaky {
        fail_n: u32,
        calls: u32,
        mode: FlakyMode,
    }

    enum FlakyMode {
        Error,
        Panic,
        Corrupt,
    }

    impl PlfBackend for Flaky {
        fn name(&self) -> String {
            "flaky".into()
        }

        fn cond_like_down(
            &mut self,
            left: &Clv,
            p_left: &TransitionMatrices,
            right: &Clv,
            p_right: &TransitionMatrices,
            out: &mut Clv,
        ) -> Result<(), PlfError> {
            let failing = self.calls < self.fail_n;
            self.calls += 1;
            ScalarBackend.cond_like_down(left, p_left, right, p_right, out)?;
            if failing {
                match self.mode {
                    FlakyMode::Error => {
                        return Err(PlfError::Launch {
                            backend: "flaky".into(),
                            detail: "injected".into(),
                        })
                    }
                    FlakyMode::Panic => panic!("injected worker death"),
                    FlakyMode::Corrupt => out.as_mut_slice()[0] = f32::NAN,
                }
            }
            Ok(())
        }

        fn cond_like_root(
            &mut self,
            a: &Clv,
            p_a: &TransitionMatrices,
            b: &Clv,
            p_b: &TransitionMatrices,
            c: Option<(&Clv, &TransitionMatrices)>,
            out: &mut Clv,
        ) -> Result<(), PlfError> {
            ScalarBackend.cond_like_root(a, p_a, b, p_b, c, out)
        }

        fn cond_like_scaler(&mut self, clv: &mut Clv, ln_scalers: &mut [f32]) -> Result<(), PlfError> {
            ScalarBackend.cond_like_scaler(clv, ln_scalers)
        }
    }

    fn operands() -> (Clv, Clv, TransitionMatrices, Clv) {
        let m = 6;
        let mut left = Clv::zeroed(m, 1);
        let mut right = Clv::zeroed(m, 1);
        for (i, v) in left.as_mut_slice().iter_mut().enumerate() {
            *v = (i % 7) as f32 / 7.0 + 0.1;
        }
        for (i, v) in right.as_mut_slice().iter_mut().enumerate() {
            *v = (i % 5) as f32 / 5.0 + 0.1;
        }
        let p = TransitionMatrices::from_mats(vec![[[0.25f32; 4]; 4]]);
        let out = Clv::zeroed(m, 1);
        (left, right, p, out)
    }

    fn fast_policy() -> RetryPolicy {
        RetryPolicy {
            base_backoff: Duration::ZERO,
            max_backoff: Duration::ZERO,
            ..RetryPolicy::default()
        }
    }

    fn expected_out() -> Vec<f32> {
        let (left, right, p, mut out) = operands();
        ScalarBackend
            .cond_like_down(&left, &p, &right, &p, &mut out)
            .unwrap();
        out.as_slice().to_vec()
    }

    fn run_flaky(mode: FlakyMode, fail_n: u32) -> (Result<(), PlfError>, Vec<f32>, ResilienceReport) {
        let flaky = Flaky { fail_n, calls: 0, mode };
        let mut rb = ResilientBackend::new(Box::new(flaky))
            .with_fallback(Box::new(ScalarBackend))
            .with_policy(fast_policy());
        let (left, right, p, mut out) = operands();
        let res = rb.cond_like_down(&left, &p, &right, &p, &mut out);
        (res, out.as_slice().to_vec(), rb.report().clone())
    }

    #[test]
    fn transient_error_is_retried_to_success() {
        let (res, out, report) = run_flaky(FlakyMode::Error, 1);
        res.unwrap();
        assert_eq!(out, expected_out());
        assert_eq!(report.retries, 1);
        assert_eq!(report.degradations, 0);
    }

    #[test]
    fn worker_panic_is_isolated_and_retried() {
        let (res, out, report) = run_flaky(FlakyMode::Panic, 2);
        res.unwrap();
        assert_eq!(out, expected_out());
        assert_eq!(report.retries, 2);
        assert!(matches!(report.events[0].error, PlfError::WorkerPanic { .. }));
    }

    #[test]
    fn corrupt_output_is_caught_by_validation() {
        let (res, out, report) = run_flaky(FlakyMode::Corrupt, 1);
        res.unwrap();
        assert_eq!(out, expected_out());
        assert!(matches!(report.events[0].error, PlfError::InvalidOutput { .. }));
    }

    #[test]
    fn persistent_failure_degrades_to_fallback() {
        let (res, out, report) = run_flaky(FlakyMode::Error, u32::MAX);
        res.unwrap();
        assert_eq!(out, expected_out());
        assert_eq!(report.degradations, 1);
        assert!(report
            .events
            .iter()
            .any(|e| matches!(&e.action, RecoveryAction::Degraded { to } if to == "scalar")));
    }

    #[test]
    fn single_tier_exhaustion_returns_error() {
        let flaky = Flaky { fail_n: u32::MAX, calls: 0, mode: FlakyMode::Error };
        let mut rb = ResilientBackend::new(Box::new(flaky)).with_policy(fast_policy());
        let (left, right, p, mut out) = operands();
        let err = rb.cond_like_down(&left, &p, &right, &p, &mut out).unwrap_err();
        assert!(matches!(err, PlfError::Exhausted { .. }));
        assert!(matches!(
            rb.report().events.last().unwrap().action,
            RecoveryAction::GaveUp
        ));
    }

    #[test]
    fn scaler_retry_restores_snapshot() {
        /// Fails the first scale call *after* half-applying it.
        struct HalfScaler {
            failed: bool,
        }
        impl PlfBackend for HalfScaler {
            fn name(&self) -> String {
                "half-scaler".into()
            }
            fn cond_like_down(
                &mut self,
                l: &Clv,
                pl: &TransitionMatrices,
                r: &Clv,
                pr: &TransitionMatrices,
                out: &mut Clv,
            ) -> Result<(), PlfError> {
                ScalarBackend.cond_like_down(l, pl, r, pr, out)
            }
            fn cond_like_root(
                &mut self,
                a: &Clv,
                pa: &TransitionMatrices,
                b: &Clv,
                pb: &TransitionMatrices,
                c: Option<(&Clv, &TransitionMatrices)>,
                out: &mut Clv,
            ) -> Result<(), PlfError> {
                ScalarBackend.cond_like_root(a, pa, b, pb, c, out)
            }
            fn cond_like_scaler(&mut self, clv: &mut Clv, ln_scalers: &mut [f32]) -> Result<(), PlfError> {
                if !self.failed {
                    self.failed = true;
                    // Half-apply, then die: scale but also corrupt.
                    ScalarBackend.cond_like_scaler(clv, ln_scalers)?;
                    ln_scalers[0] = f32::NAN;
                    return Ok(()); // validation will catch the NaN
                }
                ScalarBackend.cond_like_scaler(clv, ln_scalers)
            }
        }

        let (_, _, _, _) = operands();
        let mut clv = Clv::zeroed(4, 1);
        for (i, v) in clv.as_mut_slice().iter_mut().enumerate() {
            *v = (i + 1) as f32 * 10.0;
        }
        let mut scalers = vec![0.5f32; 4];
        // Reference: one clean scale from identical initial state.
        let mut ref_clv = clv.clone();
        let mut ref_sc = scalers.clone();
        ScalarBackend.cond_like_scaler(&mut ref_clv, &mut ref_sc).unwrap();

        let mut rb = ResilientBackend::new(Box::new(HalfScaler { failed: false }))
            .with_policy(fast_policy());
        rb.cond_like_scaler(&mut clv, &mut scalers).unwrap();
        // Without snapshot/restore the retry would double-scale.
        assert_eq!(clv.as_slice(), ref_clv.as_slice());
        assert_eq!(scalers, ref_sc);
        assert_eq!(rb.report().retries, 1);
    }
}

//! Resilient PLF execution: fault injection, error taxonomy, and a
//! self-healing backend wrapper.
//!
//! The paper's accelerators (Cell/BE SPEs over DMA, GPUs over PCIe,
//! multi-core thread pools) each add a real-world failure surface that
//! the idealised simulation otherwise hides. This module makes those
//! failures *first-class*:
//!
//! - [`FaultInjector`] — a deterministic, seeded fault source that can
//!   corrupt kernel outputs (NaN / Inf / denormal), fail simulated DMA
//!   and PCIe transfers, reject kernel launches, and kill worker
//!   threads. Scheduled one-shot faults give tests exact control;
//!   rate-based faults exercise soak runs. Environment knobs
//!   (`PLF_FAULT_*`) arm it from the CLI without code changes.
//! - [`PlfError`] — the failure taxonomy every fallible backend call
//!   returns.
//! - [`ResilientBackend`] — a [`crate::kernels::PlfBackend`] wrapper
//!   that validates outputs, retries with bounded exponential backoff,
//!   isolates worker panics, and degrades through a caller-supplied
//!   tier chain (e.g. gpu → multicore → scalar), recording everything
//!   in a [`ResilienceReport`].
//!
//! Because the PLF kernels are deterministic, a recovered computation
//! is *bitwise identical* to a fault-free run — the integration suite
//! in `tests/recovery.rs` asserts exactly that.

mod error;
mod fault;
mod wrapper;

pub use error::{panic_message, PlfError, PlfOpKind};
pub use fault::{CorruptionKind, FaultEnvError, FaultInjector, FaultSite};
pub use wrapper::{
    RecoveryAction, ResilienceEvent, ResilienceReport, ResilientBackend, RetryPolicy,
};

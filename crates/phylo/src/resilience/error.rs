//! The PLF error taxonomy.
//!
//! Every way a backend call can fail maps onto one of these variants so
//! the execution layer (retry / fallback / abort) can act on the *class*
//! of failure rather than a stringly-typed message. The classes mirror
//! the real failure surfaces of the paper's three substrates: corrupted
//! kernel output (any device), DMA transfer errors (Cell/BE), kernel
//! launch and PCIe transfer errors (GPU), and worker-thread panics
//! (multi-core thread pools).

/// Which PLF kernel an error occurred in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlfOpKind {
    /// `CondLikeDown`.
    Down,
    /// `CondLikeRoot`.
    Root,
    /// `CondLikeScaler`.
    Scale,
}

impl std::fmt::Display for PlfOpKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlfOpKind::Down => write!(f, "CondLikeDown"),
            PlfOpKind::Root => write!(f, "CondLikeRoot"),
            PlfOpKind::Scale => write!(f, "CondLikeScaler"),
        }
    }
}

/// A failure inside a [`crate::kernels::PlfBackend`] call or its
/// surrounding execution machinery.
#[derive(Debug, Clone, PartialEq)]
pub enum PlfError {
    /// A kernel produced non-finite (or, under a strict policy,
    /// subnormal) output — numerical corruption.
    InvalidOutput {
        /// Backend that produced the value.
        backend: String,
        /// Kernel the value came from.
        op: PlfOpKind,
        /// What was found (offset and value).
        detail: String,
    },
    /// A simulated data transfer (Cell/BE DMA or GPU PCIe) failed.
    Transfer {
        /// Backend whose transfer failed.
        backend: String,
        /// Which channel ("dma" or "pcie").
        channel: &'static str,
        /// Transfer description.
        detail: String,
    },
    /// A GPU kernel launch was rejected by the device.
    Launch {
        /// Backend whose launch failed.
        backend: String,
        /// Launch description.
        detail: String,
    },
    /// A worker thread panicked during a kernel.
    WorkerPanic {
        /// Backend whose worker died.
        backend: String,
        /// The panic payload, if it was a string.
        detail: String,
    },
    /// Invalid configuration (thread counts, pool construction, FSM
    /// protocol violations).
    Config(String),
    /// Every backend in a resilience chain failed; `last` is the final
    /// error observed.
    Exhausted {
        /// Total attempts made across all tiers.
        attempts: u32,
        /// The error that ended the last attempt.
        last: Box<PlfError>,
    },
}

impl std::fmt::Display for PlfError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlfError::InvalidOutput { backend, op, detail } => {
                write!(f, "{backend}: invalid {op} output: {detail}")
            }
            PlfError::Transfer { backend, channel, detail } => {
                write!(f, "{backend}: {channel} transfer failed: {detail}")
            }
            PlfError::Launch { backend, detail } => {
                write!(f, "{backend}: kernel launch failed: {detail}")
            }
            PlfError::WorkerPanic { backend, detail } => {
                write!(f, "{backend}: worker panicked: {detail}")
            }
            PlfError::Config(msg) => write!(f, "invalid configuration: {msg}"),
            PlfError::Exhausted { attempts, last } => {
                write!(f, "all backends exhausted after {attempts} attempts; last error: {last}")
            }
        }
    }
}

impl std::error::Error for PlfError {}

/// Render a `catch_unwind` payload as a human-readable string.
pub fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

//! Phylogenetic tree topology.
//!
//! MrBayes scores *unrooted* binary trees; for likelihood computation the
//! tree is anchored at an arbitrary internal node ("virtual root") of
//! degree 3, every other internal node has exactly two children, and each
//! non-root node carries the length of the branch to its parent. This
//! module stores such trees in an arena, parses/prints Newick, computes
//! traversal orders for the PLF, and implements the NNI topology move the
//! MCMC driver uses.

use std::fmt::Write as _;

/// Index of a node in a [`Tree`] arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub usize);

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// A single tree node.
#[derive(Debug, Clone)]
pub struct Node {
    /// Parent node; `None` only for the root.
    pub parent: Option<NodeId>,
    /// Children (0 for leaves, 2 for internal nodes, 2 or 3 for the root).
    pub children: Vec<NodeId>,
    /// Length of the branch to the parent (ignored for the root).
    pub branch: f64,
    /// Taxon name; present exactly on leaves.
    pub name: Option<String>,
}

impl Node {
    /// Is this node a leaf?
    pub fn is_leaf(&self) -> bool {
        self.children.is_empty()
    }
}

/// Errors from tree construction or parsing.
#[derive(Debug, Clone, PartialEq)]
pub enum TreeError {
    /// Newick syntax error with a byte offset and message.
    Parse(usize, String),
    /// Structural invariant violated.
    Invalid(String),
}

impl std::fmt::Display for TreeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TreeError::Parse(at, msg) => write!(f, "newick parse error at byte {at}: {msg}"),
            TreeError::Invalid(msg) => write!(f, "invalid tree: {msg}"),
        }
    }
}

impl std::error::Error for TreeError {}

/// Branch bookkeeping returned by [`Tree::spr`] for the MH correction
/// and for incremental-update dirty tracking.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SprInfo {
    /// Sum of the two branches merged by the splice.
    pub merged_branch: f64,
    /// Length of the target branch before it was split.
    pub target_branch: f64,
    /// The node whose CLV path was dirtied by the detach (old
    /// grandparent).
    pub old_location: NodeId,
    /// The re-inserted internal node (dirty at the new location).
    pub new_internal: NodeId,
}

/// An (un)rooted binary phylogeny stored as a node arena.
#[derive(Debug, Clone)]
pub struct Tree {
    nodes: Vec<Node>,
    root: NodeId,
}

impl Tree {
    /// Build a tree from parts. Validates structure.
    pub fn from_parts(nodes: Vec<Node>, root: NodeId) -> Result<Tree, TreeError> {
        let t = Tree { nodes, root };
        t.validate()?;
        Ok(t)
    }

    /// The root (virtual root for unrooted trees).
    #[inline]
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// Total number of nodes.
    #[inline]
    pub fn n_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Access a node.
    #[inline]
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.0]
    }

    /// Mutable access to a node (used by MCMC branch-length proposals).
    #[inline]
    pub fn node_mut(&mut self, id: NodeId) -> &mut Node {
        &mut self.nodes[id.0]
    }

    /// Iterate over all node ids.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> {
        (0..self.nodes.len()).map(NodeId)
    }

    /// All leaf ids, in arena order.
    pub fn leaves(&self) -> Vec<NodeId> {
        self.node_ids().filter(|&id| self.node(id).is_leaf()).collect()
    }

    /// Number of leaves (taxa).
    pub fn n_leaves(&self) -> usize {
        self.nodes.iter().filter(|n| n.is_leaf()).count()
    }

    /// All internal node ids (including the root).
    pub fn internal_nodes(&self) -> Vec<NodeId> {
        self.node_ids().filter(|&id| !self.node(id).is_leaf()).collect()
    }

    /// Non-root nodes, i.e. one id per branch.
    pub fn branches(&self) -> Vec<NodeId> {
        self.node_ids().filter(|&id| id != self.root).collect()
    }

    /// Sum of all branch lengths.
    pub fn tree_length(&self) -> f64 {
        self.branches().iter().map(|&id| self.node(id).branch).sum()
    }

    /// Postorder traversal (children before parents), ending at the root.
    pub fn postorder(&self) -> Vec<NodeId> {
        let mut order = Vec::with_capacity(self.nodes.len());
        // Iterative DFS with an explicit stack of (node, child cursor).
        let mut stack = vec![(self.root, 0usize)];
        while let Some(&mut (id, ref mut cursor)) = stack.last_mut() {
            let node = self.node(id);
            if *cursor < node.children.len() {
                let child = node.children[*cursor];
                *cursor += 1;
                stack.push((child, 0));
            } else {
                order.push(id);
                stack.pop();
            }
        }
        order
    }

    /// Internal edges: edges whose both endpoints are internal nodes.
    /// Returned as `(parent, child)` pairs — the NNI move set.
    pub fn internal_edges(&self) -> Vec<(NodeId, NodeId)> {
        let mut out = Vec::new();
        for id in self.node_ids() {
            let n = self.node(id);
            if n.is_leaf() {
                continue;
            }
            if let Some(p) = n.parent {
                if !self.node(p).is_leaf() {
                    out.push((p, id));
                }
            }
        }
        out
    }

    /// Perform a nearest-neighbour interchange across the internal edge
    /// `(parent, child)`: swap `parent`'s `swap_parent_child`-th *other*
    /// child with `child`'s `swap_child_child`-th child.
    ///
    /// `swap_parent_child` indexes the parent's children excluding `child`.
    pub fn nni(
        &mut self,
        parent: NodeId,
        child: NodeId,
        swap_parent_child: usize,
        swap_child_child: usize,
    ) -> Result<(), TreeError> {
        if self.node(child).parent != Some(parent) {
            return Err(TreeError::Invalid(format!(
                "{child} is not a child of {parent}"
            )));
        }
        if self.node(child).is_leaf() {
            return Err(TreeError::Invalid(format!("{child} is a leaf; NNI needs an internal edge")));
        }
        let parent_side: Vec<NodeId> = self
            .node(parent)
            .children
            .iter()
            .copied()
            .filter(|&c| c != child)
            .collect();
        let a = *parent_side
            .get(swap_parent_child)
            .ok_or_else(|| TreeError::Invalid("parent-side child index out of range".into()))?;
        let b = *self
            .node(child)
            .children
            .get(swap_child_child)
            .ok_or_else(|| TreeError::Invalid("child-side child index out of range".into()))?;
        // Swap subtrees a and b.
        let ai = self.nodes[parent.0]
            .children
            .iter()
            .position(|&c| c == a)
            .expect("a is a child of parent");
        let bi = self.nodes[child.0]
            .children
            .iter()
            .position(|&c| c == b)
            .expect("b is a child of child");
        self.nodes[parent.0].children[ai] = b;
        self.nodes[child.0].children[bi] = a;
        self.nodes[a.0].parent = Some(child);
        self.nodes[b.0].parent = Some(parent);
        debug_assert!(self.validate().is_ok());
        Ok(())
    }

    /// Is `node` inside the subtree rooted at `root_of_subtree`?
    pub fn in_subtree(&self, node: NodeId, root_of_subtree: NodeId) -> bool {
        let mut cur = Some(node);
        while let Some(n) = cur {
            if n == root_of_subtree {
                return true;
            }
            cur = self.node(n).parent;
        }
        false
    }

    /// Subtree prune-and-regraft: detach the subtree rooted at `x`
    /// *together with its parent edge node* `p = parent(x)`, splice `p`
    /// out (its other child inherits the merged branch), and reinsert
    /// `p` into the branch above `target`, splitting that branch at
    /// fraction `split`.
    ///
    /// Returns the branch lengths the MH correction needs: the merged
    /// branch created by the splice and the target branch that was
    /// split (`ln H = ln b_target − ln b_merged` for uniform `split`).
    ///
    /// Constraints: `p` must not be the root; `target` must be a
    /// non-root node outside `x`'s subtree and different from `p`.
    pub fn spr(&mut self, x: NodeId, target: NodeId, split: f64) -> Result<SprInfo, TreeError> {
        if !(0.0 < split && split < 1.0) {
            return Err(TreeError::Invalid(format!("split {split} outside (0,1)")));
        }
        let p = self
            .node(x)
            .parent
            .ok_or_else(|| TreeError::Invalid("cannot prune the root".into()))?;
        let g = self
            .node(p)
            .parent
            .ok_or_else(|| TreeError::Invalid("cannot prune a child of the root".into()))?;
        if target == self.root {
            return Err(TreeError::Invalid("cannot regraft above the root".into()));
        }
        if target == p || self.in_subtree(target, x) {
            return Err(TreeError::Invalid(
                "regraft target inside the pruned subtree".into(),
            ));
        }
        debug_assert_eq!(self.node(p).children.len(), 2);
        let c_other = *self
            .node(p)
            .children
            .iter()
            .find(|&&c| c != x)
            .expect("binary internal node has another child");

        // Splice p out: g adopts c_other with the merged branch.
        let merged_branch = self.node(p).branch + self.node(c_other).branch;
        let slot = self.nodes[g.0]
            .children
            .iter()
            .position(|&c| c == p)
            .expect("p is a child of g");
        self.nodes[g.0].children[slot] = c_other;
        self.nodes[c_other.0].parent = Some(g);
        self.nodes[c_other.0].branch = merged_branch;

        // Reinsert p into the branch above target.
        let tp = self.node(target).parent.expect("target is not the root");
        let target_branch = self.node(target).branch;
        let tslot = self.nodes[tp.0]
            .children
            .iter()
            .position(|&c| c == target)
            .expect("target is a child of its parent");
        self.nodes[tp.0].children[tslot] = p;
        self.nodes[p.0].parent = Some(tp);
        self.nodes[p.0].branch = (target_branch * split).max(1e-12);
        self.nodes[p.0].children = vec![x, target];
        self.nodes[target.0].parent = Some(p);
        self.nodes[target.0].branch = (target_branch * (1.0 - split)).max(1e-12);
        // x keeps its branch and stays a child of p.
        debug_assert!(self.validate().is_ok());
        Ok(SprInfo {
            merged_branch,
            target_branch,
            old_location: g,
            new_internal: p,
        })
    }

    /// Nodes eligible as SPR prune points (`parent(x)` exists and is not
    /// the root).
    pub fn spr_prune_candidates(&self) -> Vec<NodeId> {
        self.node_ids()
            .filter(|&x| {
                self.node(x)
                    .parent
                    .is_some_and(|p| self.node(p).parent.is_some())
            })
            .collect()
    }

    /// Valid regraft targets for pruning `x`: non-root nodes outside
    /// `x`'s subtree, excluding `parent(x)`.
    pub fn spr_targets(&self, x: NodeId) -> Vec<NodeId> {
        let p = self.node(x).parent;
        self.node_ids()
            .filter(|&t| {
                t != self.root && Some(t) != p && !self.in_subtree(t, x)
            })
            .collect()
    }

    /// Check all structural invariants.
    pub fn validate(&self) -> Result<(), TreeError> {
        if self.nodes.is_empty() {
            return Err(TreeError::Invalid("empty tree".into()));
        }
        if self.root.0 >= self.nodes.len() {
            return Err(TreeError::Invalid("root id out of range".into()));
        }
        if self.node(self.root).parent.is_some() {
            return Err(TreeError::Invalid("root has a parent".into()));
        }
        for id in self.node_ids() {
            let n = self.node(id);
            match n.children.len() {
                0 => {
                    if n.name.is_none() {
                        return Err(TreeError::Invalid(format!("leaf {id} has no name")));
                    }
                }
                2 => {}
                3 if id == self.root => {}
                k => {
                    return Err(TreeError::Invalid(format!(
                        "node {id} has {k} children (root={})",
                        id == self.root
                    )))
                }
            }
            for &c in &n.children {
                if c.0 >= self.nodes.len() {
                    return Err(TreeError::Invalid(format!("child {c} out of range")));
                }
                if self.node(c).parent != Some(id) {
                    return Err(TreeError::Invalid(format!(
                        "parent link of {c} does not point to {id}"
                    )));
                }
            }
            if id != self.root {
                let p = n
                    .parent
                    .ok_or_else(|| TreeError::Invalid(format!("non-root {id} has no parent")))?;
                if !self.node(p).children.contains(&id) {
                    return Err(TreeError::Invalid(format!(
                        "{id} not among parent {p}'s children"
                    )));
                }
                if !(n.branch.is_finite() && n.branch >= 0.0) {
                    return Err(TreeError::Invalid(format!(
                        "branch length {} of {id} invalid",
                        n.branch
                    )));
                }
            }
        }
        // Reachability: postorder must visit every node exactly once.
        let order = self.postorder();
        if order.len() != self.nodes.len() {
            return Err(TreeError::Invalid(format!(
                "{} of {} nodes reachable from root (cycle or orphan)",
                order.len(),
                self.nodes.len()
            )));
        }
        Ok(())
    }

    /// Parse a Newick string such as `((a:0.1,b:0.2):0.05,c:0.3,d:0.4);`.
    ///
    /// ```
    /// use plf_phylo::tree::Tree;
    /// let t = Tree::from_newick("((a:0.1,b:0.2):0.05,c:0.3,d:0.4);").unwrap();
    /// assert_eq!(t.n_leaves(), 4);
    /// assert!((t.tree_length() - 1.05).abs() < 1e-12);
    /// ```
    pub fn from_newick(s: &str) -> Result<Tree, TreeError> {
        let bytes = s.as_bytes();
        let mut nodes: Vec<Node> = Vec::new();
        let mut pos = 0usize;

        fn skip_ws(bytes: &[u8], pos: &mut usize) {
            while *pos < bytes.len() && bytes[*pos].is_ascii_whitespace() {
                *pos += 1;
            }
        }

        fn parse_node(
            bytes: &[u8],
            pos: &mut usize,
            nodes: &mut Vec<Node>,
        ) -> Result<NodeId, TreeError> {
            skip_ws(bytes, pos);
            let id = NodeId(nodes.len());
            nodes.push(Node {
                parent: None,
                children: Vec::new(),
                branch: 0.0,
                name: None,
            });
            if *pos < bytes.len() && bytes[*pos] == b'(' {
                *pos += 1;
                loop {
                    let child = parse_node(bytes, pos, nodes)?;
                    nodes[child.0].parent = Some(id);
                    nodes[id.0].children.push(child);
                    skip_ws(bytes, pos);
                    match bytes.get(*pos) {
                        Some(b',') => {
                            *pos += 1;
                        }
                        Some(b')') => {
                            *pos += 1;
                            break;
                        }
                        _ => return Err(TreeError::Parse(*pos, "expected ',' or ')'".into())),
                    }
                }
            }
            // Optional label.
            skip_ws(bytes, pos);
            let start = *pos;
            while *pos < bytes.len()
                && !matches!(bytes[*pos], b':' | b',' | b')' | b'(' | b';')
                && !bytes[*pos].is_ascii_whitespace()
            {
                *pos += 1;
            }
            if *pos > start {
                nodes[id.0].name = Some(
                    std::str::from_utf8(&bytes[start..*pos])
                        .map_err(|_| TreeError::Parse(start, "non-utf8 label".into()))?
                        .to_string(),
                );
            }
            // Optional branch length.
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b':') {
                *pos += 1;
                skip_ws(bytes, pos);
                let start = *pos;
                while *pos < bytes.len()
                    && matches!(bytes[*pos], b'0'..=b'9' | b'.' | b'-' | b'+' | b'e' | b'E')
                {
                    *pos += 1;
                }
                let txt = std::str::from_utf8(&bytes[start..*pos]).unwrap_or("");
                nodes[id.0].branch = txt
                    .parse::<f64>()
                    .map_err(|e| TreeError::Parse(start, format!("bad branch length: {e}")))?;
            }
            Ok(id)
        }

        let root = parse_node(bytes, &mut pos, &mut nodes)?;
        skip_ws(bytes, &mut pos);
        if bytes.get(pos) != Some(&b';') {
            return Err(TreeError::Parse(pos, "expected ';'".into()));
        }
        // Internal nodes keep no names (labels on internals are discarded
        // so that `validate` invariants are purely structural).
        for n in nodes.iter_mut() {
            if !n.children.is_empty() {
                n.name = None;
            }
        }
        Tree::from_parts(nodes, root)
    }

    /// Serialize to Newick.
    pub fn to_newick(&self) -> String {
        let mut out = String::new();
        self.write_newick(self.root, &mut out);
        out.push(';');
        out
    }

    fn write_newick(&self, id: NodeId, out: &mut String) {
        let n = self.node(id);
        if !n.children.is_empty() {
            out.push('(');
            for (i, &c) in n.children.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                self.write_newick(c, out);
            }
            out.push(')');
        }
        if let Some(name) = &n.name {
            out.push_str(name);
        }
        if id != self.root {
            let _ = write!(out, ":{}", n.branch);
        }
    }

    /// Canonical topology signature: the sorted-leaf-set shape of the tree,
    /// independent of arena ordering and child order. Two trees with equal
    /// signatures have the same unrooted-at-this-root topology.
    pub fn topology_signature(&self) -> String {
        fn sig(t: &Tree, id: NodeId) -> String {
            let n = t.node(id);
            if n.is_leaf() {
                return n.name.clone().unwrap_or_default();
            }
            let mut parts: Vec<String> = n.children.iter().map(|&c| sig(t, c)).collect();
            parts.sort();
            format!("({})", parts.join(","))
        }
        sig(self, self.root)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quartet() -> Tree {
        Tree::from_newick("((a:0.1,b:0.2):0.05,c:0.3,d:0.4);").unwrap()
    }

    #[test]
    fn parse_counts() {
        let t = quartet();
        assert_eq!(t.n_leaves(), 4);
        assert_eq!(t.n_nodes(), 6);
        assert_eq!(t.node(t.root()).children.len(), 3);
        assert!(t.validate().is_ok());
    }

    #[test]
    fn parse_branch_lengths() {
        let t = quartet();
        let total: f64 = t.tree_length();
        assert!((total - 1.05).abs() < 1e-12);
    }

    #[test]
    fn newick_roundtrip() {
        let t = quartet();
        let t2 = Tree::from_newick(&t.to_newick()).unwrap();
        assert_eq!(t.topology_signature(), t2.topology_signature());
        assert!((t.tree_length() - t2.tree_length()).abs() < 1e-12);
    }

    #[test]
    fn postorder_children_before_parents() {
        let t = quartet();
        let order = t.postorder();
        assert_eq!(order.len(), t.n_nodes());
        assert_eq!(*order.last().unwrap(), t.root());
        let position: std::collections::HashMap<NodeId, usize> =
            order.iter().enumerate().map(|(i, &id)| (id, i)).collect();
        for id in t.node_ids() {
            for &c in &t.node(id).children {
                assert!(position[&c] < position[&id]);
            }
        }
    }

    #[test]
    fn rooted_binary_newick_accepted() {
        let t = Tree::from_newick("((a:1,b:1):1,(c:1,d:1):1);").unwrap();
        assert_eq!(t.node(t.root()).children.len(), 2);
        assert!(t.validate().is_ok());
    }

    #[test]
    fn nni_swaps_subtrees() {
        let mut t = quartet();
        let edges = t.internal_edges();
        assert_eq!(edges.len(), 1);
        let (p, c) = edges[0];
        let before = t.topology_signature();
        t.nni(p, c, 0, 0).unwrap();
        assert!(t.validate().is_ok());
        assert_ne!(t.topology_signature(), before);
        assert_eq!(t.n_leaves(), 4);
        // NNI twice with same arguments restores the topology.
        t.nni(p, c, 0, 0).unwrap();
        assert_eq!(t.topology_signature(), before);
    }

    #[test]
    fn nni_rejects_leaf_edge() {
        let mut t = quartet();
        let root = t.root();
        let leaf = *t
            .node(root)
            .children
            .iter()
            .find(|&&c| t.node(c).is_leaf())
            .unwrap();
        assert!(t.nni(root, leaf, 0, 0).is_err());
    }

    fn seven_taxa() -> Tree {
        Tree::from_newick(
            "(((a:0.1,b:0.1):0.1,(c:0.1,d:0.1):0.1):0.1,(e:0.1,f:0.1):0.1,g:0.2);",
        )
        .unwrap()
    }

    #[test]
    fn spr_preserves_leafset_and_validity() {
        let t0 = seven_taxa();
        for &x in &t0.spr_prune_candidates() {
            for &target in &t0.spr_targets(x) {
                let mut t = t0.clone();
                let info = t.spr(x, target, 0.5).unwrap();
                assert!(t.validate().is_ok(), "prune {x} regraft {target}");
                assert_eq!(t.n_leaves(), 7);
                assert!(info.merged_branch > 0.0);
                assert!(info.target_branch > 0.0);
            }
        }
    }

    #[test]
    fn spr_changes_topology_for_distant_targets() {
        let t0 = seven_taxa();
        let mut changed = 0;
        let candidates = t0.spr_prune_candidates();
        for &x in &candidates {
            for &target in &t0.spr_targets(x) {
                let mut t = t0.clone();
                t.spr(x, target, 0.5).unwrap();
                if t.topology_signature() != t0.topology_signature() {
                    changed += 1;
                }
            }
        }
        assert!(changed > 0, "SPR never changed any topology");
    }

    #[test]
    fn spr_branch_bookkeeping() {
        let mut t = seven_taxa();
        let x = t.spr_prune_candidates()[0];
        let p = t.node(x).parent.unwrap();
        let c_other = *t.node(p).children.iter().find(|&&c| c != x).unwrap();
        let expected_merge = t.node(p).branch + t.node(c_other).branch;
        let target = *t
            .spr_targets(x)
            .iter()
            .find(|&&tt| tt != c_other)
            .unwrap();
        let target_before = t.node(target).branch;
        let info = t.spr(x, target, 0.25).unwrap();
        assert!((info.merged_branch - expected_merge).abs() < 1e-12);
        assert!((info.target_branch - target_before).abs() < 1e-12);
        // Split fractions applied.
        assert!((t.node(p).branch - 0.25 * target_before).abs() < 1e-12);
        assert!((t.node(target).branch - 0.75 * target_before).abs() < 1e-12);
        // Total tree length is preserved by construction (merge + split).
    }

    #[test]
    fn spr_rejects_illegal_moves() {
        let mut t = seven_taxa();
        let root = t.root();
        // Pruning the root or a child of the root is rejected.
        assert!(t.spr(root, NodeId(1), 0.5).is_err());
        let root_child = t.node(root).children[0];
        assert!(t.spr(root_child, NodeId(1), 0.5).is_err());
        // Regrafting inside the pruned subtree is rejected.
        let x = *t
            .spr_prune_candidates()
            .iter()
            .find(|&&n| !t.node(n).is_leaf())
            .unwrap();
        let inside = t.node(x).children[0];
        assert!(t.spr(x, inside, 0.5).is_err());
        // Bad split fraction.
        let ok_target = t.spr_targets(x)[0];
        assert!(t.spr(x, ok_target, 0.0).is_err());
        assert!(t.spr(x, ok_target, 1.0).is_err());
    }

    #[test]
    fn spr_candidate_counts_are_stable() {
        // |X| and |T(x)| are invariant under SPR — the symmetry argument
        // behind ln H = ln b_t − ln b_merged.
        let t0 = seven_taxa();
        let x = t0.spr_prune_candidates()[2];
        let n_x = t0.spr_prune_candidates().len();
        let n_t = t0.spr_targets(x).len();
        let mut t = t0.clone();
        let target = t0.spr_targets(x)[0];
        t.spr(x, target, 0.5).unwrap();
        assert_eq!(t.spr_prune_candidates().len(), n_x);
        assert_eq!(t.spr_targets(x).len(), n_t);
    }

    #[test]
    fn parse_errors() {
        assert!(matches!(
            Tree::from_newick("((a,b)"),
            Err(TreeError::Parse(_, _))
        ));
        assert!(Tree::from_newick("(a:x,b:1,c:1);").is_err());
        assert!(Tree::from_newick("").is_err());
    }

    #[test]
    fn unnamed_leaf_rejected() {
        assert!(matches!(
            Tree::from_newick("((,b:1):1,c:1,d:1);"),
            Err(TreeError::Invalid(_))
        ));
    }

    #[test]
    fn degree_four_rejected() {
        assert!(Tree::from_newick("(a:1,b:1,c:1,d:1);").is_err());
    }

    #[test]
    fn larger_tree_parses() {
        let t =
            Tree::from_newick("(((a:0.1,b:0.1):0.1,(c:0.1,d:0.1):0.1):0.1,(e:0.1,f:0.1):0.1,g:0.2);")
                .unwrap();
        assert_eq!(t.n_leaves(), 7);
        assert_eq!(t.internal_edges().len(), 4);
    }
}

//! Partitioned ("mixed model") likelihoods — the headline feature of
//! MrBayes 3 (*"Bayesian phylogenetic inference under mixed models"*).
//!
//! A partitioned analysis splits the alignment into subsets (genes,
//! codon positions) that share the tree but evolve under their own
//! substitution models. The total log-likelihood is the sum over
//! partitions, and each partition runs the same PLF kernels over its
//! own pattern-compressed data — on any backend. This multiplies the
//! number of parallel-section calls per evaluation, which is exactly
//! the regime ("1,500 concatenated genes", §3.1) the paper motivates.

use crate::alignment::{Alignment, PatternAlignment};
use crate::dna::StateMask;
use crate::kernels::PlfBackend;
use crate::likelihood::{LikelihoodError, TreeLikelihood};
use crate::model::SiteModel;
use crate::tree::Tree;

/// One subset of the data with its own model.
pub struct Partition {
    /// Partition name (gene, codon position, ...).
    pub name: String,
    /// Pattern-compressed subset.
    pub data: PatternAlignment,
    /// Substitution model for this subset.
    pub model: SiteModel,
}

/// A shared-tree, per-partition-model likelihood evaluator.
pub struct PartitionedLikelihood {
    parts: Vec<(String, TreeLikelihood)>,
}

impl PartitionedLikelihood {
    /// Build evaluators for every partition over the same tree.
    pub fn new(tree: &Tree, partitions: Vec<Partition>) -> Result<PartitionedLikelihood, LikelihoodError> {
        assert!(!partitions.is_empty(), "need at least one partition");
        let mut parts = Vec::with_capacity(partitions.len());
        for p in partitions {
            parts.push((p.name, TreeLikelihood::new(tree, &p.data, p.model)?));
        }
        Ok(PartitionedLikelihood { parts })
    }

    /// Number of partitions.
    pub fn n_partitions(&self) -> usize {
        self.parts.len()
    }

    /// Partition names.
    pub fn names(&self) -> Vec<&str> {
        self.parts.iter().map(|(n, _)| n.as_str()).collect()
    }

    /// Total log-likelihood: the sum of the per-partition PLF results.
    pub fn log_likelihood(
        &mut self,
        tree: &Tree,
        backend: &mut dyn PlfBackend,
    ) -> Result<f64, LikelihoodError> {
        let mut total = 0.0;
        for (_, eval) in &mut self.parts {
            total += eval.log_likelihood(tree, backend)?;
        }
        Ok(total)
    }

    /// Per-partition log-likelihoods (for model-fit comparisons).
    pub fn per_partition(
        &mut self,
        tree: &Tree,
        backend: &mut dyn PlfBackend,
    ) -> Result<Vec<(String, f64)>, LikelihoodError> {
        let mut out = Vec::with_capacity(self.parts.len());
        for (name, eval) in &mut self.parts {
            out.push((name.clone(), eval.log_likelihood(tree, backend)?));
        }
        Ok(out)
    }
}

/// Split an alignment by codon position (columns `0,3,6.. / 1,4,7.. /
/// 2,5,8..`) — the most common partitioning scheme for coding DNA.
pub fn by_codon_position(aln: &Alignment) -> [Alignment; 3] {
    std::array::from_fn(|offset| {
        let seqs: Vec<Vec<StateMask>> = (0..aln.n_taxa())
            .map(|t| {
                aln.row(t)
                    .iter()
                    .enumerate()
                    .filter(|(site, _)| site % 3 == offset)
                    .map(|(_, &m)| m)
                    .collect()
            })
            .collect();
        Alignment::new(aln.taxa().to_vec(), seqs).expect("codon split preserves shape")
    })
}

/// Split an alignment into contiguous gene blocks given their lengths
/// (which must sum to the alignment length).
pub fn by_gene_blocks(aln: &Alignment, lengths: &[usize]) -> Vec<Alignment> {
    assert_eq!(
        lengths.iter().sum::<usize>(),
        aln.n_sites(),
        "gene lengths must cover the alignment"
    );
    let mut out = Vec::with_capacity(lengths.len());
    let mut start = 0usize;
    for &len in lengths {
        assert!(len > 0, "empty gene block");
        let seqs: Vec<Vec<StateMask>> = (0..aln.n_taxa())
            .map(|t| aln.row(t)[start..start + len].to_vec())
            .collect();
        out.push(Alignment::new(aln.taxa().to_vec(), seqs).expect("block split preserves shape"));
        start += len;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::ScalarBackend;
    use crate::model::GtrParams;

    fn toy() -> (Tree, Alignment) {
        let tree = Tree::from_newick("((a:0.1,b:0.2):0.05,c:0.3,d:0.4);").unwrap();
        let aln = Alignment::from_strings(&[
            ("a", "ACGTACGTAAGGCCTTAG"),
            ("b", "ACGTACGTACGGCCTTAG"),
            ("c", "ACGAACGTTAGGCCTAAG"),
            ("d", "ACTTACGTAAGGCGTTAG"),
        ])
        .unwrap();
        (tree, aln)
    }

    #[test]
    fn equal_models_match_unpartitioned() {
        let (tree, aln) = toy();
        let model = SiteModel::gtr_gamma4(GtrParams::jc69(), 0.5).unwrap();
        // Unpartitioned.
        let mut whole = TreeLikelihood::new(&tree, &aln.compress(), model.clone()).unwrap();
        let expect = whole.log_likelihood(&tree, &mut ScalarBackend).unwrap();
        // Partitioned by codon position with the same model everywhere.
        let parts = by_codon_position(&aln)
            .into_iter()
            .enumerate()
            .map(|(i, a)| Partition {
                name: format!("pos{}", i + 1),
                data: a.compress(),
                model: model.clone(),
            })
            .collect();
        let mut part = PartitionedLikelihood::new(&tree, parts).unwrap();
        let got = part.log_likelihood(&tree, &mut ScalarBackend).unwrap();
        assert!((got - expect).abs() < 1e-9, "{got} vs {expect}");
    }

    #[test]
    fn codon_split_shapes() {
        let (_, aln) = toy();
        let [p1, p2, p3] = by_codon_position(&aln);
        assert_eq!(p1.n_sites() + p2.n_sites() + p3.n_sites(), aln.n_sites());
        assert_eq!(p1.n_sites(), 6);
        // First column of pos2 is the alignment's second column.
        for t in 0..aln.n_taxa() {
            assert_eq!(p2.row(t)[0], aln.row(t)[1]);
        }
    }

    #[test]
    fn different_models_per_partition_change_fit() {
        let (tree, aln) = toy();
        let slow = SiteModel::gtr_gamma4(GtrParams::jc69(), 10.0).unwrap();
        let fast = SiteModel::gtr_gamma4(GtrParams::jc69(), 0.1).unwrap();
        let mk = |m1: &SiteModel, m2: &SiteModel, m3: &SiteModel| {
            let [a, b, c] = by_codon_position(&aln);
            PartitionedLikelihood::new(
                &tree,
                vec![
                    Partition { name: "p1".into(), data: a.compress(), model: m1.clone() },
                    Partition { name: "p2".into(), data: b.compress(), model: m2.clone() },
                    Partition { name: "p3".into(), data: c.compress(), model: m3.clone() },
                ],
            )
            .unwrap()
        };
        let l_all_slow = mk(&slow, &slow, &slow)
            .log_likelihood(&tree, &mut ScalarBackend)
            .unwrap();
        let l_mixed = mk(&slow, &fast, &slow)
            .log_likelihood(&tree, &mut ScalarBackend)
            .unwrap();
        assert_ne!(l_all_slow, l_mixed);
        let per = mk(&slow, &fast, &slow)
            .per_partition(&tree, &mut ScalarBackend)
            .unwrap();
        assert_eq!(per.len(), 3);
        let total: f64 = per.iter().map(|(_, l)| l).sum();
        assert!((total - l_mixed).abs() < 1e-9);
    }

    #[test]
    fn gene_blocks_cover_and_respect_boundaries() {
        let (_, aln) = toy();
        let blocks = by_gene_blocks(&aln, &[5, 10, 3]);
        assert_eq!(blocks.len(), 3);
        assert_eq!(blocks[0].n_sites(), 5);
        assert_eq!(blocks[1].n_sites(), 10);
        assert_eq!(blocks[2].n_sites(), 3);
        for t in 0..aln.n_taxa() {
            assert_eq!(blocks[1].row(t)[0], aln.row(t)[5]);
        }
    }

    #[test]
    #[should_panic(expected = "gene lengths must cover")]
    fn gene_blocks_must_cover() {
        let (_, aln) = toy();
        by_gene_blocks(&aln, &[5, 5]);
    }

    #[test]
    fn partitioned_works_on_simulated_backends() {
        let (tree, aln) = toy();
        let model = SiteModel::gtr_gamma4(GtrParams::jc69(), 0.5).unwrap();
        let parts: Vec<Partition> = by_codon_position(&aln)
            .into_iter()
            .enumerate()
            .map(|(i, a)| Partition {
                name: format!("pos{}", i + 1),
                data: a.compress(),
                model: model.clone(),
            })
            .collect();
        let mut whole = TreeLikelihood::new(&tree, &aln.compress(), model).unwrap();
        let expect = whole.log_likelihood(&tree, &mut ScalarBackend).unwrap();
        let mut part = PartitionedLikelihood::new(&tree, parts).unwrap();
        let mut backend = crate::kernels::Simd4Backend::col_wise();
        let got = part.log_likelihood(&tree, &mut backend).unwrap();
        assert!((got - expect).abs() < 1e-9);
    }
}

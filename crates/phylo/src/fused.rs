//! Cross-job fused PLF evaluation: many trees, one kernel invocation
//! per tree level.
//!
//! The plfd batching scheduler groups compatible jobs (same dataset,
//! same rate count), but dispatching them one at a time re-pays the
//! per-invocation overhead — thread-pool fork/join, simulated DMA
//! setup, PCIe transfer, kernel launch — once per job per op, which is
//! exactly the per-call cost the paper amortizes *within* one
//! invocation by enlarging the pattern space. This driver applies the
//! same lesson *across* jobs: each round it gathers the next pending
//! `Down`/`Root`/`Scale` op of every job in the batch and issues them
//! as one fused backend call over the concatenated pattern space
//! ([`PlfBackend::cond_like_down_fused`] and friends).
//!
//! Per-job results stay separate throughout (each op reads and writes
//! only its own job's workspace), so demux is trivial and a per-job
//! host-side root integration produces the individual log-likelihoods.
//! A fused call fails as a whole; the caller (the plfd dispatcher)
//! falls back to per-job evaluation for containment.
//!
//! **Bit-identity.** Fused evaluation is bitwise identical to per-job
//! evaluation on every backend: ops of one fused call belong to
//! different jobs, so no cross-op data flow exists; within an op the
//! per-pattern accumulation order is unchanged; and scaler deltas are
//! accumulated into each job's running vector in plan order through
//! the same `f32` additions (see the scratch argument below).
//!
//! **CLV cache.** With a [`ClvCache`], each internal node's fingerprint
//! ([`crate::clv_cache::subtree_fingerprints`]) is consulted before
//! computing: a hit copies the cached (post-scale) CLV into the slot
//! and replays its stored scaler delta, skipping the node's kernels
//! entirely. Identical subtrees *within* one call dedup too: the first
//! job to miss a fingerprint becomes its *leader* and computes it; the
//! others park for a round and then consume the leader's cache entry —
//! so a batch of MCMC proposals off one tree computes each shared
//! subtree once, not once per job. If a round would make no progress
//! (e.g. a leader's entry was evicted before its followers read it),
//! parking is disabled for the rest of the call and every job computes
//! its own ops — slower, never stuck, still bit-identical.
//! Fresh scale results are staged in a zeroed scratch vector
//! and then added to the running scalers — `0.0 + x` is bitwise `x`
//! and the kernels never produce `-0.0` (`ln` of a block max in
//! `(0, 1]` is `≤ 0` and exactly `+0.0` at 1), so staging preserves
//! bit-identity while giving the cache the exact delta to replay.
//!
//! This file is in `plf-lint`'s L2 hot-path scope: every batched
//! service evaluation runs through here, so it must be panic-free.

use crate::clv::Clv;
use crate::clv_cache::{CacheEntry, ClvCache};
use crate::kernels::plan::{PlfOp, PlfPlan};
use crate::kernels::{FusedDown, FusedRoot, FusedScale, PlfBackend};
use crate::likelihood::{LikelihoodError, TreeLikelihood};
use crate::resilience::PlfError;
use crate::tree::{NodeId, Tree};

/// One job inside a fused batch: a prepared workspace and the tree to
/// evaluate. All jobs of a batch may (and in the service do) share the
/// same dataset shape, but the driver only requires that each job's
/// workspace matches its own tree.
pub struct FusedJob<'a> {
    /// The job's likelihood workspace.
    pub eval: &'a mut TreeLikelihood,
    /// The tree to evaluate.
    pub tree: &'a Tree,
    /// Caller-supplied identity of the pattern alignment, for cache
    /// fingerprints (the plfd service passes its registered dataset
    /// id). Jobs over different alignments must pass different tokens.
    pub dataset_token: u64,
}

/// Driver-internal per-job evaluation state.
struct Prep {
    plan: PlfPlan,
    /// Per-branch transition matrices, indexed by `NodeId.0`.
    tms: Vec<Option<crate::clv::TransitionMatrices>>,
    /// Subtree fingerprints (empty when no cache is in use).
    fps: Vec<Option<(u64, bool)>>,
    /// Nodes that missed the cache and should be inserted once final.
    insert_fp: Vec<Option<u64>>,
    /// Next op index in `plan`.
    cursor: usize,
}

fn internal_err(what: &str) -> LikelihoodError {
    LikelihoodError::Backend(PlfError::Config(format!(
        "fused driver invariant violated: {what}"
    )))
}

/// Evaluate every job's log-likelihood with cross-job kernel fusion,
/// returning one value per job in input order.
///
/// With `cache`, internal-node CLVs are reused across jobs and calls
/// via subtree fingerprints; hit/miss/eviction counts accumulate in the
/// cache's stats window. Results are bitwise identical to evaluating
/// each job alone with [`TreeLikelihood::log_likelihood`], cached or
/// not.
///
/// On error the workspaces are structurally intact (every CLV slot
/// restored) but partially evaluated; callers should re-evaluate jobs
/// individually for fault containment.
pub fn evaluate_fused(
    jobs: &mut [FusedJob<'_>],
    backend: &mut dyn PlfBackend,
    mut cache: Option<&mut ClvCache>,
) -> Result<Vec<f64>, LikelihoodError> {
    let mut preps = Vec::with_capacity(jobs.len());
    for job in jobs.iter_mut() {
        let plan = PlfPlan::for_tree(job.tree, job.eval.scale_every())?;
        let tms: Vec<Option<crate::clv::TransitionMatrices>> = job
            .tree
            .node_ids()
            .map(|id| {
                if id == job.tree.root() {
                    None
                } else {
                    Some(job.eval.model().transition_matrices(job.tree.node(id).branch))
                }
            })
            .collect();
        let fps = match cache {
            Some(_) => crate::clv_cache::subtree_fingerprints(
                job.tree,
                &plan,
                job.eval.model(),
                job.dataset_token,
            ),
            None => Vec::new(),
        };
        let insert_fp = vec![None; job.tree.n_nodes()];
        job.eval.reset_scalers();
        preps.push(Prep {
            plan,
            tms,
            fps,
            insert_fp,
            cursor: 0,
        });
    }
    backend.begin_evaluation();

    // Per-job scale scratch, staged outside `preps` so fused scale ops
    // can borrow several at once.
    let mut scratches: Vec<Vec<f32>> = jobs.iter().map(|j| vec![0.0; j.eval.n_patterns()]).collect();

    // Fingerprints some job is already computing this call: followers
    // park instead of duplicating the work (intra-call dedup).
    let mut leading: std::collections::HashSet<u64> = std::collections::HashSet::new();
    let mut dedup = cache.is_some();

    loop {
        // Round setup: let each unfinished job consume cache hits, then
        // classify its next op by kind.
        let mut downs: Vec<usize> = Vec::new();
        let mut roots: Vec<usize> = Vec::new();
        let mut scales: Vec<usize> = Vec::new();
        let mut parked = 0usize;
        for (j, prep) in preps.iter_mut().enumerate() {
            let mut is_parked = false;
            // Greedy hit consumption: a hit may expose another hit.
            while prep.cursor < prep.plan.ops().len() {
                let node = match prep.plan.ops()[prep.cursor] {
                    PlfOp::Down { node, .. } | PlfOp::Root { node, .. } => node,
                    PlfOp::Scale { .. } => break,
                };
                let Some(cache) = cache.as_deref_mut() else { break };
                let Some(Some((fp, scaled))) = prep.fps.get(node.0).copied() else {
                    break;
                };
                // A fingerprint some job already leads is re-polled
                // without counting a miss (the first lookup did).
                let already_led = dedup && leading.contains(&fp);
                let entry = if already_led {
                    cache.lookup_pending(fp)
                } else {
                    cache.lookup(fp)
                };
                let Some(entry) = entry else {
                    // Miss: lead the fingerprint if nobody does yet,
                    // otherwise park and re-check next round once the
                    // leader's entry has landed.
                    if already_led {
                        is_parked = true;
                    } else {
                        if dedup {
                            leading.insert(fp);
                        }
                        prep.insert_fp[node.0] = Some(fp);
                    }
                    break;
                };
                if !jobs[j].eval.overwrite_clv(node, &entry.clv) {
                    return Err(internal_err("cached CLV shape mismatch"));
                }
                if scaled {
                    let Some(delta) = entry.scale_delta.as_deref() else {
                        return Err(internal_err("scaled entry without a delta"));
                    };
                    let follows = matches!(
                        prep.plan.ops().get(prep.cursor + 1),
                        Some(PlfOp::Scale { node: s }) if *s == node
                    );
                    if !follows {
                        return Err(internal_err("scale op does not follow its node"));
                    }
                    jobs[j].eval.add_scalers(delta);
                    prep.cursor += 2;
                } else {
                    prep.cursor += 1;
                }
            }
            if is_parked {
                parked += 1;
                continue;
            }
            match prep.plan.ops().get(prep.cursor) {
                Some(PlfOp::Down { .. }) => downs.push(j),
                Some(PlfOp::Root { .. }) => roots.push(j),
                Some(PlfOp::Scale { .. }) => scales.push(j),
                None => {}
            }
        }
        if downs.is_empty() && roots.is_empty() && scales.is_empty() {
            if parked == 0 {
                break;
            }
            // Every runnable job is parked on a fingerprint whose
            // leader can no longer deliver (entry evicted, or the
            // leader itself is parked behind this round). Disable
            // parking and reclassify: each job computes its own ops.
            leading.clear();
            dedup = false;
            continue;
        }
        if !downs.is_empty() {
            run_fused_downs(jobs, &mut preps, &downs, backend, cache.as_deref_mut())?;
        }
        if !roots.is_empty() {
            run_fused_roots(jobs, &mut preps, &roots, backend, cache.as_deref_mut())?;
        }
        if !scales.is_empty() {
            run_fused_scales(
                jobs,
                &mut preps,
                &mut scratches,
                &scales,
                backend,
                cache.as_deref_mut(),
            )?;
        }
    }

    Ok(jobs
        .iter()
        .zip(&preps)
        .map(|(job, prep)| job.eval.integrate_root_at(prep.plan.root()))
        .collect())
}

/// The `Down` op a job is parked on, or an invariant error.
fn down_at(prep: &Prep) -> Result<(NodeId, NodeId, NodeId), LikelihoodError> {
    match prep.plan.ops().get(prep.cursor) {
        Some(PlfOp::Down { node, left, right }) => Ok((*node, *left, *right)),
        _ => Err(internal_err("down group entry not at a Down op")),
    }
}

fn root_at(prep: &Prep) -> Result<(NodeId, &[NodeId]), LikelihoodError> {
    match prep.plan.ops().get(prep.cursor) {
        Some(PlfOp::Root { node, children }) => Ok((*node, children)),
        _ => Err(internal_err("root group entry not at a Root op")),
    }
}

fn scale_at(prep: &Prep) -> Result<NodeId, LikelihoodError> {
    match prep.plan.ops().get(prep.cursor) {
        Some(PlfOp::Scale { node }) => Ok(*node),
        _ => Err(internal_err("scale group entry not at a Scale op")),
    }
}

/// Take the output CLVs of `group`'s pending ops out of their slots so
/// fused ops can borrow them mutably alongside shared child borrows.
fn take_outputs(
    jobs: &mut [FusedJob<'_>],
    preps: &[Prep],
    group: &[usize],
    node_of: impl Fn(&Prep) -> Result<NodeId, LikelihoodError>,
) -> Result<Vec<(usize, NodeId, Clv)>, LikelihoodError> {
    let mut taken = Vec::with_capacity(group.len());
    for &j in group {
        let node = node_of(&preps[j])?;
        match jobs[j].eval.take_clv(node) {
            Some(clv) => taken.push((j, node, clv)),
            None => {
                // Restore what was taken before surfacing the breach.
                for (jj, n, clv) in taken {
                    jobs[jj].eval.put_clv(n, clv);
                }
                return Err(internal_err("output CLV slot empty"));
            }
        }
    }
    Ok(taken)
}

/// After a node's value is final, insert it into the cache if its
/// lookup missed earlier this evaluation.
fn maybe_insert(
    jobs: &[FusedJob<'_>],
    prep: &mut Prep,
    j: usize,
    node: NodeId,
    scale_delta: Option<&[f32]>,
    cache: &mut Option<&mut ClvCache>,
) {
    let (Some(cache), Some(slot)) = (cache.as_deref_mut(), prep.insert_fp.get_mut(node.0)) else {
        return;
    };
    let Some(fp) = slot.take() else { return };
    // Scaled nodes are inserted at their Scale op (with the delta),
    // not at the Down that precedes it.
    let scaled = matches!(prep.fps.get(node.0), Some(Some((_, true))));
    if scaled != scale_delta.is_some() {
        *slot = Some(fp); // not final yet; re-arm for the Scale pass
        return;
    }
    if let Some(clv) = jobs[j].eval.clv_opt(node) {
        cache.insert(
            fp,
            CacheEntry {
                clv: clv.clone(),
                scale_delta: scale_delta.map(<[f32]>::to_vec),
            },
        );
    }
}

fn run_fused_downs(
    jobs: &mut [FusedJob<'_>],
    preps: &mut [Prep],
    group: &[usize],
    backend: &mut dyn PlfBackend,
    mut cache: Option<&mut ClvCache>,
) -> Result<(), LikelihoodError> {
    let mut taken = take_outputs(jobs, preps, group, |p| down_at(p).map(|(n, _, _)| n))?;
    let result = (|| {
        let mut ops: Vec<FusedDown<'_>> = Vec::with_capacity(taken.len());
        for (j, _, out) in taken.iter_mut() {
            let prep = &preps[*j];
            let (_, left, right) = down_at(prep)?;
            let eval: &TreeLikelihood = jobs[*j].eval;
            let (Some(l), Some(r)) = (eval.clv_opt(left), eval.clv_opt(right)) else {
                return Err(internal_err("child CLV missing"));
            };
            let (Some(Some(p_l)), Some(Some(p_r))) =
                (prep.tms.get(left.0), prep.tms.get(right.0))
            else {
                return Err(internal_err("child transition matrices missing"));
            };
            ops.push(FusedDown {
                left: l,
                p_left: p_l,
                right: r,
                p_right: p_r,
                out,
            });
        }
        backend
            .cond_like_down_fused(&mut ops)
            .map_err(LikelihoodError::Backend)
    })();
    for (j, node, clv) in taken {
        jobs[j].eval.put_clv(node, clv);
    }
    result?;
    for &j in group {
        let (node, _, _) = down_at(&preps[j])?;
        maybe_insert(jobs, &mut preps[j], j, node, None, &mut cache);
        preps[j].cursor += 1;
    }
    Ok(())
}

fn run_fused_roots(
    jobs: &mut [FusedJob<'_>],
    preps: &mut [Prep],
    group: &[usize],
    backend: &mut dyn PlfBackend,
    mut cache: Option<&mut ClvCache>,
) -> Result<(), LikelihoodError> {
    let mut taken = take_outputs(jobs, preps, group, |p| root_at(p).map(|(n, _)| n))?;
    let result = (|| {
        let mut ops: Vec<FusedRoot<'_>> = Vec::with_capacity(taken.len());
        for (j, _, out) in taken.iter_mut() {
            let prep = &preps[*j];
            let (_, children) = root_at(prep)?;
            if children.len() < 2 {
                return Err(internal_err("root op with fewer than two children"));
            }
            let eval: &TreeLikelihood = jobs[*j].eval;
            let (Some(a), Some(b)) = (eval.clv_opt(children[0]), eval.clv_opt(children[1]))
            else {
                return Err(internal_err("root child CLV missing"));
            };
            let (Some(Some(p_a)), Some(Some(p_b))) =
                (prep.tms.get(children[0].0), prep.tms.get(children[1].0))
            else {
                return Err(internal_err("root child transition matrices missing"));
            };
            let c = match children.get(2) {
                Some(&c3) => {
                    let (Some(clv_c), Some(Some(p_c))) = (eval.clv_opt(c3), prep.tms.get(c3.0))
                    else {
                        return Err(internal_err("third root child missing"));
                    };
                    Some((clv_c, p_c))
                }
                None => None,
            };
            ops.push(FusedRoot {
                a,
                p_a,
                b,
                p_b,
                c,
                out,
            });
        }
        backend
            .cond_like_root_fused(&mut ops)
            .map_err(LikelihoodError::Backend)
    })();
    for (j, node, clv) in taken {
        jobs[j].eval.put_clv(node, clv);
    }
    result?;
    for &j in group {
        let (node, _) = root_at(&preps[j])?;
        maybe_insert(jobs, &mut preps[j], j, node, None, &mut cache);
        preps[j].cursor += 1;
    }
    Ok(())
}

fn run_fused_scales(
    jobs: &mut [FusedJob<'_>],
    preps: &mut [Prep],
    scratches: &mut [Vec<f32>],
    group: &[usize],
    backend: &mut dyn PlfBackend,
    mut cache: Option<&mut ClvCache>,
) -> Result<(), LikelihoodError> {
    let mut taken = take_outputs(jobs, preps, group, scale_at)?;
    // Stage each job's scratch (zeroed) alongside its taken CLV so the
    // fused op list can borrow both mutably.
    let mut staged: Vec<Vec<f32>> = Vec::with_capacity(group.len());
    for &j in group {
        let mut s = std::mem::take(&mut scratches[j]);
        s.iter_mut().for_each(|v| *v = 0.0);
        staged.push(s);
    }
    let result = {
        let mut ops: Vec<FusedScale<'_>> = Vec::with_capacity(taken.len());
        for ((_, _, clv), scratch) in taken.iter_mut().zip(staged.iter_mut()) {
            ops.push(FusedScale {
                clv,
                ln_scalers: scratch,
            });
        }
        backend
            .cond_like_scaler_fused(&mut ops)
            .map_err(LikelihoodError::Backend)
    };
    // Restore, accumulate, and (on success) cache-insert per job.
    let ok = result.is_ok();
    for ((j, node, clv), scratch) in taken.into_iter().zip(staged) {
        if ok {
            // Plan-order accumulation: the same f32 additions a direct
            // in-place scale would have performed.
            jobs[j].eval.add_scalers(&scratch);
            jobs[j].eval.put_clv(node, clv);
            maybe_insert(jobs, &mut preps[j], j, node, Some(&scratch), &mut cache);
            preps[j].cursor += 1;
        } else {
            jobs[j].eval.put_clv(node, clv);
        }
        scratches[j] = scratch;
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alignment::Alignment;
    use crate::kernels::{ScalarBackend, Simd4Backend};
    use crate::model::{GtrParams, SiteModel};

    fn setup(n: usize) -> (Vec<Tree>, crate::alignment::PatternAlignment, SiteModel) {
        let aln = Alignment::from_strings(&[
            ("a", "ACGTACGTAAGGCCTTAGCA"),
            ("b", "ACGTACGTACGGCCTTAGCA"),
            ("c", "ACGAACGTTAGGCCTAAGCA"),
            ("d", "ACTTACGTAAGGCGTTAGCA"),
            ("e", "ACGTACGTAAGGCCTTAGCC"),
            ("f", "ACGTTCGTAAGGCCTTAGCA"),
        ])
        .unwrap()
        .compress();
        let base = Tree::from_newick(
            "(((a:0.1,b:0.15):0.1,(c:0.2,d:0.1):0.05):0.1,e:0.1,f:0.3);",
        )
        .unwrap();
        let trees: Vec<Tree> = (0..n)
            .map(|i| {
                let mut t = base.clone();
                let victim = t.branches()[i % t.branches().len()];
                t.node_mut(victim).branch *= 1.0 + 0.1 * (i as f64 + 1.0);
                t
            })
            .collect();
        let model = SiteModel::gtr_gamma4(GtrParams::hky85(2.0, [0.3, 0.2, 0.2, 0.3]), 0.6).unwrap();
        (trees, aln, model)
    }

    fn serial_lnls(trees: &[Tree], aln: &crate::alignment::PatternAlignment, model: &SiteModel) -> Vec<f64> {
        trees
            .iter()
            .map(|t| {
                let mut eval = TreeLikelihood::new(t, aln, model.clone()).unwrap();
                eval.log_likelihood(t, &mut ScalarBackend).unwrap()
            })
            .collect()
    }

    #[test]
    fn fused_matches_per_job_bitwise_scalar() {
        let (trees, aln, model) = setup(5);
        let expect = serial_lnls(&trees, &aln, &model);
        let mut evals: Vec<TreeLikelihood> = trees
            .iter()
            .map(|t| TreeLikelihood::new(t, &aln, model.clone()).unwrap())
            .collect();
        let mut fused: Vec<FusedJob<'_>> = evals
            .iter_mut()
            .zip(&trees)
            .map(|(eval, tree)| FusedJob {
                eval,
                tree,
                dataset_token: 1,
            })
            .collect();
        let got = evaluate_fused(&mut fused, &mut ScalarBackend, None).unwrap();
        assert_eq!(got, expect, "fused must be bitwise identical to per-job");
    }

    #[test]
    fn fused_with_cache_matches_bitwise_and_hits_on_shared_subtrees() {
        let (trees, aln, model) = setup(4);
        let expect = serial_lnls(&trees, &aln, &model);
        let mut cache = ClvCache::new(64);
        let mut evals: Vec<TreeLikelihood> = trees
            .iter()
            .map(|t| TreeLikelihood::new(t, &aln, model.clone()).unwrap())
            .collect();
        let mut fused: Vec<FusedJob<'_>> = evals
            .iter_mut()
            .zip(&trees)
            .map(|(eval, tree)| FusedJob {
                eval,
                tree,
                dataset_token: 1,
            })
            .collect();
        let got = evaluate_fused(&mut fused, &mut ScalarBackend, Some(&mut cache)).unwrap();
        assert_eq!(got, expect, "cached fused evaluation must stay bit-identical");
        let stats = cache.take_stats();
        assert!(stats.misses > 0, "a cold cache must record misses");

        // A second pass over the same trees is answered from cache
        // almost entirely — and still bit-identical.
        let mut fused2: Vec<FusedJob<'_>> = evals
            .iter_mut()
            .zip(&trees)
            .map(|(eval, tree)| FusedJob {
                eval,
                tree,
                dataset_token: 1,
            })
            .collect();
        let again = evaluate_fused(&mut fused2, &mut ScalarBackend, Some(&mut cache)).unwrap();
        assert_eq!(again, expect);
        let stats2 = cache.take_stats();
        assert!(
            stats2.hits > stats2.misses,
            "second pass should be hit-dominated: {stats2:?}"
        );
    }

    #[test]
    fn branch_change_invalidates_ancestors_only() {
        let (trees, aln, model) = setup(1);
        let tree = &trees[0];
        let mut cache = ClvCache::new(64);
        let mut eval = TreeLikelihood::new(tree, &aln, model.clone()).unwrap();
        let mut fused = [FusedJob {
            eval: &mut eval,
            tree,
            dataset_token: 1,
        }];
        evaluate_fused(&mut fused, &mut ScalarBackend, Some(&mut cache)).unwrap();
        cache.take_stats();

        // Change one leaf branch: its ancestors must miss, disjoint
        // subtrees must still hit, and the result must equal a fresh
        // serial evaluation bit-for-bit.
        let mut changed = tree.clone();
        let leaf = changed.leaves()[0];
        changed.node_mut(leaf).branch *= 1.5;
        let mut eval2 = TreeLikelihood::new(&changed, &aln, model.clone()).unwrap();
        let mut fused2 = [FusedJob {
            eval: &mut eval2,
            tree: &changed,
            dataset_token: 1,
        }];
        let got = evaluate_fused(&mut fused2, &mut ScalarBackend, Some(&mut cache)).unwrap();
        let mut fresh = TreeLikelihood::new(&changed, &aln, model).unwrap();
        let expect = fresh.log_likelihood(&changed, &mut ScalarBackend).unwrap();
        assert_eq!(got[0], expect, "cached partial reuse must stay bit-identical");
        let stats = cache.take_stats();
        assert!(stats.misses > 0, "ancestors of the edit must recompute");
        assert!(stats.hits > 0, "untouched subtrees must be reused: {stats:?}");
    }

    #[test]
    fn identical_jobs_in_one_call_dedup_to_one_compute() {
        // Four jobs over the *same* tree in one fused call: the first
        // leads each shared fingerprint, the rest park a round and
        // consume it from cache — intra-call hits, not four-fold work.
        let (trees, aln, model) = setup(1);
        let same: Vec<Tree> = vec![trees[0].clone(); 4];
        let expect = serial_lnls(&same, &aln, &model);
        let mut cache = ClvCache::new(64);
        let mut evals: Vec<TreeLikelihood> = same
            .iter()
            .map(|t| TreeLikelihood::new(t, &aln, model.clone()).unwrap())
            .collect();
        let mut fused: Vec<FusedJob<'_>> = evals
            .iter_mut()
            .zip(&same)
            .map(|(eval, tree)| FusedJob {
                eval,
                tree,
                dataset_token: 1,
            })
            .collect();
        let got = evaluate_fused(&mut fused, &mut ScalarBackend, Some(&mut cache)).unwrap();
        assert_eq!(got, expect, "deduped fused evaluation must stay bit-identical");
        let stats = cache.take_stats();
        assert!(
            stats.hits >= stats.misses,
            "followers must reuse the leader's entries within the call: {stats:?}"
        );
    }

    #[test]
    fn fused_simd_matches_per_job_simd_bitwise() {
        let (trees, aln, model) = setup(3);
        let expect: Vec<f64> = trees
            .iter()
            .map(|t| {
                let mut eval = TreeLikelihood::new(t, &aln, model.clone()).unwrap();
                eval.log_likelihood(t, &mut Simd4Backend::col_wise()).unwrap()
            })
            .collect();
        let mut evals: Vec<TreeLikelihood> = trees
            .iter()
            .map(|t| TreeLikelihood::new(t, &aln, model.clone()).unwrap())
            .collect();
        let mut fused: Vec<FusedJob<'_>> = evals
            .iter_mut()
            .zip(&trees)
            .map(|(eval, tree)| FusedJob {
                eval,
                tree,
                dataset_token: 1,
            })
            .collect();
        let got = evaluate_fused(&mut fused, &mut Simd4Backend::col_wise(), None).unwrap();
        assert_eq!(got, expect);
    }

    #[test]
    fn empty_batch_is_fine() {
        let mut none: [FusedJob<'_>; 0] = [];
        let got = evaluate_fused(&mut none, &mut ScalarBackend, None).unwrap();
        assert!(got.is_empty());
    }
}

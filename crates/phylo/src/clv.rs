//! Conditional likelihood vectors (CLVs) and per-branch transition
//! matrices in the exact memory layout the paper's kernels assume.
//!
//! A CLV holds, for every alignment pattern, `n_rates` discrete-rate
//! arrays of 4 floats (Figure 3): with Γ(4) that is 16 `f32` per pattern.
//! Storage is flat, pattern-major:
//! `data[((pattern * n_rates) + rate) * 4 + state]`.
//!
//! Buffers are 128-byte aligned — the boundary the Cell/BE DMA engine
//! requires (§3.3) and a friendly alignment for SIMD on any host.

use crate::dna::{StateMask, N_STATES};
use std::alloc::{alloc_zeroed, dealloc, handle_alloc_error, Layout};

pub use crate::constants::CLV_ALIGN;

/// A heap buffer of `f32` guaranteed to start on a [`CLV_ALIGN`]-byte
/// boundary.
pub struct AlignedBuf {
    ptr: *mut f32,
    len: usize,
}

// SAFETY: `ptr` is the sole pointer to a heap allocation created in
// `zeroed` and released only in `Drop`; no other copy of it escapes
// the struct (`as_slice`/`as_mut_slice` borrow `self`, tying every
// derived reference to the buffer's lifetime and to the borrow
// checker's shared-xor-mutable discipline). `f32` is `Send + Sync`,
// so moving the unique owner across threads (`Send`) or sharing
// `&AlignedBuf` — which only permits reads — between threads (`Sync`)
// has exactly the aliasing story of `Vec<f32>`.
unsafe impl Send for AlignedBuf {}
unsafe impl Sync for AlignedBuf {}

impl AlignedBuf {
    /// Allocate `len` zeroed floats.
    pub fn zeroed(len: usize) -> AlignedBuf {
        if len == 0 {
            return AlignedBuf {
                ptr: std::ptr::NonNull::<f32>::dangling().as_ptr(),
                len: 0,
            };
        }
        let layout = Layout::from_size_align(len * std::mem::size_of::<f32>(), CLV_ALIGN)
            .expect("CLV layout overflow");
        // SAFETY: `len != 0` on this path, so `layout` has non-zero
        // size — the only precondition of `alloc_zeroed`. The null
        // return is handled below; alignment to CLV_ALIGN ≥ 4 makes
        // the cast to *mut f32 valid for the whole block.
        let ptr = unsafe { alloc_zeroed(layout) } as *mut f32;
        if ptr.is_null() {
            handle_alloc_error(layout);
        }
        AlignedBuf { ptr, len }
    }

    /// Number of floats.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Is the buffer empty?
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// View as a shared slice.
    #[inline]
    pub fn as_slice(&self) -> &[f32] {
        // SAFETY: `ptr`/`len` describe a live zero-initialized
        // allocation owned by `self` (or `NonNull::dangling` with
        // `len == 0`, which `from_raw_parts` permits). The returned
        // lifetime is tied to `&self`, so the slice cannot outlive the
        // buffer, and no `&mut` to it can coexist (shared borrow).
        unsafe { std::slice::from_raw_parts(self.ptr, self.len) }
    }

    /// View as a unique slice.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        // SAFETY: as in `as_slice`, plus `&mut self` guarantees this
        // is the only live reference derived from `ptr` for the
        // returned lifetime — `ptr` never escapes the struct, so there
        // is no other path to the allocation to alias.
        unsafe { std::slice::from_raw_parts_mut(self.ptr, self.len) }
    }
}

impl Drop for AlignedBuf {
    fn drop(&mut self) {
        if self.len != 0 {
            let layout =
                Layout::from_size_align(self.len * std::mem::size_of::<f32>(), CLV_ALIGN).unwrap();
            // SAFETY: `len != 0` means `ptr` came from `alloc_zeroed`
            // in `zeroed` with this exact layout (`len` is immutable
            // after construction), has not been freed (Drop runs at
            // most once), and `Clone` allocates fresh storage rather
            // than sharing `ptr` — so this is the unique release.
            unsafe { dealloc(self.ptr as *mut u8, layout) };
        }
    }
}

impl Clone for AlignedBuf {
    fn clone(&self) -> AlignedBuf {
        let mut out = AlignedBuf::zeroed(self.len);
        out.as_mut_slice().copy_from_slice(self.as_slice());
        out
    }
}

impl std::ops::Deref for AlignedBuf {
    type Target = [f32];
    fn deref(&self) -> &[f32] {
        self.as_slice()
    }
}

impl std::ops::DerefMut for AlignedBuf {
    fn deref_mut(&mut self) -> &mut [f32] {
        self.as_mut_slice()
    }
}

impl std::fmt::Debug for AlignedBuf {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AlignedBuf").field("len", &self.len).finish()
    }
}

/// A conditional likelihood vector over `n_patterns` site patterns and
/// `n_rates` discrete rate categories.
#[derive(Debug, Clone)]
pub struct Clv {
    data: AlignedBuf,
    n_patterns: usize,
    n_rates: usize,
}

impl Clv {
    /// Allocate a zeroed CLV.
    pub fn zeroed(n_patterns: usize, n_rates: usize) -> Clv {
        assert!(n_rates >= 1);
        Clv {
            data: AlignedBuf::zeroed(n_patterns * n_rates * N_STATES),
            n_patterns,
            n_rates,
        }
    }

    /// Build a tip CLV from per-pattern observed states: admitted states
    /// get likelihood 1, others 0, replicated across rate categories —
    /// exactly how MrBayes initializes terminal likelihood vectors.
    pub fn tip(masks: &[StateMask], n_rates: usize) -> Clv {
        let mut clv = Clv::zeroed(masks.len(), n_rates);
        {
            let stride = n_rates * N_STATES;
            let data = clv.data.as_mut_slice();
            for (i, mask) in masks.iter().enumerate() {
                for r in 0..n_rates {
                    let base = i * stride + r * N_STATES;
                    for s in 0..N_STATES {
                        data[base + s] = if mask.admits(s) { 1.0 } else { 0.0 };
                    }
                }
            }
        }
        clv
    }

    /// Number of site patterns.
    #[inline]
    pub fn n_patterns(&self) -> usize {
        self.n_patterns
    }

    /// Number of rate categories.
    #[inline]
    pub fn n_rates(&self) -> usize {
        self.n_rates
    }

    /// Floats per pattern (`n_rates * 4`; 16 under Γ(4), as in Figure 3).
    #[inline]
    pub fn pattern_stride(&self) -> usize {
        self.n_rates * N_STATES
    }

    /// Flat view of the whole vector.
    #[inline]
    pub fn as_slice(&self) -> &[f32] {
        self.data.as_slice()
    }

    /// Flat mutable view of the whole vector.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        self.data.as_mut_slice()
    }

    /// Slice holding patterns `range.start..range.end`.
    pub fn patterns(&self, range: std::ops::Range<usize>) -> &[f32] {
        let s = self.pattern_stride();
        &self.as_slice()[range.start * s..range.end * s]
    }

    /// Mutable slice holding patterns `range.start..range.end`.
    pub fn patterns_mut(&mut self, range: std::ops::Range<usize>) -> &mut [f32] {
        let s = self.pattern_stride();
        &mut self.as_mut_slice()[range.start * s..range.end * s]
    }

    /// One (pattern, rate) 4-float state array.
    #[inline]
    pub fn entry(&self, pattern: usize, rate: usize) -> &[f32] {
        let base = (pattern * self.n_rates + rate) * N_STATES;
        &self.as_slice()[base..base + N_STATES]
    }

    /// Fill the whole CLV with a constant (useful in tests).
    pub fn fill(&mut self, v: f32) {
        for x in self.as_mut_slice() {
            *x = v;
        }
    }
}

/// Per-rate-category transition matrices for one branch, stored both
/// row-major (`P[i][j]` = prob i→j) and transposed.
///
/// The transpose exists for the same reason the paper computes it on the
/// Cell (§3.3): the column-wise SIMD kernel walks matrix columns, and a
/// pre-transposed copy turns that into unit-stride access.
#[derive(Debug, Clone, PartialEq)]
pub struct TransitionMatrices {
    mats: Vec<[[f32; 4]; 4]>,
    transposed: Vec<[[f32; 4]; 4]>,
}

impl TransitionMatrices {
    /// Wrap per-rate matrices, computing the transposed copies.
    pub fn from_mats(mats: Vec<[[f32; 4]; 4]>) -> TransitionMatrices {
        let transposed = mats
            .iter()
            .map(|m| std::array::from_fn(|i| std::array::from_fn(|j| m[j][i])))
            .collect();
        TransitionMatrices { mats, transposed }
    }

    /// Number of rate categories.
    #[inline]
    pub fn n_rates(&self) -> usize {
        self.mats.len()
    }

    /// Row-major matrix for category `k`.
    #[inline]
    pub fn rate(&self, k: usize) -> &[[f32; 4]; 4] {
        &self.mats[k]
    }

    /// Transposed matrix for category `k` (column `j` of `P` is row `j`).
    #[inline]
    pub fn rate_transposed(&self, k: usize) -> &[[f32; 4]; 4] {
        &self.transposed[k]
    }

    /// All row-major matrices.
    #[inline]
    pub fn mats(&self) -> &[[[f32; 4]; 4]] {
        &self.mats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dna::Nucleotide;

    #[test]
    fn aligned_buf_alignment_and_zeroing() {
        for len in [1usize, 3, 64, 1000] {
            let b = AlignedBuf::zeroed(len);
            assert_eq!(b.len(), len);
            assert_eq!(b.as_slice().as_ptr() as usize % CLV_ALIGN, 0);
            assert!(b.iter().all(|&x| x == 0.0));
        }
    }

    #[test]
    fn aligned_buf_zero_len() {
        let b = AlignedBuf::zeroed(0);
        assert!(b.is_empty());
        assert_eq!(b.as_slice(), &[] as &[f32]);
        let _ = b.clone();
    }

    #[test]
    fn aligned_buf_clone_is_deep() {
        let mut a = AlignedBuf::zeroed(8);
        a[0] = 42.0;
        let b = a.clone();
        a[0] = 0.0;
        assert_eq!(b[0], 42.0);
    }

    // The next three tests are the Miri smoke surface for the raw
    // allocator (`scripts/verify.sh --deep` runs
    // `cargo +nightly miri test -p plf-phylo clv`): they exercise the
    // alloc/dealloc layout round-trip, the aliasing discipline of
    // `as_slice`/`as_mut_slice`, and Drop-after-Clone uniqueness,
    // which Miri checks against the tree-borrows/provenance rules.

    #[test]
    fn aligned_buf_layout_roundtrip_many_sizes() {
        for len in [1usize, 2, 31, 32, 257, 1023] {
            let mut b = AlignedBuf::zeroed(len);
            b.as_mut_slice()[0] = -1.0;
            b.as_mut_slice()[len - 1] = len as f32; // overwrites [0] when len == 1
            let c = b.clone();
            drop(b); // dealloc with the construction layout
            assert_eq!(c.as_slice()[len - 1], len as f32);
            assert_eq!(c.as_slice()[0], if len == 1 { 1.0 } else { -1.0 });
        }
    }

    #[test]
    fn aligned_buf_aliasing_discipline() {
        let mut b = AlignedBuf::zeroed(16);
        {
            let w = b.as_mut_slice();
            w[3] = 7.0;
        } // unique borrow ends before any shared one starts
        let r1 = b.as_slice();
        let r2 = b.as_slice(); // two simultaneous shared views are fine
        assert_eq!(r1[3], r2[3]);
        let w = b.as_mut_slice(); // and a fresh unique view after both
        w[3] += 1.0;
        assert_eq!(b.as_slice()[3], 8.0);
    }

    #[test]
    fn aligned_buf_drop_after_clone_frees_distinct_allocations() {
        let mut a = AlignedBuf::zeroed(64);
        a.as_mut_slice().fill(2.5);
        let b = a.clone();
        assert_ne!(a.as_slice().as_ptr(), b.as_slice().as_ptr());
        drop(a);
        assert!(b.as_slice().iter().all(|&x| x == 2.5));
        drop(b);
    }

    #[test]
    fn clv_layout_stride() {
        let clv = Clv::zeroed(10, 4);
        assert_eq!(clv.pattern_stride(), 16);
        assert_eq!(clv.as_slice().len(), 160);
        assert_eq!(clv.patterns(2..5).len(), 48);
    }

    #[test]
    fn tip_clv_determined_site() {
        let masks = vec![StateMask::of(Nucleotide::G)];
        let clv = Clv::tip(&masks, 4);
        for r in 0..4 {
            let e = clv.entry(0, r);
            assert_eq!(e, &[0.0, 0.0, 1.0, 0.0]);
        }
    }

    #[test]
    fn tip_clv_ambiguous_site() {
        let masks = vec![StateMask::from_iupac('R').unwrap()]; // A|G
        let clv = Clv::tip(&masks, 2);
        for r in 0..2 {
            assert_eq!(clv.entry(0, r), &[1.0, 0.0, 1.0, 0.0]);
        }
    }

    #[test]
    fn tip_clv_gap_is_all_ones() {
        let clv = Clv::tip(&[StateMask::ANY], 4);
        assert!(clv.as_slice().iter().all(|&x| x == 1.0));
    }

    #[test]
    fn transition_matrices_transpose() {
        let m = [[1.0, 2.0, 3.0, 4.0],
                 [5.0, 6.0, 7.0, 8.0],
                 [9.0, 10.0, 11.0, 12.0],
                 [13.0, 14.0, 15.0, 16.0f32]];
        let tm = TransitionMatrices::from_mats(vec![m]);
        for i in 0..4 {
            for j in 0..4 {
                assert_eq!(tm.rate_transposed(0)[i][j], m[j][i]);
            }
        }
    }
}

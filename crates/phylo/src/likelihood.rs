//! Tree log-likelihood evaluation: ties together the model, the data,
//! the evaluation plan, and a [`PlfBackend`].
//!
//! [`TreeLikelihood`] owns the per-node CLV workspace (the "likelihood
//! vector data structures" the paper schedules onto processing elements)
//! and drives any backend through a postorder plan, then integrates the
//! root CLV over rate categories and states into the final
//! log-likelihood. The integration is done on the host in double
//! precision — in MrBayes too, the per-site products are `f32` but the
//! final site-likelihood accumulation is not part of the parallel
//! section.

use crate::alignment::PatternAlignment;
use crate::clv::{Clv, TransitionMatrices};
use crate::dna::N_STATES;
use crate::kernels::plan::{PlfOp, PlfPlan};
use crate::kernels::PlfBackend;
use crate::model::SiteModel;
use crate::resilience::PlfError;
use crate::tree::{NodeId, Tree, TreeError};
use std::collections::HashMap;

/// Errors from evaluator construction or evaluation.
#[derive(Debug, Clone, PartialEq)]
pub enum LikelihoodError {
    /// A leaf name was not found in the alignment.
    UnknownTaxon(String),
    /// Underlying tree problem.
    Tree(TreeError),
    /// The PLF backend failed (device fault, corrupted output, …).
    Backend(PlfError),
}

impl std::fmt::Display for LikelihoodError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LikelihoodError::UnknownTaxon(t) => write!(f, "taxon {t} not in alignment"),
            LikelihoodError::Tree(e) => write!(f, "{e}"),
            LikelihoodError::Backend(e) => write!(f, "backend failure: {e}"),
        }
    }
}

impl std::error::Error for LikelihoodError {}

impl From<TreeError> for LikelihoodError {
    fn from(e: TreeError) -> Self {
        LikelihoodError::Tree(e)
    }
}

impl From<PlfError> for LikelihoodError {
    fn from(e: PlfError) -> Self {
        LikelihoodError::Backend(e)
    }
}

/// Log site-likelihood combining the Γ mixture with the `+I`
/// invariable-sites class:
/// `L_i = pinvar·I_i + (1−pinvar)·site_Γ·e^{S_i}` computed in log space
/// (`site_gamma` is the unscaled Γ-mixture value, `scaler` the
/// accumulated log rescaling `S_i`, `inv_support` the stationary mass of
/// states the pattern is compatible with being constant in).
pub(crate) fn ln_site_likelihood(
    site_gamma: f64,
    scaler: f64,
    pinvar: f64,
    inv_support: f64,
) -> f64 {
    if pinvar <= 0.0 {
        return if site_gamma > 0.0 {
            site_gamma.ln() + scaler
        } else {
            f64::NEG_INFINITY
        };
    }
    let ln_gamma_term = if site_gamma > 0.0 {
        (1.0 - pinvar).ln() + site_gamma.ln() + scaler
    } else {
        f64::NEG_INFINITY
    };
    let ln_inv_term = if inv_support > 0.0 {
        pinvar.ln() + inv_support.ln()
    } else {
        f64::NEG_INFINITY
    };
    // log-sum-exp of the two mixture components.
    let hi = ln_gamma_term.max(ln_inv_term);
    if hi == f64::NEG_INFINITY {
        f64::NEG_INFINITY
    } else {
        hi + ((ln_gamma_term - hi).exp() + (ln_inv_term - hi).exp()).ln()
    }
}

/// Stationary-frequency mass of the states in a constant-pattern mask.
pub(crate) fn invariant_support(mask: u8, freqs: &[f64; 4]) -> f64 {
    let mut acc = 0.0;
    for (s, &f) in freqs.iter().enumerate() {
        if mask & (1 << s) != 0 {
            acc += f;
        }
    }
    acc
}

/// Workspace + driver for computing tree log-likelihoods.
pub struct TreeLikelihood {
    model: SiteModel,
    n_patterns: usize,
    weights: Vec<f64>,
    /// Per-node CLV slots; tips are initialized once, internals reused.
    clvs: Vec<Option<Clv>>,
    /// Which nodes are tips (their CLVs are immutable).
    is_tip: Vec<bool>,
    /// Per-pattern accumulated log scalers, reset each evaluation.
    scalers: Vec<f32>,
    /// Per-pattern constant-state masks (for the +I likelihood term).
    const_masks: Vec<u8>,
    /// Rescale after every n-th internal node (0 = never).
    scale_every: usize,
}

impl TreeLikelihood {
    /// Build the workspace for `tree` over `data` under `model`.
    ///
    /// Leaf nodes are matched to alignment rows by taxon name. The tree's
    /// arena must stay fixed afterwards (branch lengths and topology may
    /// change — that is what MCMC does — but node identity must not).
    pub fn new(
        tree: &Tree,
        data: &PatternAlignment,
        model: SiteModel,
    ) -> Result<TreeLikelihood, LikelihoodError> {
        Self::with_scaling(tree, data, model, 1)
    }

    /// As [`TreeLikelihood::new`] with an explicit scaling period.
    pub fn with_scaling(
        tree: &Tree,
        data: &PatternAlignment,
        model: SiteModel,
        scale_every: usize,
    ) -> Result<TreeLikelihood, LikelihoodError> {
        tree.validate()?;
        let n_patterns = data.n_patterns();
        let n_rates = model.n_rates();
        let taxon_index: HashMap<&str, usize> = data
            .taxa()
            .iter()
            .enumerate()
            .map(|(i, t)| (t.as_str(), i))
            .collect();
        let mut clvs: Vec<Option<Clv>> = Vec::with_capacity(tree.n_nodes());
        let mut is_tip = Vec::with_capacity(tree.n_nodes());
        for id in tree.node_ids() {
            let node = tree.node(id);
            if node.is_leaf() {
                let name = node.name.as_deref().expect("validated leaf has a name");
                let &t = taxon_index
                    .get(name)
                    .ok_or_else(|| LikelihoodError::UnknownTaxon(name.to_string()))?;
                clvs.push(Some(Clv::tip(data.taxon_patterns(t), n_rates)));
                is_tip.push(true);
            } else {
                clvs.push(Some(Clv::zeroed(n_patterns, n_rates)));
                is_tip.push(false);
            }
        }
        Ok(TreeLikelihood {
            model,
            n_patterns,
            weights: data.weights().iter().map(|&w| w as f64).collect(),
            clvs,
            is_tip,
            scalers: vec![0.0; n_patterns],
            const_masks: data.constant_masks(),
            scale_every,
        })
    }

    /// The site model in use.
    pub fn model(&self) -> &SiteModel {
        &self.model
    }

    /// Replace the site model (after an MCMC model-parameter move).
    pub fn set_model(&mut self, model: SiteModel) {
        assert_eq!(model.n_rates(), self.model.n_rates(), "rate-count change requires a new workspace");
        self.model = model;
    }

    /// Number of site patterns.
    pub fn n_patterns(&self) -> usize {
        self.n_patterns
    }

    /// Evaluate the log-likelihood of `tree` using `backend`.
    ///
    /// Recomputes every transition matrix and the full postorder sweep —
    /// the paper's experiments likewise touch the whole tree per PLF
    /// round, which is what makes the PLF >85% of runtime.
    pub fn log_likelihood(
        &mut self,
        tree: &Tree,
        backend: &mut dyn PlfBackend,
    ) -> Result<f64, LikelihoodError> {
        let plan = PlfPlan::for_tree(tree, self.scale_every)?;
        self.log_likelihood_planned(tree, &plan, backend)
    }

    /// Evaluate with a pre-built plan (avoids replanning when only branch
    /// lengths changed).
    pub fn log_likelihood_planned(
        &mut self,
        tree: &Tree,
        plan: &PlfPlan,
        backend: &mut dyn PlfBackend,
    ) -> Result<f64, LikelihoodError> {
        debug_assert_eq!(tree.n_nodes(), self.clvs.len());
        self.scalers.iter_mut().for_each(|s| *s = 0.0);
        backend.begin_evaluation();

        // Per-branch transition matrices (one set per non-root node).
        let tms: Vec<Option<TransitionMatrices>> = tree
            .node_ids()
            .map(|id| {
                if id == tree.root() {
                    None
                } else {
                    Some(self.model.transition_matrices(tree.node(id).branch))
                }
            })
            .collect();
        let tm = |id: NodeId| tms[id.0].as_ref().expect("non-root node has a branch matrix");

        for op in plan.ops() {
            match op {
                PlfOp::Down { node, left, right } => {
                    let mut out = self.clvs[node.0].take().expect("CLV slot present");
                    let result = {
                        let l = self.clvs[left.0].as_ref().expect("child CLV computed");
                        let r = self.clvs[right.0].as_ref().expect("child CLV computed");
                        backend.cond_like_down(l, tm(*left), r, tm(*right), &mut out)
                    };
                    // The slot must be restored even on error, or the
                    // workspace is poisoned for the next evaluation.
                    self.clvs[node.0] = Some(out);
                    result?;
                }
                PlfOp::Root { node, children } => {
                    let mut out = self.clvs[node.0].take().expect("CLV slot present");
                    let result = {
                        let a = self.clvs[children[0].0].as_ref().unwrap();
                        let b = self.clvs[children[1].0].as_ref().unwrap();
                        let c = children
                            .get(2)
                            .map(|c3| (self.clvs[c3.0].as_ref().unwrap(), tm(*c3)));
                        backend.cond_like_root(a, tm(children[0]), b, tm(children[1]), c, &mut out)
                    };
                    self.clvs[node.0] = Some(out);
                    result?;
                }
                PlfOp::Scale { node } => {
                    assert!(!self.is_tip[node.0], "tips are never rescaled");
                    let mut clv = self.clvs[node.0].take().expect("CLV slot present");
                    let result = backend.cond_like_scaler(&mut clv, &mut self.scalers);
                    self.clvs[node.0] = Some(clv);
                    result?;
                }
            }
        }
        Ok(self.integrate_root(plan.root()))
    }

    /// Σ over patterns of `weight · ln L_i`, where `L_i` mixes the Γ
    /// categories and (under `+I`) the invariable-sites class.
    fn integrate_root(&self, root: NodeId) -> f64 {
        let clv = self.clvs[root.0].as_ref().expect("root CLV computed");
        let n_rates = self.model.n_rates();
        let freqs = self.model.freqs();
        let pinvar = self.model.pinvar();
        let cat_weight = 1.0 / n_rates as f64;
        let mut lnl = 0.0f64;
        for i in 0..self.n_patterns {
            let mut site = 0.0f64;
            for k in 0..n_rates {
                let e = clv.entry(i, k);
                let mut acc = 0.0f64;
                for s in 0..N_STATES {
                    acc += freqs[s] * e[s] as f64;
                }
                site += cat_weight * acc;
            }
            let inv = invariant_support(self.const_masks[i], &freqs);
            lnl += self.weights[i]
                * ln_site_likelihood(site, self.scalers[i] as f64, pinvar, inv);
        }
        lnl
    }

    /// Read access to a node's CLV (for tests and cross-backend checks).
    pub fn clv(&self, node: NodeId) -> &Clv {
        self.clvs[node.0].as_ref().expect("CLV slot present")
    }

    /// The accumulated per-pattern log scalers from the last evaluation.
    pub fn scalers(&self) -> &[f32] {
        &self.scalers
    }

    // ---- pub(crate) surface for the fused cross-job driver ----
    // (`crate::fused` is panic-free L2 code; these accessors keep its
    // access to the workspace checkable instead of field pokes.)

    /// The scaling period this workspace plans with.
    pub(crate) fn scale_every(&self) -> usize {
        self.scale_every
    }

    /// Zero the running scaler vector (start of an evaluation).
    pub(crate) fn reset_scalers(&mut self) {
        self.scalers.iter_mut().for_each(|s| *s = 0.0);
    }

    /// Move a node's CLV out of its slot (`None` if absent or out of
    /// range — an invariant breach the fused driver surfaces as an
    /// error rather than a panic).
    pub(crate) fn take_clv(&mut self, node: NodeId) -> Option<Clv> {
        self.clvs.get_mut(node.0).and_then(Option::take)
    }

    /// Restore a node's CLV taken with [`TreeLikelihood::take_clv`].
    pub(crate) fn put_clv(&mut self, node: NodeId, clv: Clv) {
        if let Some(slot) = self.clvs.get_mut(node.0) {
            *slot = Some(clv);
        }
    }

    /// Shared access to a node's CLV without panicking on absence.
    pub(crate) fn clv_opt(&self, node: NodeId) -> Option<&Clv> {
        self.clvs.get(node.0).and_then(Option::as_ref)
    }

    /// Overwrite a node's CLV with a cached copy; `false` if the slot
    /// is missing or the shapes disagree (the caller then treats the
    /// lookup as unusable).
    pub(crate) fn overwrite_clv(&mut self, node: NodeId, src: &Clv) -> bool {
        match self.clvs.get_mut(node.0) {
            Some(Some(dst))
                if dst.n_patterns() == src.n_patterns() && dst.n_rates() == src.n_rates() =>
            {
                dst.as_mut_slice().copy_from_slice(src.as_slice());
                true
            }
            _ => false,
        }
    }

    /// Accumulate a cached (or scratch) scaler delta into the running
    /// vector: the identical `f32` additions a fresh scale would do.
    pub(crate) fn add_scalers(&mut self, delta: &[f32]) {
        for (acc, &d) in self.scalers.iter_mut().zip(delta) {
            *acc += d;
        }
    }

    /// Host-side root integration for the fused driver.
    pub(crate) fn integrate_root_at(&self, root: NodeId) -> f64 {
        self.integrate_root(root)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alignment::Alignment;
    use crate::kernels::{ScalarBackend, Simd4Backend};
    use crate::model::GtrParams;

    fn toy() -> (Tree, PatternAlignment) {
        let tree = Tree::from_newick("((a:0.1,b:0.2):0.05,c:0.3,d:0.4);").unwrap();
        let aln = Alignment::from_strings(&[
            ("a", "ACGTACGTAA"),
            ("b", "ACGTACGTAC"),
            ("c", "ACGAACGTTA"),
            ("d", "ACTTACGTAA"),
        ])
        .unwrap()
        .compress();
        (tree, aln)
    }

    #[test]
    fn likelihood_is_finite_and_negative() {
        let (tree, aln) = toy();
        let model = SiteModel::gtr_gamma4(GtrParams::jc69(), 0.5).unwrap();
        let mut tl = TreeLikelihood::new(&tree, &aln, model).unwrap();
        let lnl = tl.log_likelihood(&tree, &mut ScalarBackend).unwrap();
        assert!(lnl.is_finite());
        assert!(lnl < 0.0, "log-likelihood {lnl} should be negative");
    }

    #[test]
    fn scalar_and_simd_agree() {
        let (tree, aln) = toy();
        let model = SiteModel::gtr_gamma4(GtrParams::hky85(2.0, [0.3, 0.2, 0.2, 0.3]), 0.7).unwrap();
        let mut tl = TreeLikelihood::new(&tree, &aln, model.clone()).unwrap();
        let l_scalar = tl.log_likelihood(&tree, &mut ScalarBackend).unwrap();
        let mut tl2 = TreeLikelihood::new(&tree, &aln, model).unwrap();
        let l_simd = tl2
            .log_likelihood(&tree, &mut Simd4Backend::col_wise())
            .unwrap();
        assert_eq!(l_scalar, l_simd, "colwise SIMD must be bitwise identical");
        let mut tl3 = TreeLikelihood::new(
            &tree,
            &aln,
            SiteModel::gtr_gamma4(GtrParams::hky85(2.0, [0.3, 0.2, 0.2, 0.3]), 0.7).unwrap(),
        )
        .unwrap();
        let l_row = tl3
            .log_likelihood(&tree, &mut Simd4Backend::row_wise())
            .unwrap();
        assert!((l_scalar - l_row).abs() < 1e-3);
    }

    #[test]
    fn scaling_does_not_change_likelihood() {
        let (tree, aln) = toy();
        let model = SiteModel::gtr_gamma4(GtrParams::jc69(), 0.5).unwrap();
        let mut every = TreeLikelihood::with_scaling(&tree, &aln, model.clone(), 1).unwrap();
        let mut never = TreeLikelihood::with_scaling(&tree, &aln, model, 0).unwrap();
        let a = every.log_likelihood(&tree, &mut ScalarBackend).unwrap();
        let b = never.log_likelihood(&tree, &mut ScalarBackend).unwrap();
        assert!((a - b).abs() < 1e-3, "scaled {a} vs unscaled {b}");
    }

    #[test]
    fn longer_branches_lower_likelihood_for_identical_data() {
        // Identical sequences: any substitution lowers the likelihood, so
        // stretching branches must hurt.
        let aln = Alignment::from_strings(&[
            ("a", "ACGTACGT"),
            ("b", "ACGTACGT"),
            ("c", "ACGTACGT"),
            ("d", "ACGTACGT"),
        ])
        .unwrap()
        .compress();
        let short = Tree::from_newick("((a:0.01,b:0.01):0.01,c:0.01,d:0.01);").unwrap();
        let long = Tree::from_newick("((a:1.0,b:1.0):1.0,c:1.0,d:1.0);").unwrap();
        let model = SiteModel::gtr_gamma4(GtrParams::jc69(), 1.0).unwrap();
        let mut tls = TreeLikelihood::new(&short, &aln, model.clone()).unwrap();
        let mut tll = TreeLikelihood::new(&long, &aln, model).unwrap();
        let ls = tls.log_likelihood(&short, &mut ScalarBackend).unwrap();
        let ll = tll.log_likelihood(&long, &mut ScalarBackend).unwrap();
        assert!(ls > ll, "short {ls} should beat long {ll}");
    }

    #[test]
    fn unknown_taxon_rejected() {
        let (tree, _) = toy();
        let aln = Alignment::from_strings(&[
            ("a", "ACGT"),
            ("b", "ACGT"),
            ("c", "ACGT"),
            ("zzz", "ACGT"),
        ])
        .unwrap()
        .compress();
        let model = SiteModel::jc69();
        assert!(matches!(
            TreeLikelihood::new(&tree, &aln, model),
            Err(LikelihoodError::UnknownTaxon(_))
        ));
    }

    #[test]
    fn likelihood_invariant_under_pattern_weighting() {
        // Computing on the compressed alignment must equal computing on
        // the uncompressed one.
        let (tree, _) = toy();
        let aln = Alignment::from_strings(&[
            ("a", "AAACCC"),
            ("b", "AAACCC"),
            ("c", "AAACCG"),
            ("d", "AAACCC"),
        ])
        .unwrap();
        let compressed = aln.compress();
        assert!(compressed.n_patterns() < aln.n_sites());
        // Expand into an equivalent all-weight-1 pattern alignment.
        let expanded = compressed.decompress().compress();
        let model = SiteModel::gtr_gamma4(GtrParams::jc69(), 0.5).unwrap();
        let mut t1 = TreeLikelihood::new(&tree, &compressed, model.clone()).unwrap();
        let mut t2 = TreeLikelihood::new(&tree, &expanded, model).unwrap();
        let a = t1.log_likelihood(&tree, &mut ScalarBackend).unwrap();
        let b = t2.log_likelihood(&tree, &mut ScalarBackend).unwrap();
        assert!((a - b).abs() < 1e-9);
    }

    #[test]
    fn pinvar_zero_matches_plain_gamma() {
        let (tree, aln) = toy();
        let base = SiteModel::gtr_gamma4(GtrParams::jc69(), 0.5).unwrap();
        let with_zero = base.clone().with_pinvar(0.0).unwrap();
        let mut t1 = TreeLikelihood::new(&tree, &aln, base).unwrap();
        let mut t2 = TreeLikelihood::new(&tree, &aln, with_zero).unwrap();
        let a = t1.log_likelihood(&tree, &mut ScalarBackend).unwrap();
        let b = t2.log_likelihood(&tree, &mut ScalarBackend).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn pinvar_helps_on_constant_heavy_data() {
        // Data with many constant columns: a +I class should fit better
        // than forcing all sites through the Γ rates.
        let aln = Alignment::from_strings(&[
            ("a", "AAAAAAAAAACCCCCCCCCCGGGGGGGGGGTA"),
            ("b", "AAAAAAAAAACCCCCCCCCCGGGGGGGGGGTC"),
            ("c", "AAAAAAAAAACCCCCCCCCCGGGGGGGGGGTA"),
            ("d", "AAAAAAAAAACCCCCCCCCCGGGGGGGGGGTA"),
        ])
        .unwrap()
        .compress();
        let tree = Tree::from_newick("((a:0.3,b:0.3):0.1,c:0.3,d:0.3);").unwrap();
        let base = SiteModel::gtr_gamma4(GtrParams::jc69(), 2.0).unwrap();
        let with_inv = base.clone().with_pinvar(0.6).unwrap();
        let mut t1 = TreeLikelihood::new(&tree, &aln, base).unwrap();
        let mut t2 = TreeLikelihood::new(&tree, &aln, with_inv).unwrap();
        let plain = t1.log_likelihood(&tree, &mut ScalarBackend).unwrap();
        let inv = t2.log_likelihood(&tree, &mut ScalarBackend).unwrap();
        assert!(inv > plain, "+I {inv} should beat plain {plain} here");
    }

    #[test]
    fn pinvar_kills_variable_only_patterns() {
        // A pattern incompatible with constancy keeps a finite
        // likelihood through the Γ term even at high pinvar.
        let aln = Alignment::from_strings(&[("a", "A"), ("b", "C"), ("c", "G")])
            .unwrap()
            .compress();
        let tree = Tree::from_newick("(a:0.2,b:0.2,c:0.2);").unwrap();
        let model = SiteModel::gtr_gamma4(GtrParams::jc69(), 1.0)
            .unwrap()
            .with_pinvar(0.9)
            .unwrap();
        let mut t = TreeLikelihood::new(&tree, &aln, model).unwrap();
        let lnl = t.log_likelihood(&tree, &mut ScalarBackend).unwrap();
        assert!(lnl.is_finite());
        // The Γ term is down-weighted by (1-pinvar): lnL must be lower
        // than without +I.
        let plain_model = SiteModel::gtr_gamma4(GtrParams::jc69(), 1.0).unwrap();
        let mut t2 = TreeLikelihood::new(&tree, &aln, plain_model).unwrap();
        let plain = t2.log_likelihood(&tree, &mut ScalarBackend).unwrap();
        assert!(lnl < plain);
        assert!((lnl - (plain + 0.1f64.ln())).abs() < 1e-6, "exact (1-pinvar) down-weighting");
    }

    #[test]
    fn ln_site_likelihood_edge_cases() {
        use super::ln_site_likelihood;
        // No +I: plain log.
        assert!((ln_site_likelihood(0.5, 1.0, 0.0, 0.25) - (0.5f64.ln() + 1.0)).abs() < 1e-12);
        assert_eq!(ln_site_likelihood(0.0, 0.0, 0.0, 0.25), f64::NEG_INFINITY);
        // Pure invariant fallback when the Γ term vanishes.
        let v = ln_site_likelihood(0.0, 0.0, 0.2, 0.25);
        assert!((v - (0.2f64 * 0.25).ln()).abs() < 1e-12);
        // Both zero: impossible site.
        assert_eq!(ln_site_likelihood(0.0, 0.0, 0.2, 0.0), f64::NEG_INFINITY);
        // Huge negative scaler must not overflow.
        let v = ln_site_likelihood(0.5, -5000.0, 0.2, 0.25);
        assert!((v - (0.2f64 * 0.25).ln()).abs() < 1e-9);
    }

    #[test]
    fn jc69_single_site_closed_form() {
        // Two taxa at distance t under JC69 (rooted anchor): for an
        // identical site, L = Σ_s π_s P_ss... Using a 3-leaf star with
        // two zero branches collapses to a simple check that likelihood
        // increases when data match short branches.
        let tree = Tree::from_newick("(a:0.0,b:0.0,c:0.1);").unwrap();
        let aln = Alignment::from_strings(&[("a", "A"), ("b", "A"), ("c", "A")])
            .unwrap()
            .compress();
        let model = SiteModel::jc69();
        let mut tl = TreeLikelihood::new(&tree, &aln, model).unwrap();
        let lnl = tl.log_likelihood(&tree, &mut ScalarBackend).unwrap();
        // L = π_A * P_AA(0.1) = 0.25 * (1/4 + 3/4 e^{-4·0.1/3})
        let p_aa = 0.25 + 0.75 * (-4.0 * 0.1 / 3.0f64).exp();
        let expect = (0.25 * p_aa).ln();
        assert!((lnl - expect).abs() < 1e-5, "got {lnl}, want {expect}");
    }
}

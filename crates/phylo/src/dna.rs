//! DNA state encoding.
//!
//! Nucleotides are the four states of the substitution process
//! (Figure 1 of the paper). Observed sequence data may be ambiguous, so
//! sequences are stored as IUPAC ambiguity bitmasks: bit 0 = A, bit 1 = C,
//! bit 2 = G, bit 3 = T. A fully determined site has exactly one bit set;
//! a gap/unknown site has all four bits set, exactly as MrBayes treats
//! missing data in its conditional likelihood tips.

/// Number of DNA states.
pub const N_STATES: usize = 4;

/// A concrete (unambiguous) nucleotide.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum Nucleotide {
    /// Adenine
    A = 0,
    /// Cytosine
    C = 1,
    /// Guanine
    G = 2,
    /// Thymine
    T = 3,
}

impl Nucleotide {
    /// All four nucleotides in state order.
    pub const ALL: [Nucleotide; 4] = [Nucleotide::A, Nucleotide::C, Nucleotide::G, Nucleotide::T];

    /// State index in `0..4`.
    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }

    /// Construct from a state index in `0..4`.
    ///
    /// # Panics
    /// Panics if `i >= 4`.
    #[inline]
    pub fn from_index(i: usize) -> Nucleotide {
        Nucleotide::ALL[i]
    }

    /// Upper-case character representation.
    pub fn to_char(self) -> char {
        match self {
            Nucleotide::A => 'A',
            Nucleotide::C => 'C',
            Nucleotide::G => 'G',
            Nucleotide::T => 'T',
        }
    }
}

/// An IUPAC ambiguity code stored as a 4-bit state mask.
///
/// The mask is never zero for a valid code: a site always admits at least
/// one state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct StateMask(u8);

impl StateMask {
    /// Mask admitting every state (gap / completely missing data).
    pub const ANY: StateMask = StateMask(0b1111);

    /// Build a mask from raw bits (low 4 bits used).
    ///
    /// Returns `None` when no state bit is set.
    pub fn from_bits(bits: u8) -> Option<StateMask> {
        let bits = bits & 0b1111;
        if bits == 0 {
            None
        } else {
            Some(StateMask(bits))
        }
    }

    /// Mask admitting exactly one nucleotide.
    #[inline]
    pub fn of(n: Nucleotide) -> StateMask {
        StateMask(1 << n.index())
    }

    /// Raw bit representation (low 4 bits).
    #[inline]
    pub fn bits(self) -> u8 {
        self.0
    }

    /// Does the mask admit state `s`?
    #[inline]
    pub fn admits(self, s: usize) -> bool {
        debug_assert!(s < N_STATES);
        self.0 & (1 << s) != 0
    }

    /// Number of admitted states (1..=4).
    #[inline]
    pub fn count(self) -> u32 {
        self.0.count_ones()
    }

    /// Is this an unambiguous (single-state) observation?
    #[inline]
    pub fn is_determined(self) -> bool {
        self.0.count_ones() == 1
    }

    /// The unique nucleotide if the mask is determined.
    pub fn as_nucleotide(self) -> Option<Nucleotide> {
        if self.is_determined() {
            Some(Nucleotide::from_index(self.0.trailing_zeros() as usize))
        } else {
            None
        }
    }

    /// Parse an IUPAC DNA character (case-insensitive). `-`, `.`, `?`, `N`
    /// and `X` all map to [`StateMask::ANY`].
    pub fn from_iupac(c: char) -> Option<StateMask> {
        let bits = match c.to_ascii_uppercase() {
            'A' => 0b0001,
            'C' => 0b0010,
            'G' => 0b0100,
            'T' | 'U' => 0b1000,
            'R' => 0b0101, // A|G
            'Y' => 0b1010, // C|T
            'S' => 0b0110, // C|G
            'W' => 0b1001, // A|T
            'K' => 0b1100, // G|T
            'M' => 0b0011, // A|C
            'B' => 0b1110, // C|G|T
            'D' => 0b1101, // A|G|T
            'H' => 0b1011, // A|C|T
            'V' => 0b0111, // A|C|G
            'N' | 'X' | '-' | '.' | '?' => 0b1111,
            _ => return None,
        };
        Some(StateMask(bits))
    }

    /// IUPAC character for the mask.
    pub fn to_iupac(self) -> char {
        match self.0 {
            0b0001 => 'A',
            0b0010 => 'C',
            0b0100 => 'G',
            0b1000 => 'T',
            0b0101 => 'R',
            0b1010 => 'Y',
            0b0110 => 'S',
            0b1001 => 'W',
            0b1100 => 'K',
            0b0011 => 'M',
            0b1110 => 'B',
            0b1101 => 'D',
            0b1011 => 'H',
            0b0111 => 'V',
            _ => 'N',
        }
    }
}

impl From<Nucleotide> for StateMask {
    fn from(n: Nucleotide) -> StateMask {
        StateMask::of(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nucleotide_roundtrip() {
        for (i, n) in Nucleotide::ALL.iter().enumerate() {
            assert_eq!(n.index(), i);
            assert_eq!(Nucleotide::from_index(i), *n);
        }
    }

    #[test]
    fn single_state_masks_are_determined() {
        for n in Nucleotide::ALL {
            let m = StateMask::of(n);
            assert!(m.is_determined());
            assert_eq!(m.as_nucleotide(), Some(n));
            assert_eq!(m.count(), 1);
            for s in 0..N_STATES {
                assert_eq!(m.admits(s), s == n.index());
            }
        }
    }

    #[test]
    fn iupac_roundtrip_all_codes() {
        for c in "ACGTRYSWKMBDHVN".chars() {
            let m = StateMask::from_iupac(c).unwrap();
            assert_eq!(m.to_iupac(), c);
        }
    }

    #[test]
    fn gap_and_unknown_map_to_any() {
        for c in ['-', '.', '?', 'N', 'n', 'x'] {
            assert_eq!(StateMask::from_iupac(c), Some(StateMask::ANY));
        }
        assert_eq!(StateMask::ANY.count(), 4);
    }

    #[test]
    fn lowercase_accepted() {
        assert_eq!(
            StateMask::from_iupac('a'),
            Some(StateMask::of(Nucleotide::A))
        );
        assert_eq!(StateMask::from_iupac('u'), StateMask::from_iupac('T'));
    }

    #[test]
    fn invalid_chars_rejected() {
        for c in ['Z', 'q', '!', '5'] {
            assert_eq!(StateMask::from_iupac(c), None);
        }
    }

    #[test]
    fn zero_mask_rejected() {
        assert_eq!(StateMask::from_bits(0), None);
        assert_eq!(StateMask::from_bits(0b10000), None); // high bits ignored
        assert!(StateMask::from_bits(0b10001).is_some());
    }
}

//! The self-healing layer: circuit breakers, watchdog policy, and the
//! adaptive admission controller.
//!
//! Three mechanisms keep the service degrading gracefully instead of
//! failing hard, each reacting to a *pattern* of failure the per-job
//! resilience wrapper cannot see:
//!
//! * **Per-backend circuit breakers** ([`CircuitBreaker`]): a worker
//!   whose backend keeps returning [`PlfError`] faults transitions
//!   `Closed → Open`; dispatch then routes fused batches to healthy
//!   workers. After a cooldown the breaker goes `HalfOpen` and the
//!   worker runs a tiny seeded-deterministic probe evaluation — probe
//!   success re-closes the breaker, failure re-opens it.
//! * **Watchdog supervision** ([`WatchdogPolicy`]): a supervisor thread
//!   (in `dispatch.rs`) polls worker liveness and heartbeats, respawns
//!   dead workers, and re-queues their in-flight jobs. The at-most-once
//!   guard on `Job` keeps a duplicate execution from double-publishing.
//! * **Adaptive load shedding** ([`AdmissionController`]): admission
//!   tracks an EWMA of observed per-job service time and sheds new work
//!   (with an honest, lane-aware retry-after hint) when the estimated
//!   queue delay exceeds the policy target — overload is refused at the
//!   door instead of being queued into certain deadline misses.
//!
//! DESIGN.md §12 has the full state machines.
//!
//! This file is in `plf-lint`'s L2 hot-path scope: no panicking calls.

use plf_phylo::kernels::PlfBackend;
use plf_phylo::likelihood::TreeLikelihood;
use plf_phylo::metrics::ServiceCounters;
use plf_phylo::resilience::PlfError;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// A factory producing a fresh backend for a respawned worker slot.
///
/// `Box<dyn PlfBackend>` is not `Clone`, so the watchdog cannot reuse a
/// dead worker's backend; it builds a replacement from this factory.
/// Cross-backend bit-parity (every backend produces bit-identical
/// log-likelihoods) makes any factory a correct choice — the default is
/// the scalar reference backend.
pub type BackendFactory = Arc<dyn Fn() -> Box<dyn PlfBackend> + Send + Sync>;

/// Is this error a *backend* fault (should feed the circuit breaker)?
///
/// Configuration errors are caller mistakes — a bad tree or model fails
/// identically on every backend, so they must not open a breaker.
pub(crate) fn is_backend_fault(err: &PlfError) -> bool {
    match err {
        PlfError::Config(_) => false,
        PlfError::Exhausted { last, .. } => is_backend_fault(last),
        PlfError::InvalidOutput { .. }
        | PlfError::Transfer { .. }
        | PlfError::Launch { .. }
        | PlfError::WorkerPanic { .. } => true,
    }
}

// ---------------------------------------------------------- breakers

/// Circuit-breaker state (see DESIGN.md §12 for the transition diagram).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Healthy: the worker receives regular dispatch traffic.
    Closed,
    /// Tripped: no dispatch traffic; waiting out the cooldown.
    Open,
    /// Cooldown elapsed: a probe job is deciding between re-close and
    /// re-open.
    HalfOpen,
}

impl BreakerState {
    /// Stable lowercase label for reports.
    pub fn label(self) -> &'static str {
        match self {
            BreakerState::Closed => "closed",
            BreakerState::Open => "open",
            BreakerState::HalfOpen => "half-open",
        }
    }
}

/// Circuit-breaker knobs.
#[derive(Debug, Clone)]
pub struct BreakerPolicy {
    /// Consecutive backend faults that trip the breaker open.
    pub failure_threshold: u32,
    /// How long an open breaker waits before probing.
    pub cooldown: Duration,
    /// Seed for the deterministic probe evaluations; each probe uses
    /// `probe_seed + probe_index` so retries are reproducible but not
    /// identical occasions.
    pub probe_seed: u64,
}

impl Default for BreakerPolicy {
    fn default() -> BreakerPolicy {
        BreakerPolicy {
            failure_threshold: 3,
            cooldown: Duration::from_millis(50),
            probe_seed: 2009,
        }
    }
}

#[derive(Debug)]
struct BreakerInner {
    state: BreakerState,
    consecutive_faults: u32,
    opened_at: Option<Instant>,
    probes: u64,
}

/// One worker slot's circuit breaker. Transitions are recorded in the
/// shared [`ServiceCounters`] as they happen.
#[derive(Debug)]
pub(crate) struct CircuitBreaker {
    inner: Mutex<BreakerInner>,
    policy: BreakerPolicy,
    counters: Arc<ServiceCounters>,
}

impl CircuitBreaker {
    pub(crate) fn new(policy: BreakerPolicy, counters: Arc<ServiceCounters>) -> CircuitBreaker {
        CircuitBreaker {
            inner: Mutex::new(BreakerInner {
                state: BreakerState::Closed,
                consecutive_faults: 0,
                opened_at: None,
                probes: 0,
            }),
            policy,
            counters,
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, BreakerInner> {
        self.inner.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Current state.
    pub(crate) fn state(&self) -> BreakerState {
        self.lock().state
    }

    /// May the dispatcher route regular traffic to this worker?
    pub(crate) fn allows_dispatch(&self) -> bool {
        self.lock().state == BreakerState::Closed
    }

    /// Record one successfully evaluated job (resets the fault streak).
    pub(crate) fn record_success(&self) {
        self.lock().consecutive_faults = 0;
    }

    /// Record one backend fault. Trips `Closed → Open` when the streak
    /// reaches the policy threshold.
    pub(crate) fn record_fault(&self, now: Instant) {
        let mut inner = self.lock();
        inner.consecutive_faults = inner.consecutive_faults.saturating_add(1);
        if inner.state == BreakerState::Closed
            && inner.consecutive_faults >= self.policy.failure_threshold.max(1)
        {
            inner.state = BreakerState::Open;
            inner.opened_at = Some(now);
            drop(inner);
            self.counters.record_breaker_open();
        }
    }

    /// If the breaker is `Open` and the cooldown has elapsed, move to
    /// `HalfOpen` and return the seed for the probe the caller must now
    /// run (followed by [`CircuitBreaker::record_probe`]).
    pub(crate) fn probe_due(&self, now: Instant) -> Option<u64> {
        let mut inner = self.lock();
        if inner.state != BreakerState::Open {
            return None;
        }
        let due = inner
            .opened_at
            .map(|t| now.saturating_duration_since(t) >= self.policy.cooldown)
            .unwrap_or(true);
        if !due {
            return None;
        }
        inner.state = BreakerState::HalfOpen;
        let seed = self.policy.probe_seed.wrapping_add(inner.probes);
        inner.probes += 1;
        drop(inner);
        self.counters.record_breaker_half_open();
        Some(seed)
    }

    /// Resolve a half-open probe: success re-closes the breaker,
    /// failure re-opens it (restarting the cooldown).
    pub(crate) fn record_probe(&self, ok: bool, now: Instant) {
        self.counters.record_probe(ok);
        let mut inner = self.lock();
        if inner.state != BreakerState::HalfOpen {
            return;
        }
        if ok {
            inner.state = BreakerState::Closed;
            inner.consecutive_faults = 0;
            inner.opened_at = None;
            drop(inner);
            self.counters.record_breaker_close();
        } else {
            inner.state = BreakerState::Open;
            inner.opened_at = Some(now);
            drop(inner);
            self.counters.record_breaker_open();
        }
    }
}

/// Run one seeded-deterministic probe evaluation on `backend`: a tiny
/// 4-taxon dataset generated from `seed`, judged healthy when it
/// produces a finite log-likelihood. Panics are contained and count as
/// probe failure.
pub(crate) fn run_probe(backend: &mut dyn PlfBackend, seed: u64) -> bool {
    let result = catch_unwind(AssertUnwindSafe(|| {
        let ds = plf_seqgen::generate(plf_seqgen::DatasetSpec::new(4, 8), seed);
        let mut eval = TreeLikelihood::new(&ds.tree, &ds.data, plf_seqgen::default_model())?;
        eval.log_likelihood(&ds.tree, backend)
    }));
    matches!(result, Ok(Ok(lnl)) if lnl.is_finite())
}

// ---------------------------------------------------------- watchdog

/// Watchdog supervision knobs.
#[derive(Debug, Clone)]
pub struct WatchdogPolicy {
    /// How often the watchdog polls worker liveness.
    pub interval: Duration,
    /// How stale a busy worker's heartbeat may grow before it is
    /// counted as hung (a detection: threads cannot be preempted, so a
    /// hang is surfaced in the counters rather than force-killed).
    pub hang_timeout: Duration,
}

impl Default for WatchdogPolicy {
    fn default() -> WatchdogPolicy {
        WatchdogPolicy {
            interval: Duration::from_millis(5),
            hang_timeout: Duration::from_secs(2),
        }
    }
}

// ---------------------------------------------------------- shedding

/// Adaptive load-shedding knobs.
#[derive(Debug, Clone)]
pub struct ShedPolicy {
    /// Shed a submission when its estimated queue delay exceeds this.
    pub target_delay: Duration,
    /// EWMA weight of the newest service-time observation, in `(0, 1]`.
    pub alpha: f64,
}

impl Default for ShedPolicy {
    fn default() -> ShedPolicy {
        ShedPolicy {
            target_delay: Duration::from_millis(500),
            alpha: 0.2,
        }
    }
}

/// Floor for retry-after hints.
const HINT_MIN: Duration = Duration::from_micros(100);
/// Ceiling for retry-after hints.
const HINT_MAX: Duration = Duration::from_secs(1);

/// Backlog-and-latency-aware admission estimator shared between the
/// queue (which asks for shed decisions and retry hints) and the
/// workers (which feed it completed-job service times).
///
/// The estimate for a submission with `jobs_ahead` queued jobs that
/// will drain before it is `jobs_ahead × ewma(service) / workers` —
/// lane-aware because the caller counts only the jobs that actually
/// drain first (the high lane sees only high-lane backlog; the normal
/// lane sees both).
#[derive(Debug)]
pub(crate) struct AdmissionController {
    /// EWMA of per-job service time, integer nanoseconds.
    drain_nanos: AtomicU64,
    workers: AtomicUsize,
    policy: ShedPolicy,
}

impl AdmissionController {
    /// `initial` seeds the EWMA before any completion was observed
    /// (the configured static drain hint).
    pub(crate) fn new(initial: Duration, policy: ShedPolicy) -> Arc<AdmissionController> {
        let nanos = u64::try_from(initial.as_nanos()).unwrap_or(u64::MAX).max(1);
        Arc::new(AdmissionController {
            drain_nanos: AtomicU64::new(nanos),
            workers: AtomicUsize::new(1),
            policy,
        })
    }

    /// Tell the controller how many workers drain the queue.
    pub(crate) fn set_workers(&self, n: usize) {
        self.workers.store(n.max(1), Ordering::Relaxed);
    }

    /// Fold one observed per-job service time into the EWMA.
    pub(crate) fn observe(&self, service: Duration) {
        let obs = u64::try_from(service.as_nanos()).unwrap_or(u64::MAX).max(1) as f64;
        let alpha = self.policy.alpha.clamp(0.01, 1.0);
        let _ = self
            .drain_nanos
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |old| {
                let new = (old as f64) * (1.0 - alpha) + obs * alpha;
                Some(new.min(u64::MAX as f64).max(1.0) as u64)
            });
    }

    /// Current per-job drain estimate.
    #[cfg(test)]
    pub(crate) fn per_job_estimate(&self) -> Duration {
        Duration::from_nanos(self.drain_nanos.load(Ordering::Relaxed))
    }

    /// Estimated queue delay for a submission with `jobs_ahead` jobs
    /// draining before it.
    pub(crate) fn estimated_wait(&self, jobs_ahead: usize) -> Duration {
        let per = self.drain_nanos.load(Ordering::Relaxed);
        let workers = self.workers.load(Ordering::Relaxed).max(1) as u64;
        let ahead = u64::try_from(jobs_ahead).unwrap_or(u64::MAX);
        Duration::from_nanos(ahead.saturating_mul(per) / workers)
    }

    /// Honest retry-after hint for a rejected/shed submission, clamped
    /// to `[100 µs, 1 s]`.
    pub(crate) fn retry_hint(&self, jobs_ahead: usize) -> Duration {
        self.estimated_wait(jobs_ahead.max(1)).clamp(HINT_MIN, HINT_MAX)
    }

    /// `Some(retry_after)` when the submission should be shed because
    /// its estimated delay exceeds the policy target.
    pub(crate) fn shed_decision(&self, jobs_ahead: usize) -> Option<Duration> {
        (self.estimated_wait(jobs_ahead) > self.policy.target_delay)
            .then(|| self.retry_hint(jobs_ahead))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use plf_phylo::kernels::ScalarBackend;
    use plf_phylo::resilience::PlfOpKind;

    fn breaker(threshold: u32, cooldown: Duration) -> CircuitBreaker {
        CircuitBreaker::new(
            BreakerPolicy {
                failure_threshold: threshold,
                cooldown,
                probe_seed: 7,
            },
            ServiceCounters::new(),
        )
    }

    fn fault() -> PlfError {
        PlfError::Transfer {
            backend: "test".into(),
            channel: "dma",
            detail: "injected".into(),
        }
    }

    #[test]
    fn config_errors_are_not_backend_faults() {
        assert!(!is_backend_fault(&PlfError::Config("bad tree".into())));
        assert!(is_backend_fault(&fault()));
        assert!(is_backend_fault(&PlfError::InvalidOutput {
            backend: "b".into(),
            op: PlfOpKind::Down,
            detail: "nan".into(),
        }));
        assert!(is_backend_fault(&PlfError::Exhausted {
            attempts: 3,
            last: Box::new(fault()),
        }));
        assert!(!is_backend_fault(&PlfError::Exhausted {
            attempts: 1,
            last: Box::new(PlfError::Config("bad".into())),
        }));
    }

    #[test]
    fn breaker_opens_after_threshold_consecutive_faults() {
        let b = breaker(3, Duration::from_millis(10));
        let now = Instant::now();
        assert!(b.allows_dispatch());
        b.record_fault(now);
        b.record_fault(now);
        assert_eq!(b.state(), BreakerState::Closed);
        b.record_fault(now);
        assert_eq!(b.state(), BreakerState::Open);
        assert!(!b.allows_dispatch());
    }

    #[test]
    fn success_resets_the_fault_streak() {
        let b = breaker(2, Duration::from_millis(10));
        let now = Instant::now();
        b.record_fault(now);
        b.record_success();
        b.record_fault(now);
        assert_eq!(b.state(), BreakerState::Closed, "streak was broken");
    }

    #[test]
    fn probe_cycle_recloses_or_reopens() {
        let counters = ServiceCounters::new();
        let b = CircuitBreaker::new(
            BreakerPolicy {
                failure_threshold: 1,
                cooldown: Duration::from_millis(1),
                probe_seed: 7,
            },
            Arc::clone(&counters),
        );
        let t0 = Instant::now();
        b.record_fault(t0);
        assert_eq!(b.state(), BreakerState::Open);
        // Cooldown not yet elapsed: no probe.
        assert_eq!(b.probe_due(t0), None);
        let later = t0 + Duration::from_millis(2);
        let seed = b.probe_due(later).expect("probe due after cooldown");
        assert_eq!(seed, 7);
        assert_eq!(b.state(), BreakerState::HalfOpen);
        // Failed probe: back to Open, next probe gets a fresh seed.
        b.record_probe(false, later);
        assert_eq!(b.state(), BreakerState::Open);
        let seed2 = b
            .probe_due(later + Duration::from_millis(2))
            .expect("second probe");
        assert_eq!(seed2, 8);
        b.record_probe(true, later);
        assert_eq!(b.state(), BreakerState::Closed);
        assert!(b.allows_dispatch());
        let s = counters.snapshot();
        assert_eq!(s.breaker_opened, 2); // initial trip + failed probe
        assert_eq!(s.breaker_half_opened, 2);
        assert_eq!(s.breaker_closed, 1);
        assert_eq!(s.probes_ok, 1);
        assert_eq!(s.probes_failed, 1);
    }

    #[test]
    fn probe_succeeds_on_healthy_backend() {
        let mut backend = ScalarBackend;
        assert!(run_probe(&mut backend, 7));
        assert!(run_probe(&mut backend, 8));
    }

    #[test]
    fn controller_estimates_scale_with_backlog_and_workers() {
        let c = AdmissionController::new(Duration::from_millis(1), ShedPolicy::default());
        c.set_workers(2);
        assert_eq!(c.estimated_wait(0), Duration::ZERO);
        assert_eq!(c.estimated_wait(10), Duration::from_millis(5));
        c.set_workers(1);
        assert_eq!(c.estimated_wait(10), Duration::from_millis(10));
    }

    #[test]
    fn controller_ewma_tracks_observed_service_times() {
        let c = AdmissionController::new(
            Duration::from_millis(1),
            ShedPolicy {
                alpha: 1.0, // adopt each observation outright
                ..ShedPolicy::default()
            },
        );
        c.observe(Duration::from_millis(20));
        assert_eq!(c.per_job_estimate(), Duration::from_millis(20));
        assert_eq!(c.estimated_wait(5), Duration::from_millis(100));
    }

    #[test]
    fn shed_fires_only_past_the_target_delay() {
        let c = AdmissionController::new(
            Duration::from_millis(10),
            ShedPolicy {
                target_delay: Duration::from_millis(50),
                alpha: 0.2,
            },
        );
        assert!(c.shed_decision(5).is_none(), "50 ms estimate is at target");
        let hint = c.shed_decision(20).expect("200 ms estimate sheds");
        assert!(hint > Duration::ZERO && hint <= Duration::from_secs(1));
    }

    #[test]
    fn retry_hint_is_clamped() {
        let c = AdmissionController::new(Duration::from_nanos(1), ShedPolicy::default());
        assert_eq!(c.retry_hint(1), Duration::from_micros(100));
        let slow = AdmissionController::new(Duration::from_secs(10), ShedPolicy::default());
        assert_eq!(slow.retry_hint(100), Duration::from_secs(1));
    }
}

//! The dispatcher: shards fused batches across a pool of supervised
//! backend worker threads and reassembles per-job outcomes.
//!
//! Each worker slot owns one `PlfBackend` and receives shards over a
//! rendezvous channel — bounded at one in-flight shard per worker,
//! which is the pool's own backpressure toward the scheduler. Jobs are
//! registered in the slot's *ledger* before they are sent and removed
//! as each resolves, so at any instant the ledger is exactly the
//! worker's in-flight set.
//!
//! **Supervision.** A watchdog thread polls the slots: a worker that
//! died (injected kill, escaped panic) is respawned from its slot's
//! [`BackendFactory`] and its ledger is re-dispatched to the fresh
//! worker; the at-most-once guard on `Job` keeps a duplicate execution
//! from double-publishing — safe because every backend produces
//! bit-identical results. A worker whose heartbeat goes stale while
//! jobs are in flight is surfaced as a hang detection (threads cannot
//! be preempted, so hung workers are counted, not force-killed).
//!
//! **Degradation routing.** Every slot carries a circuit breaker fed
//! by the `PlfError` taxonomy. Dispatch routes shards only to workers
//! with closed breakers (falling back to any live worker when every
//! breaker is open, so the service never stalls outright); a job that
//! faults on a tripped backend is redirected once to a healthy worker
//! before it is allowed to fail.
//!
//! **Fused execution.** A shard's jobs share a
//! [`BatchKey`](crate::job::BatchKey), so the
//! worker evaluates them through [`evaluate_fused`]: every job's
//! current tree level becomes *one* backend invocation over the
//! concatenated pattern space instead of one invocation per job, and a
//! per-worker [`ClvCache`] reuses subtree CLVs across calls. Per-job
//! fault containment is preserved two ways: terminal pre-states
//! (cancelled, expired, blacked-out) are peeled off individually
//! before fusing, and any fused-level failure falls back to per-job
//! evaluation so a poisoned job resolves alone while its batchmates
//! complete.
//!
//! This file is in `plf-lint`'s L2 hot-path scope: no panicking calls.

use crate::health::{
    is_backend_fault, run_probe, AdmissionController, BackendFactory, BreakerPolicy,
    BreakerState, CircuitBreaker, WatchdogPolicy,
};
use crate::job::{Job, JobId, JobOutcome};
use crate::scheduler::Batch;
use plf_phylo::clv_cache::ClvCache;
use plf_phylo::fused::{evaluate_fused, FusedJob};
use plf_phylo::kernels::PlfBackend;
use plf_phylo::likelihood::TreeLikelihood;
use plf_phylo::metrics::ServiceCounters;
use plf_phylo::resilience::{panic_message, FaultInjector, FaultSite, PlfError};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, RecvTimeoutError, SyncSender};
use std::sync::{Arc, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// One worker's slice of a fused batch. Jobs are shared with the
/// slot's ledger so the watchdog can recover them if the worker dies.
struct Shard {
    jobs: Vec<Arc<Job>>,
}

/// How long an idle worker waits for a shard before checking whether
/// its breaker owes a half-open probe.
const PROBE_TICK: Duration = Duration::from_millis(20);

/// Consecutive jobs darkened by one rate-triggered blackout roll.
const BLACKOUT_BURST: u64 = 4;

/// Dispatch retry rounds before a shard is declared unplaceable.
const MAX_PLACEMENT_ROUNDS: usize = 200;

/// Highest rate count with a precomputed fused-unit size; larger rate
/// counts clamp to this row.
const MAX_UNIT_RATES: usize = 16;

/// Default per-worker CLV reuse cache capacity, in subtree entries.
pub(crate) const DEFAULT_CLV_CACHE_ENTRIES: usize = 256;

/// Non-channel pool knobs.
#[derive(Debug, Clone)]
pub(crate) struct PoolConfig {
    pub breaker: BreakerPolicy,
    pub watchdog: WatchdogPolicy,
    /// Service-level fault injector consulted at the `WorkerKill` and
    /// `BackendBlackout` sites (one roll per job per site).
    pub injector: Option<Arc<FaultInjector>>,
    /// Per-worker CLV reuse cache capacity (0 disables caching).
    pub clv_cache_entries: usize,
}

impl Default for PoolConfig {
    fn default() -> PoolConfig {
        PoolConfig {
            breaker: BreakerPolicy::default(),
            watchdog: WatchdogPolicy::default(),
            injector: None,
            clv_cache_entries: DEFAULT_CLV_CACHE_ENTRIES,
        }
    }
}

/// One supervised worker slot.
struct WorkerSlot {
    sender: Mutex<Option<SyncSender<Shard>>>,
    handle: Mutex<Option<JoinHandle<()>>>,
    /// Worker thread is running. Cleared by the worker's drop guard on
    /// any exit (clean, killed, or panicked).
    alive: AtomicBool,
    /// Worker exited cleanly at shutdown; the watchdog must not
    /// respawn it.
    retired: AtomicBool,
    /// Control-plane kill switch: the worker dies before its next job.
    kill_pending: AtomicBool,
    /// Jobs the backend will refuse before recovering (blackout).
    blackout_remaining: AtomicU64,
    /// Nanoseconds since the pool epoch at the last heartbeat.
    heartbeat: AtomicU64,
    /// In-flight jobs (registered before send, removed as resolved).
    ledger: Mutex<Vec<Arc<Job>>>,
    breaker: CircuitBreaker,
    factory: BackendFactory,
    /// The initial backend, consumed by the first spawn; respawns use
    /// the factory.
    initial: Mutex<Option<Box<dyn PlfBackend>>>,
}

impl std::fmt::Debug for WorkerSlot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerSlot")
            .field("alive", &self.alive.load(Ordering::Relaxed))
            .field("breaker", &self.breaker.state().label())
            .finish_non_exhaustive()
    }
}

impl WorkerSlot {
    fn lock_ledger(&self) -> MutexGuard<'_, Vec<Arc<Job>>> {
        self.ledger.lock().unwrap_or_else(|p| p.into_inner())
    }

    fn ledger_remove(&self, id: JobId) {
        let mut ledger = self.lock_ledger();
        if let Some(pos) = ledger.iter().position(|j| j.id == id) {
            ledger.swap_remove(pos);
        }
    }

    /// Consume one blackout charge; `true` means this job is darkened.
    fn consume_blackout(&self) -> bool {
        self.blackout_remaining
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| v.checked_sub(1))
            .is_ok()
    }
}

/// Pool state shared between the scheduler-owned [`WorkerPool`], the
/// worker threads, the watchdog, and the service facade.
#[derive(Debug)]
pub(crate) struct PoolShared {
    slots: Vec<WorkerSlot>,
    counters: Arc<ServiceCounters>,
    controller: Arc<AdmissionController>,
    injector: Option<Arc<FaultInjector>>,
    epoch: Instant,
    shutting_down: AtomicBool,
    next_worker: AtomicUsize,
    /// Fused work-unit size per rate count: `unit_patterns_by_rates[r-1]`
    /// is the narrowest backend's preferred chunk for `r` rates.
    unit_patterns_by_rates: Vec<usize>,
    /// Per-worker CLV reuse cache capacity (0 disables caching).
    clv_cache_entries: usize,
    /// Faulted jobs awaiting a one-time redirect to a healthy worker.
    retry_parked: Mutex<Vec<Arc<Job>>>,
}

impl PoolShared {
    /// Worker count.
    pub(crate) fn n_workers(&self) -> usize {
        self.slots.len()
    }

    /// Workers whose threads are currently running.
    pub(crate) fn alive_workers(&self) -> usize {
        self.slots
            .iter()
            .filter(|s| s.alive.load(Ordering::Acquire))
            .count()
    }

    /// Per-slot breaker states, in worker order.
    pub(crate) fn breaker_states(&self) -> Vec<BreakerState> {
        self.slots.iter().map(|s| s.breaker.state()).collect()
    }

    /// Arrange for worker `i` to die before its next job (exercises
    /// the watchdog respawn path). Out-of-range indices are ignored.
    pub(crate) fn kill_worker(&self, i: usize) {
        if let Some(slot) = self.slots.get(i) {
            slot.kill_pending.store(true, Ordering::Release);
        }
    }

    /// Make worker `i`'s backend refuse its next `n` jobs (exercises
    /// the circuit breaker). Out-of-range indices are ignored.
    pub(crate) fn blackout_worker(&self, i: usize, n: u64) {
        if let Some(slot) = self.slots.get(i) {
            slot.blackout_remaining.fetch_add(n, Ordering::Relaxed);
        }
    }

    fn now_nanos(&self) -> u64 {
        u64::try_from(self.epoch.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }

    fn beat(&self, i: usize) {
        if let Some(slot) = self.slots.get(i) {
            slot.heartbeat.store(self.now_nanos(), Ordering::Release);
        }
    }

    fn roll(&self, site: FaultSite) -> bool {
        self.injector.as_ref().is_some_and(|inj| inj.fire(site))
    }

    /// Pick a target slot: round-robin over live workers with closed
    /// breakers; if none, any live worker (an all-open pool degrades to
    /// best-effort rather than stalling); if none at all, the nominal
    /// round-robin slot (the send will fail and the caller retries).
    fn pick_worker(&self) -> usize {
        let n = self.slots.len().max(1);
        let start = self.next_worker.fetch_add(1, Ordering::Relaxed);
        for k in 0..n {
            let i = (start + k) % n;
            if let Some(s) = self.slots.get(i) {
                if s.alive.load(Ordering::Acquire) && s.breaker.allows_dispatch() {
                    return i;
                }
            }
        }
        for k in 0..n {
            let i = (start + k) % n;
            if let Some(s) = self.slots.get(i) {
                if s.alive.load(Ordering::Acquire) {
                    return i;
                }
            }
        }
        start % n
    }

    /// Register `jobs` in slot `w`'s ledger and send them as one
    /// shard. On send failure (worker died between pick and send) the
    /// ledger entries are rolled back and `false` is returned.
    fn try_send(&self, w: usize, jobs: &[Arc<Job>]) -> bool {
        let Some(slot) = self.slots.get(w) else {
            return false;
        };
        slot.lock_ledger().extend(jobs.iter().map(Arc::clone));
        let sender = slot
            .sender
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .clone();
        let sent = match sender {
            Some(tx) => tx
                .send(Shard {
                    jobs: jobs.to_vec(),
                })
                .is_ok(),
            None => false,
        };
        if !sent {
            let mut ledger = slot.lock_ledger();
            for job in jobs {
                if let Some(pos) = ledger.iter().position(|j| j.id == job.id) {
                    ledger.swap_remove(pos);
                }
            }
        }
        sent
    }

    /// Place one shard on some live worker, waiting out respawns if
    /// necessary. Jobs that cannot be placed at all resolve as failed.
    fn place_shard(&self, jobs: Vec<Arc<Job>>) {
        for round in 0..MAX_PLACEMENT_ROUNDS {
            let w = self.pick_worker();
            if self.try_send(w, &jobs) {
                return;
            }
            if self.shutting_down.load(Ordering::Acquire) {
                break;
            }
            // Give the watchdog a beat to respawn someone.
            if round >= self.slots.len() {
                std::thread::sleep(Duration::from_millis(1));
            }
        }
        for job in jobs {
            if job.try_claim() {
                self.counters.record_failed(&job.tenant);
                job.publish(JobOutcome::Failed {
                    error: format!("{}: no live worker available", job.id),
                });
            }
        }
    }

    /// Park a faulted job for a one-time redirect; the watchdog (or
    /// shutdown) flushes parked jobs to a healthy worker.
    fn park_for_redirect(&self, job: Arc<Job>) {
        self.retry_parked
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .push(job);
    }

    /// Re-dispatch every parked job.
    fn flush_parked(&self) {
        let parked: Vec<Arc<Job>> = std::mem::take(
            &mut *self.retry_parked.lock().unwrap_or_else(|p| p.into_inner()),
        );
        if !parked.is_empty() {
            self.place_shard(parked);
        }
    }

    /// The fused work-unit size (in patterns) for a job with `n_rates`
    /// rate categories: the narrowest backend's preferred chunk for
    /// that geometry. Rate counts past the precomputed table clamp to
    /// its widest row.
    pub(crate) fn unit_patterns_for(&self, n_rates: usize) -> usize {
        let i = n_rates.clamp(1, self.unit_patterns_by_rates.len().max(1)) - 1;
        self.unit_patterns_by_rates
            .get(i)
            .copied()
            .unwrap_or(plf_phylo::kernels::DEFAULT_BATCH_PATTERNS)
    }

    /// Is any *other* live worker's breaker closed (a redirect target)?
    fn redirect_target_exists(&self, not: usize) -> bool {
        self.slots.iter().enumerate().any(|(i, s)| {
            i != not && s.alive.load(Ordering::Acquire) && s.breaker.allows_dispatch()
        })
    }
}

/// A pool of supervised backend-owning worker threads.
#[derive(Debug)]
pub(crate) struct WorkerPool {
    shared: Arc<PoolShared>,
    watchdog: Option<JoinHandle<()>>,
}

impl WorkerPool {
    /// Spawn one worker per backend plus the watchdog. `factories[i]`
    /// rebuilds worker `i`'s backend after a death. The fused work
    /// units the scheduler sizes batches with are precomputed per rate
    /// count: for each geometry, the *narrowest* backend's preferred
    /// chunk, so every device in a heterogeneous pool can take any
    /// unit. (A single canonical Γ4 table row used to stand in for
    /// every rate count, which mis-sized batches for 1- or 8-rate
    /// models on memory-bound backends.)
    pub(crate) fn new(
        backends: Vec<Box<dyn PlfBackend>>,
        factories: Vec<BackendFactory>,
        counters: Arc<ServiceCounters>,
        controller: Arc<AdmissionController>,
        config: PoolConfig,
    ) -> WorkerPool {
        let unit_patterns_by_rates: Vec<usize> = (1..=MAX_UNIT_RATES)
            .map(|r| {
                backends
                    .iter()
                    .map(|b| b.preferred_batch_patterns(r).max(1))
                    .min()
                    .unwrap_or(plf_phylo::kernels::DEFAULT_BATCH_PATTERNS)
            })
            .collect();
        let scalar_factory: BackendFactory =
            Arc::new(|| Box::new(plf_phylo::kernels::ScalarBackend));
        let slots: Vec<WorkerSlot> = backends
            .into_iter()
            .enumerate()
            .map(|(i, backend)| WorkerSlot {
                sender: Mutex::new(None),
                handle: Mutex::new(None),
                alive: AtomicBool::new(false),
                retired: AtomicBool::new(false),
                kill_pending: AtomicBool::new(false),
                blackout_remaining: AtomicU64::new(0),
                heartbeat: AtomicU64::new(0),
                ledger: Mutex::new(Vec::new()),
                breaker: CircuitBreaker::new(config.breaker.clone(), Arc::clone(&counters)),
                factory: factories.get(i).cloned().unwrap_or_else(|| Arc::clone(&scalar_factory)),
                initial: Mutex::new(Some(backend)),
            })
            .collect();
        let shared = Arc::new(PoolShared {
            slots,
            counters,
            controller,
            injector: config.injector,
            epoch: Instant::now(),
            shutting_down: AtomicBool::new(false),
            next_worker: AtomicUsize::new(0),
            unit_patterns_by_rates,
            clv_cache_entries: config.clv_cache_entries,
            retry_parked: Mutex::new(Vec::new()),
        });
        for i in 0..shared.slots.len() {
            spawn_worker(&shared, i);
        }
        let watchdog = {
            let shared = Arc::clone(&shared);
            let policy = config.watchdog.clone();
            std::thread::spawn(move || watchdog_loop(&shared, &policy))
        };
        WorkerPool {
            shared,
            watchdog: Some(watchdog),
        }
    }

    /// The shared pool state (for the service facade's control and
    /// observability surface).
    pub(crate) fn shared(&self) -> Arc<PoolShared> {
        Arc::clone(&self.shared)
    }

    /// Worker count.
    pub(crate) fn n_workers(&self) -> usize {
        self.shared.n_workers()
    }

    /// The fused work-unit size at the canonical Γ4 rate count (the
    /// observability surface's single representative figure).
    pub(crate) fn unit_patterns(&self) -> usize {
        self.shared.unit_patterns_for(4)
    }

    /// The fused work-unit size for a job with `n_rates` categories.
    pub(crate) fn unit_patterns_for(&self, n_rates: usize) -> usize {
        self.shared.unit_patterns_for(n_rates)
    }

    /// Shard `batch` across the workers and hand each worker its
    /// slice. Blocks while every healthy worker already has a shard in
    /// flight — that rendezvous is the pool's backpressure.
    pub(crate) fn dispatch(&self, batch: Batch) {
        let n_workers = self.shared.slots.len().max(1);
        let n_shards = n_workers.min(batch.jobs.len()).max(1);
        let per_shard = batch.jobs.len().div_ceil(n_shards).max(1);
        let mut jobs: Vec<Arc<Job>> = batch.jobs.into_iter().map(Arc::new).collect();
        while !jobs.is_empty() {
            let rest = jobs.split_off(per_shard.min(jobs.len()));
            let shard = jobs;
            jobs = rest;
            self.shared.place_shard(shard);
        }
    }

    /// Stop the watchdog, close the shard channels, join every worker,
    /// and resolve anything left in the ledgers. In-flight shards
    /// finish first; every job they carry resolves.
    pub(crate) fn shutdown(mut self) {
        let shared = Arc::clone(&self.shared);
        shared.shutting_down.store(true, Ordering::Release);
        if let Some(h) = self.watchdog.take() {
            let _ = h.join();
        }
        // One last redirect flush while the workers still run.
        shared.flush_parked();
        for slot in &shared.slots {
            slot.sender.lock().unwrap_or_else(|p| p.into_inner()).take();
        }
        for slot in &shared.slots {
            let handle = slot.handle.lock().unwrap_or_else(|p| p.into_inner()).take();
            if let Some(h) = handle {
                let _ = h.join();
            }
        }
        // Anything still ledgered belonged to a dead worker that was
        // never respawned (or died after the watchdog stopped).
        let mut leftovers: Vec<Arc<Job>> = Vec::new();
        for slot in &shared.slots {
            leftovers.append(&mut slot.lock_ledger());
        }
        leftovers.append(
            &mut shared.retry_parked.lock().unwrap_or_else(|p| p.into_inner()),
        );
        for job in leftovers {
            if job.try_claim() {
                shared.counters.record_failed(&job.tenant);
                job.publish(JobOutcome::Failed {
                    error: format!("{}: worker unavailable during shutdown", job.id),
                });
            }
        }
    }
}

/// (Re)spawn the worker thread for slot `i`. The first spawn consumes
/// the slot's initial backend; respawns build one from the factory.
fn spawn_worker(shared: &Arc<PoolShared>, i: usize) {
    let Some(slot) = shared.slots.get(i) else {
        return;
    };
    let backend = slot
        .initial
        .lock()
        .unwrap_or_else(|p| p.into_inner())
        .take()
        .unwrap_or_else(|| (slot.factory)());
    let (tx, rx) = sync_channel::<Shard>(1);
    slot.alive.store(true, Ordering::Release);
    slot.retired.store(false, Ordering::Release);
    shared.beat(i);
    *slot.sender.lock().unwrap_or_else(|p| p.into_inner()) = Some(tx);
    let thread_shared = Arc::clone(shared);
    let handle = std::thread::spawn(move || worker_loop(&thread_shared, i, &rx, backend));
    *slot.handle.lock().unwrap_or_else(|p| p.into_inner()) = Some(handle);
}

/// Clears the slot's `alive` flag on any exit from the worker loop —
/// clean shutdown, injected kill, or an unexpected unwind.
struct AliveGuard<'a> {
    slot: &'a WorkerSlot,
}

impl Drop for AliveGuard<'_> {
    fn drop(&mut self) {
        self.slot.alive.store(false, Ordering::Release);
    }
}

fn worker_loop(
    shared: &Arc<PoolShared>,
    idx: usize,
    rx: &Receiver<Shard>,
    mut backend: Box<dyn PlfBackend>,
) {
    let Some(slot) = shared.slots.get(idx) else {
        return;
    };
    let _guard = AliveGuard { slot };
    // Per-worker CLV reuse cache, shared across every fused shard this
    // worker runs (hits materialize when later shards repeat subtrees).
    let mut cache =
        (shared.clv_cache_entries > 0).then(|| ClvCache::new(shared.clv_cache_entries));
    loop {
        match rx.recv_timeout(PROBE_TICK) {
            Ok(shard) => {
                // Pre-pass: peel off jobs that must not reach
                // evaluation — resolved elsewhere, cancelled, expired,
                // blacked out — each resolved individually, so one bad
                // job cannot take its batchmates down.
                let mut runnable: Vec<Arc<Job>> = Vec::with_capacity(shard.jobs.len());
                for job in shard.jobs {
                    shared.beat(idx);
                    if job.is_resolved() {
                        // Already resolved elsewhere (respawn race).
                        slot.ledger_remove(job.id);
                        continue;
                    }
                    if slot.kill_pending.swap(false, Ordering::AcqRel)
                        || shared.roll(FaultSite::WorkerKill)
                    {
                        // Die with the job (and the rest of the shard)
                        // still ledgered; the watchdog recovers them.
                        return;
                    }
                    if pre_resolve(shared, idx, slot, backend.as_mut(), &job) {
                        slot.ledger_remove(job.id);
                        continue;
                    }
                    runnable.push(job);
                }
                // Survivors run as one fused pass when there are at
                // least two; any fused-level failure falls back to the
                // per-job path for fault containment.
                let fused_done = runnable.len() >= 2
                    && run_shard_fused(shared, slot, backend.as_mut(), &runnable, &mut cache);
                if !fused_done {
                    for job in &runnable {
                        shared.beat(idx);
                        evaluate_one(shared, idx, slot, backend.as_mut(), job);
                    }
                }
                for job in &runnable {
                    slot.ledger_remove(job.id);
                }
            }
            Err(RecvTimeoutError::Timeout) => {}
            Err(RecvTimeoutError::Disconnected) => break,
        }
        shared.beat(idx);
        maybe_probe(shared, slot, backend.as_mut());
    }
    slot.retired.store(true, Ordering::Release);
}

/// Evaluate a shard's runnable jobs as one fused pass: each round,
/// every job's current tree-level operation joins a single backend
/// invocation over the concatenated pattern space, and subtree CLVs
/// are reused from the worker's cache. Per-job results are demuxed
/// into individual `Completed` outcomes. Returns `false` when the
/// fused pass could not complete (mixed batch keys, construction
/// failure, backend fault, panic) — the caller then falls back to
/// per-job evaluation, which re-establishes per-job containment and
/// feeds the breaker for the job that actually faults.
fn run_shard_fused(
    shared: &Arc<PoolShared>,
    slot: &WorkerSlot,
    backend: &mut dyn PlfBackend,
    jobs: &[Arc<Job>],
    cache: &mut Option<ClvCache>,
) -> bool {
    let Some(first) = jobs.first() else {
        return true;
    };
    let key = first.batch_key();
    if jobs.iter().any(|j| j.batch_key() != key) {
        // The scheduler only forms same-key batches; a mixed shard
        // (impossible today) would break the fused geometry, so take
        // the safe path.
        return false;
    }
    let started = Instant::now();
    let result = catch_unwind(AssertUnwindSafe(|| {
        let mut evals = Vec::with_capacity(jobs.len());
        for job in jobs.iter() {
            evals.push(TreeLikelihood::new(&job.tree, &job.data, job.model.clone())?);
        }
        let mut fused: Vec<FusedJob<'_>> = evals
            .iter_mut()
            .zip(jobs.iter())
            .map(|(eval, job)| FusedJob {
                eval,
                tree: &job.tree,
                dataset_token: job.dataset.0,
            })
            .collect();
        evaluate_fused(&mut fused, backend, cache.as_mut())
    }));
    if let Some(c) = cache.as_mut() {
        let stats = c.take_stats();
        shared
            .counters
            .record_clv_cache(stats.hits, stats.misses, stats.evictions);
    }
    let elapsed = started.elapsed();
    match result {
        Ok(Ok(lnls)) if lnls.len() == jobs.len() => {
            // The fused pass served every job; attribute the shared
            // evaluation time evenly across them.
            let service = elapsed
                .checked_div(u32::try_from(jobs.len()).unwrap_or(u32::MAX))
                .unwrap_or(elapsed);
            for (job, lnl) in jobs.iter().zip(lnls) {
                slot.breaker.record_success();
                if job.try_claim() {
                    let wait = started.saturating_duration_since(job.submitted_at);
                    shared.counters.record_completed(&job.tenant, wait, service);
                    shared.controller.observe(service);
                    job.publish(JobOutcome::Completed {
                        ln_likelihood: lnl,
                        wait,
                        service,
                        backend: backend.name(),
                    });
                }
            }
            true
        }
        _ => false,
    }
}

/// Run one half-open probe if the slot's breaker owes one. Blackout
/// charges darken probes too, so a breaker stays open until its
/// blackout actually lifts.
fn maybe_probe(shared: &Arc<PoolShared>, slot: &WorkerSlot, backend: &mut dyn PlfBackend) {
    if shared.shutting_down.load(Ordering::Acquire) {
        return;
    }
    if let Some(seed) = slot.breaker.probe_due(Instant::now()) {
        let ok = if slot.consume_blackout() {
            false
        } else {
            run_probe(backend, seed)
        };
        slot.breaker.record_probe(ok, Instant::now());
    }
}

/// Resolve a job's pre-evaluation terminal states — cancellation,
/// missed deadline, backend blackout. Returns `true` when the job was
/// resolved (or parked for redirect) here and must not be evaluated.
/// Runs per job *before* batchmates fuse, so these outcomes stay
/// individually attributed under fused execution.
fn pre_resolve(
    shared: &Arc<PoolShared>,
    idx: usize,
    slot: &WorkerSlot,
    backend: &mut dyn PlfBackend,
    job: &Arc<Job>,
) -> bool {
    let now = Instant::now();
    if job.is_cancelled() {
        if job.try_claim() {
            shared.counters.record_cancelled(&job.tenant);
            job.publish(JobOutcome::Cancelled);
        }
        return true;
    }
    if job.past_deadline(now) {
        if job.try_claim() {
            shared.counters.record_deadline_missed(&job.tenant);
            job.publish(JobOutcome::DeadlineMissed);
        }
        return true;
    }
    // Blackout: the backend refuses the job before evaluation. A rate
    // roll darkens a burst of consecutive jobs; control-plane blackouts
    // arrive pre-charged.
    if shared.roll(FaultSite::BackendBlackout) {
        slot.blackout_remaining
            .fetch_add(BLACKOUT_BURST, Ordering::Relaxed);
    }
    if slot.consume_blackout() {
        let err = PlfError::Transfer {
            backend: backend.name(),
            channel: "blackout",
            detail: format!("{}: backend blacked out", job.id),
        };
        fault_outcome(shared, idx, slot, job, &err);
        return true;
    }
    false
}

/// Evaluate one job on `backend`, publish its terminal outcome (or
/// park it for a one-time redirect), and feed the slot's breaker.
/// Pre-evaluation states are assumed already handled by
/// [`pre_resolve`].
fn evaluate_one(
    shared: &Arc<PoolShared>,
    idx: usize,
    slot: &WorkerSlot,
    backend: &mut dyn PlfBackend,
    job: &Arc<Job>,
) {
    let started = Instant::now();
    let wait = started.saturating_duration_since(job.submitted_at);
    let result = catch_unwind(AssertUnwindSafe(|| {
        let mut eval = TreeLikelihood::new(&job.tree, &job.data, job.model.clone())?;
        eval.log_likelihood(&job.tree, backend)
    }));
    let service = started.elapsed();
    match result {
        Ok(Ok(ln_likelihood)) => {
            slot.breaker.record_success();
            if job.try_claim() {
                shared.counters.record_completed(&job.tenant, wait, service);
                shared.controller.observe(service);
                job.publish(JobOutcome::Completed {
                    ln_likelihood,
                    wait,
                    service,
                    backend: backend.name(),
                });
            }
        }
        Ok(Err(err)) => {
            // Only backend faults feed the breaker; taxon/tree problems
            // (and Config errors) are caller mistakes that would fail
            // identically on any worker.
            match err {
                plf_phylo::likelihood::LikelihoodError::Backend(plf)
                    if is_backend_fault(&plf) =>
                {
                    fault_outcome(shared, idx, slot, job, &plf);
                }
                other => {
                    if job.try_claim() {
                        shared.counters.record_failed(&job.tenant);
                        job.publish(JobOutcome::Failed {
                            error: format!("{}: {other}", job.id),
                        });
                    }
                }
            }
        }
        Err(payload) => {
            let err = PlfError::WorkerPanic {
                backend: backend.name(),
                detail: panic_message(payload.as_ref()),
            };
            fault_outcome(shared, idx, slot, job, &err);
        }
    }
}

/// A job hit a backend fault on slot `idx`: feed the breaker, then
/// either redirect the job once to a healthy worker or fail it.
fn fault_outcome(
    shared: &Arc<PoolShared>,
    idx: usize,
    slot: &WorkerSlot,
    job: &Arc<Job>,
    err: &PlfError,
) {
    slot.breaker.record_fault(Instant::now());
    let first_redirect = job
        .redirected
        .compare_exchange(false, true, Ordering::AcqRel, Ordering::Acquire)
        .is_ok();
    if first_redirect
        && !shared.shutting_down.load(Ordering::Acquire)
        && shared.redirect_target_exists(idx)
    {
        shared.park_for_redirect(Arc::clone(job));
        return;
    }
    if job.try_claim() {
        shared.counters.record_failed(&job.tenant);
        job.publish(JobOutcome::Failed {
            error: format!("{}: {err}", job.id),
        });
    }
}

/// The watchdog: respawn dead workers (recovering their ledgers),
/// surface hung workers, and flush redirect-parked jobs.
fn watchdog_loop(shared: &Arc<PoolShared>, policy: &WatchdogPolicy) {
    let hang_nanos = u64::try_from(policy.hang_timeout.as_nanos()).unwrap_or(u64::MAX);
    let mut hang_reported: Vec<u64> = vec![u64::MAX; shared.slots.len()];
    while !shared.shutting_down.load(Ordering::Acquire) {
        std::thread::sleep(policy.interval);
        for i in 0..shared.slots.len() {
            if shared.shutting_down.load(Ordering::Acquire) {
                return;
            }
            let Some(slot) = shared.slots.get(i) else {
                continue;
            };
            if !slot.alive.load(Ordering::Acquire) {
                if !slot.retired.load(Ordering::Acquire) {
                    respawn(shared, i);
                }
                continue;
            }
            // Hang surfacing: a busy worker whose heartbeat went stale.
            let hb = slot.heartbeat.load(Ordering::Acquire);
            let busy = !slot.lock_ledger().is_empty();
            if busy
                && shared.now_nanos().saturating_sub(hb) > hang_nanos
                && hang_reported.get(i).copied() != Some(hb)
            {
                shared.counters.record_watchdog_hang();
                if let Some(r) = hang_reported.get_mut(i) {
                    *r = hb;
                }
            }
        }
        shared.flush_parked();
    }
}

/// Respawn dead slot `i` and re-dispatch its orphaned ledger to the
/// fresh worker.
fn respawn(shared: &Arc<PoolShared>, i: usize) {
    let Some(slot) = shared.slots.get(i) else {
        return;
    };
    let old = slot.handle.lock().unwrap_or_else(|p| p.into_inner()).take();
    if let Some(h) = old {
        let _ = h.join();
    }
    let orphans: Vec<Arc<Job>> = std::mem::take(&mut *slot.lock_ledger())
        .into_iter()
        .filter(|j| !j.is_resolved())
        .collect();
    shared.counters.record_watchdog_respawn();
    if !orphans.is_empty() {
        shared.counters.record_requeued(orphans.len() as u64);
    }
    spawn_worker(shared, i);
    if !orphans.is_empty() && !shared.try_send(i, &orphans) {
        // The fresh worker died before the hand-off; park the jobs
        // for the normal placement path instead of dropping them.
        for job in orphans {
            shared.park_for_redirect(job);
        }
    }
}

//! The dispatcher: shards fused batches across a pool of backend
//! worker threads and reassembles per-job outcomes.
//!
//! Each worker owns one `PlfBackend` (typically resilient-wrapped, so
//! retries and tier degradation happen inside the worker) and receives
//! shards over a rendezvous channel — bounded at one in-flight shard
//! per worker, which is the pool's own backpressure toward the
//! scheduler. Reassembly is per-job: every job carries its completion
//! cell, so results flow straight back to the submitting caller with
//! no collation step that a slow batchmate could stall.
//!
//! **Failure containment.** A job that fails evaluation (after the
//! resilience layer exhausted retries and fallbacks) resolves as
//! `Failed` without affecting its batchmates; even a panic escaping a
//! backend is caught per job and folded into a `Failed` outcome, so a
//! poisoned job can never sink the shard, the worker, or the service.
//!
//! This file is in `plf-lint`'s L2 hot-path scope: no panicking calls.

use crate::job::{Job, JobOutcome};
use crate::scheduler::Batch;
use plf_phylo::kernels::PlfBackend;
use plf_phylo::likelihood::TreeLikelihood;
use plf_phylo::metrics::ServiceCounters;
use plf_phylo::resilience::panic_message;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

/// One worker's slice of a fused batch.
struct Shard {
    jobs: Vec<Job>,
}

/// A pool of backend-owning worker threads.
#[derive(Debug)]
pub(crate) struct WorkerPool {
    senders: Vec<SyncSender<Shard>>,
    handles: Vec<JoinHandle<()>>,
    unit_patterns: usize,
    next_worker: AtomicUsize,
}

impl WorkerPool {
    /// Spawn one worker per backend. `unit_patterns` — the fused work
    /// unit the scheduler sizes batches with — is the *narrowest*
    /// backend's preferred chunk at the canonical Γ4 rate count, so
    /// every device in a heterogeneous pool can take any unit.
    pub(crate) fn new(
        backends: Vec<Box<dyn PlfBackend>>,
        counters: Arc<ServiceCounters>,
    ) -> WorkerPool {
        let unit_patterns = backends
            .iter()
            .map(|b| b.preferred_batch_patterns(4).max(1))
            .min()
            .unwrap_or(plf_phylo::kernels::DEFAULT_BATCH_PATTERNS);
        let mut senders = Vec::with_capacity(backends.len());
        let mut handles = Vec::with_capacity(backends.len());
        for backend in backends {
            let (tx, rx) = sync_channel::<Shard>(1);
            let worker_counters = Arc::clone(&counters);
            handles.push(std::thread::spawn(move || {
                worker_loop(rx, backend, worker_counters);
            }));
            senders.push(tx);
        }
        WorkerPool {
            senders,
            handles,
            unit_patterns,
            next_worker: AtomicUsize::new(0),
        }
    }

    /// Worker count.
    pub(crate) fn n_workers(&self) -> usize {
        self.senders.len()
    }

    /// The fused work-unit size the scheduler should batch with.
    pub(crate) fn unit_patterns(&self) -> usize {
        self.unit_patterns
    }

    /// Shard `batch` across the workers round-robin and hand each
    /// worker its slice. Blocks while every worker already has a shard
    /// in flight — that rendezvous is the pool's backpressure.
    pub(crate) fn dispatch(&self, batch: Batch) {
        let n_workers = self.senders.len().max(1);
        let n_shards = n_workers.min(batch.jobs.len()).max(1);
        let per_shard = batch.jobs.len().div_ceil(n_shards).max(1);
        let mut jobs = batch.jobs;
        while !jobs.is_empty() {
            let rest = jobs.split_off(per_shard.min(jobs.len()));
            let shard = Shard { jobs };
            jobs = rest;
            let w = self.next_worker.fetch_add(1, Ordering::Relaxed) % n_workers;
            if let Err(send_err) = self.senders[w].send(shard) {
                // Worker gone (only possible mid-shutdown): resolve the
                // shard's jobs as failed rather than dropping them.
                for job in send_err.0.jobs {
                    job.finish(JobOutcome::Failed {
                        error: "worker unavailable during shutdown".into(),
                    });
                }
            }
        }
    }

    /// Close the shard channels and join every worker. In-flight
    /// shards finish first; every job they carry resolves.
    pub(crate) fn shutdown(self) {
        drop(self.senders);
        for handle in self.handles {
            let _ = handle.join();
        }
    }
}

fn worker_loop(
    rx: Receiver<Shard>,
    mut backend: Box<dyn PlfBackend>,
    counters: Arc<ServiceCounters>,
) {
    while let Ok(shard) = rx.recv() {
        for job in shard.jobs {
            run_job(backend.as_mut(), job, &counters);
        }
    }
}

/// Evaluate one job on `backend` and publish its terminal outcome.
fn run_job(backend: &mut dyn PlfBackend, job: Job, counters: &ServiceCounters) {
    let started = Instant::now();
    if job.is_cancelled() {
        counters.record_cancelled(&job.tenant);
        job.finish(JobOutcome::Cancelled);
        return;
    }
    if job.past_deadline(started) {
        counters.record_deadline_missed(&job.tenant);
        job.finish(JobOutcome::DeadlineMissed);
        return;
    }
    let wait = started.saturating_duration_since(job.submitted_at);
    let result = catch_unwind(AssertUnwindSafe(|| {
        let mut eval = TreeLikelihood::new(&job.tree, &job.data, job.model.clone())?;
        eval.log_likelihood(&job.tree, backend)
    }));
    let service = started.elapsed();
    let outcome = match result {
        Ok(Ok(ln_likelihood)) => JobOutcome::Completed {
            ln_likelihood,
            wait,
            service,
            backend: backend.name(),
        },
        Ok(Err(err)) => JobOutcome::Failed {
            error: format!("{}: {err}", job.id),
        },
        Err(payload) => JobOutcome::Failed {
            error: format!(
                "{}: evaluation panicked: {}",
                job.id,
                panic_message(payload.as_ref())
            ),
        },
    };
    match &outcome {
        JobOutcome::Completed { .. } => counters.record_completed(&job.tenant, wait, service),
        _ => counters.record_failed(&job.tenant),
    }
    job.finish(outcome);
}

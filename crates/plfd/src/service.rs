//! The service facade: dataset registry, admission, and lifecycle.
//!
//! ```
//! use plfd::{JobSpec, PlfService, ServiceConfig};
//! use plf_phylo::kernels::{PlfBackend, ScalarBackend};
//!
//! let ds = plf_seqgen::generate(plf_seqgen::DatasetSpec::new(8, 64), 42);
//! let model = plf_seqgen::default_model();
//! let backends: Vec<Box<dyn PlfBackend>> = vec![Box::new(ScalarBackend)];
//! let service = PlfService::new(ServiceConfig::default(), backends);
//! let dataset = service.register_dataset(ds.data);
//! let ticket = service
//!     .submit(JobSpec::new("tenant-a", dataset, ds.tree, model))
//!     .expect("admitted");
//! let lnl = ticket.wait().ln_likelihood().expect("completed");
//! assert!(lnl < 0.0);
//! service.shutdown();
//! ```

use crate::dispatch::{PoolConfig, PoolShared, WorkerPool};
use crate::health::{
    AdmissionController, BackendFactory, BreakerPolicy, BreakerState, ShedPolicy, WatchdogPolicy,
};
use crate::job::{DatasetId, Job, JobCell, JobId, JobSpec, JobTicket};
use crate::queue::{BoundedQueue, SubmitError};
use crate::scheduler::{run_scheduler, BatchPolicy, Gate};
use plf_phylo::alignment::PatternAlignment;
use plf_phylo::kernels::{PlfBackend, ScalarBackend};
use plf_phylo::metrics::{ServiceCounters, ServiceSnapshot};
use plf_phylo::resilience::{FaultInjector, ResilientBackend};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, RwLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Service construction knobs.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Admission queue capacity (jobs); submissions past this are
    /// rejected with a retry-after hint.
    pub queue_capacity: usize,
    /// Batch formation policy.
    pub batch: BatchPolicy,
    /// Seed for the admission controller's per-job drain estimate;
    /// after the first completion the estimate tracks an EWMA of
    /// observed service times instead.
    pub drain_hint: Duration,
    /// Adaptive load-shedding policy (see [`ShedPolicy`]).
    pub shed: ShedPolicy,
    /// Per-worker circuit-breaker policy (see [`BreakerPolicy`]).
    pub breaker: BreakerPolicy,
    /// Watchdog supervision policy (see [`WatchdogPolicy`]).
    pub watchdog: WatchdogPolicy,
    /// Service-level fault injector consulted at the `WorkerKill` and
    /// `BackendBlackout` sites; `None` disables service-level chaos.
    pub fault_injector: Option<Arc<FaultInjector>>,
    /// Start with the scheduler gated shut: admitted jobs stay queued
    /// until [`PlfService::release`] — used by admission-control tests
    /// to observe a full queue deterministically.
    pub hold: bool,
}

impl Default for ServiceConfig {
    fn default() -> ServiceConfig {
        ServiceConfig {
            queue_capacity: 256,
            batch: BatchPolicy::default(),
            drain_hint: Duration::from_micros(500),
            shed: ShedPolicy::default(),
            breaker: BreakerPolicy::default(),
            watchdog: WatchdogPolicy::default(),
            fault_injector: None,
            hold: false,
        }
    }
}

/// A running PLF evaluation service; see the crate docs for the
/// queue → batcher → dispatcher pipeline it fronts.
#[derive(Debug)]
pub struct PlfService {
    queue: Arc<BoundedQueue>,
    counters: Arc<ServiceCounters>,
    registry: RwLock<HashMap<u64, Arc<PatternAlignment>>>,
    gate: Arc<Gate>,
    scheduler: Option<JoinHandle<()>>,
    pool_shared: Arc<PoolShared>,
    n_workers: usize,
    unit_patterns: usize,
    next_job: AtomicU64,
    next_dataset: AtomicU64,
}

impl PlfService {
    /// Start a service evaluating on `backends`, one worker thread per
    /// backend. `backends` must be non-empty.
    ///
    /// Backends are used as given — callers wanting retry/degrade
    /// semantics should pass resilient-wrapped backends or use
    /// [`PlfService::resilient`].
    ///
    /// # Panics
    /// Panics if `backends` is empty.
    pub fn new(config: ServiceConfig, backends: Vec<Box<dyn PlfBackend>>) -> PlfService {
        PlfService::new_with_factories(config, backends, Vec::new())
    }

    /// As [`PlfService::new`], but `factories[i]` rebuilds worker `i`'s
    /// backend when the watchdog respawns it after a death. Workers
    /// without a factory respawn on the scalar reference backend —
    /// correct for any worker because every backend produces
    /// bit-identical results.
    ///
    /// # Panics
    /// Panics if `backends` is empty.
    pub fn new_with_factories(
        config: ServiceConfig,
        backends: Vec<Box<dyn PlfBackend>>,
        factories: Vec<BackendFactory>,
    ) -> PlfService {
        assert!(
            !backends.is_empty(),
            "PlfService needs at least one backend"
        );
        let counters = ServiceCounters::new();
        let controller = AdmissionController::new(config.drain_hint, config.shed.clone());
        controller.set_workers(backends.len());
        let queue = Arc::new(BoundedQueue::new(
            config.queue_capacity,
            Arc::clone(&controller),
            Arc::clone(&counters),
        ));
        let pool = WorkerPool::new(
            backends,
            factories,
            Arc::clone(&counters),
            controller,
            PoolConfig {
                breaker: config.breaker.clone(),
                watchdog: config.watchdog.clone(),
                injector: config.fault_injector.clone(),
            },
        );
        let pool_shared = pool.shared();
        let n_workers = pool.n_workers();
        let unit_patterns = pool.unit_patterns();
        let gate = Gate::new(!config.hold);
        let scheduler = {
            let queue = Arc::clone(&queue);
            let gate = Arc::clone(&gate);
            let counters = Arc::clone(&counters);
            let policy = config.batch.clone();
            std::thread::spawn(move || run_scheduler(queue, pool, policy, gate, counters))
        };
        PlfService {
            queue,
            counters,
            registry: RwLock::new(HashMap::new()),
            gate,
            scheduler: Some(scheduler),
            pool_shared,
            n_workers,
            unit_patterns,
            next_job: AtomicU64::new(0),
            next_dataset: AtomicU64::new(0),
        }
    }

    /// As [`PlfService::new`], but every backend is wrapped in the
    /// retry/degrade [`ResilientBackend`] with a scalar-reference
    /// fallback tier, so a faulting device degrades instead of failing
    /// its jobs.
    pub fn resilient(config: ServiceConfig, backends: Vec<Box<dyn PlfBackend>>) -> PlfService {
        let wrapped = backends
            .into_iter()
            .map(|b| {
                Box::new(ResilientBackend::new(b).with_fallback(Box::new(ScalarBackend)))
                    as Box<dyn PlfBackend>
            })
            .collect();
        PlfService::new(config, wrapped)
    }

    /// Register an alignment and get the handle jobs reference it by.
    pub fn register_dataset(&self, data: PatternAlignment) -> DatasetId {
        self.register_dataset_arc(Arc::new(data))
    }

    /// Register an already-shared alignment.
    pub fn register_dataset_arc(&self, data: Arc<PatternAlignment>) -> DatasetId {
        let id = self.next_dataset.fetch_add(1, Ordering::Relaxed);
        self.registry
            .write()
            .unwrap_or_else(|p| p.into_inner())
            .insert(id, data);
        DatasetId(id)
    }

    /// The alignment behind a handle, if registered.
    pub fn dataset(&self, id: DatasetId) -> Option<Arc<PatternAlignment>> {
        self.registry
            .read()
            .unwrap_or_else(|p| p.into_inner())
            .get(&id.0)
            .cloned()
    }

    /// Submit one job. Returns a ticket immediately on admission, or a
    /// [`SubmitError`] — `QueueFull` carries the retry-after hint of
    /// the backpressure contract. Every submission attempt (either
    /// way) is counted in the service metrics under the spec's tenant.
    pub fn submit(&self, spec: JobSpec) -> Result<JobTicket, SubmitError> {
        let Some(data) = self.dataset(spec.dataset) else {
            return Err(SubmitError::UnknownDataset(spec.dataset));
        };
        self.counters.record_submitted(&spec.tenant);
        let id = JobId(self.next_job.fetch_add(1, Ordering::Relaxed));
        let cancelled = Arc::new(AtomicBool::new(false));
        let cell = JobCell::new();
        let submitted_at = Instant::now();
        let ticket = JobTicket::new(
            id,
            spec.tenant.clone(),
            Arc::clone(&cancelled),
            Arc::clone(&cell),
        );
        let job = Box::new(Job {
            id,
            tenant: spec.tenant,
            priority: spec.priority,
            dataset: spec.dataset,
            data,
            tree: spec.tree,
            model: spec.model,
            submitted_at,
            deadline: spec.deadline.map(|d| submitted_at + d),
            cancelled,
            cell,
            resolved: AtomicBool::new(false),
            redirected: AtomicBool::new(false),
        });
        match self.queue.push(job) {
            Ok(()) => Ok(ticket),
            Err((job, err)) => {
                // Sheds and hard rejections are distinct overload
                // signals; keep their tenant accounting separate.
                if matches!(err, SubmitError::Overloaded { .. }) {
                    self.counters.record_shed(&job.tenant);
                } else {
                    self.counters.record_rejected(&job.tenant);
                }
                Err(err)
            }
        }
    }

    /// Open the scheduler gate (no-op unless constructed with
    /// `hold: true`).
    pub fn release(&self) {
        self.gate.open();
    }

    /// The shared service counter block.
    pub fn counters(&self) -> Arc<ServiceCounters> {
        Arc::clone(&self.counters)
    }

    /// Snapshot of the service metrics.
    pub fn snapshot(&self) -> ServiceSnapshot {
        self.counters.snapshot()
    }

    /// Live queue backlog.
    pub fn queue_depth(&self) -> usize {
        self.queue.depth()
    }

    /// Admission queue capacity.
    pub fn queue_capacity(&self) -> usize {
        self.queue.capacity()
    }

    /// Backend worker threads.
    pub fn n_workers(&self) -> usize {
        self.n_workers
    }

    /// The fused work-unit size (patterns) batches are measured in.
    pub fn unit_patterns(&self) -> usize {
        self.unit_patterns
    }

    /// Worker threads currently running (the watchdog restores this to
    /// [`PlfService::n_workers`] after a death).
    pub fn alive_workers(&self) -> usize {
        self.pool_shared.alive_workers()
    }

    /// Per-worker circuit-breaker states, in worker order.
    pub fn breaker_states(&self) -> Vec<BreakerState> {
        self.pool_shared.breaker_states()
    }

    /// Chaos/test control: arrange for worker `i` to die before its
    /// next job, exercising the watchdog respawn path. Out-of-range
    /// indices are ignored.
    pub fn kill_worker(&self, i: usize) {
        self.pool_shared.kill_worker(i);
    }

    /// Chaos/test control: make worker `i`'s backend refuse its next
    /// `n` jobs (and half-open probes), exercising the circuit breaker.
    /// Out-of-range indices are ignored.
    pub fn blackout_worker(&self, i: usize, n: u64) {
        self.pool_shared.blackout_worker(i, n);
    }

    /// Stop admitting, flush the backlog through the workers, and join
    /// every thread. Every admitted job resolves before this returns.
    pub fn shutdown(mut self) {
        self.shutdown_in_place();
    }

    fn shutdown_in_place(&mut self) {
        self.queue.close();
        self.gate.open();
        if let Some(handle) = self.scheduler.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for PlfService {
    fn drop(&mut self) {
        self.shutdown_in_place();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::{JobOutcome, Priority};
    use plf_phylo::likelihood::TreeLikelihood;

    fn scalar_backends(n: usize) -> Vec<Box<dyn PlfBackend>> {
        (0..n)
            .map(|_| Box::new(ScalarBackend) as Box<dyn PlfBackend>)
            .collect()
    }

    #[test]
    fn completed_jobs_match_serial_scalar_evaluation() {
        let ds = plf_seqgen::generate(plf_seqgen::DatasetSpec::new(8, 96), 5);
        let model = plf_seqgen::default_model();
        let service = PlfService::new(ServiceConfig::default(), scalar_backends(2));
        let dataset = service.register_dataset(ds.data.clone());
        let tickets: Vec<JobTicket> = (0..8)
            .map(|i| {
                service
                    .submit(
                        JobSpec::new(format!("tenant-{}", i % 2), dataset, ds.tree.clone(), model.clone()),
                    )
                    .expect("admitted")
            })
            .collect();
        let mut serial = TreeLikelihood::new(&ds.tree, &ds.data, model).expect("workspace");
        let mut reference = ScalarBackend;
        let expected = serial
            .log_likelihood(&ds.tree, &mut reference)
            .expect("serial eval");
        for t in tickets {
            let outcome = t.wait();
            let lnl = outcome.ln_likelihood().expect("completed");
            assert_eq!(lnl.to_bits(), expected.to_bits(), "bit-identical to serial");
        }
        let snap = service.snapshot();
        assert_eq!(snap.completed, 8);
        assert_eq!(snap.resolved(), 8);
        assert!(snap.batches >= 1);
        service.shutdown();
    }

    #[test]
    fn held_service_keeps_jobs_queued_until_release() {
        let ds = plf_seqgen::generate(plf_seqgen::DatasetSpec::new(4, 16), 9);
        let model = plf_seqgen::default_model();
        let config = ServiceConfig {
            queue_capacity: 4,
            hold: true,
            ..ServiceConfig::default()
        };
        let service = PlfService::new(config, scalar_backends(1));
        let dataset = service.register_dataset(ds.data.clone());
        let tickets: Vec<JobTicket> = (0..4)
            .map(|_| {
                service
                    .submit(JobSpec::new("t", dataset, ds.tree.clone(), model.clone()))
                    .expect("admitted")
            })
            .collect();
        assert_eq!(service.queue_depth(), 4);
        // Job K+1 rejected with a retry-after while held at capacity.
        let err = service
            .submit(JobSpec::new("t", dataset, ds.tree.clone(), model.clone()))
            .expect_err("over capacity");
        assert!(matches!(err, SubmitError::QueueFull { retry_after } if retry_after > Duration::ZERO));
        service.release();
        for t in tickets {
            assert!(t.wait().is_completed());
        }
        let snap = service.snapshot();
        assert_eq!(snap.rejected, 1);
        assert_eq!(snap.queue_depth_peak, 4);
        service.shutdown();
    }

    #[test]
    fn cancellation_before_release_resolves_cancelled() {
        let ds = plf_seqgen::generate(plf_seqgen::DatasetSpec::new(4, 16), 9);
        let model = plf_seqgen::default_model();
        let config = ServiceConfig {
            hold: true,
            ..ServiceConfig::default()
        };
        let service = PlfService::new(config, scalar_backends(1));
        let dataset = service.register_dataset(ds.data.clone());
        let ticket = service
            .submit(JobSpec::new("t", dataset, ds.tree.clone(), model))
            .expect("admitted");
        ticket.cancel();
        service.release();
        assert_eq!(ticket.wait(), JobOutcome::Cancelled);
        assert_eq!(service.snapshot().cancelled, 1);
        service.shutdown();
    }

    #[test]
    fn expired_deadline_resolves_deadline_missed() {
        let ds = plf_seqgen::generate(plf_seqgen::DatasetSpec::new(4, 16), 9);
        let model = plf_seqgen::default_model();
        let config = ServiceConfig {
            hold: true,
            ..ServiceConfig::default()
        };
        let service = PlfService::new(config, scalar_backends(1));
        let dataset = service.register_dataset(ds.data.clone());
        let ticket = service
            .submit(
                JobSpec::new("t", dataset, ds.tree.clone(), model)
                    .with_deadline(Duration::from_millis(1)),
            )
            .expect("admitted");
        std::thread::sleep(Duration::from_millis(10));
        service.release();
        assert_eq!(ticket.wait(), JobOutcome::DeadlineMissed);
        assert_eq!(service.snapshot().deadline_missed, 1);
        service.shutdown();
    }

    #[test]
    fn high_priority_starts_before_normal_backlog() {
        let ds = plf_seqgen::generate(plf_seqgen::DatasetSpec::new(4, 16), 9);
        let model = plf_seqgen::default_model();
        let config = ServiceConfig {
            hold: true,
            batch: BatchPolicy {
                max_jobs: 1, // one job per batch => strict drain order
                ..BatchPolicy::default()
            },
            ..ServiceConfig::default()
        };
        let service = PlfService::new(config, scalar_backends(1));
        let dataset = service.register_dataset(ds.data.clone());
        let normal = service
            .submit(JobSpec::new("n", dataset, ds.tree.clone(), model.clone()))
            .expect("admitted");
        let high = service
            .submit(
                JobSpec::new("h", dataset, ds.tree.clone(), model.clone())
                    .with_priority(Priority::High),
            )
            .expect("admitted");
        service.release();
        let (h, n) = (high.wait(), normal.wait());
        let wait_of = |o: &JobOutcome| match o {
            JobOutcome::Completed { wait, .. } => *wait,
            other => panic!("expected completion, got {other:?}"),
        };
        // The high job entered the queue second but started first.
        assert!(wait_of(&h) <= wait_of(&n));
        service.shutdown();
    }

    #[test]
    fn unknown_dataset_is_rejected() {
        let ds = plf_seqgen::generate(plf_seqgen::DatasetSpec::new(4, 16), 9);
        let model = plf_seqgen::default_model();
        let service = PlfService::new(ServiceConfig::default(), scalar_backends(1));
        let err = service
            .submit(JobSpec::new("t", DatasetId(99), ds.tree.clone(), model))
            .expect_err("unregistered");
        assert_eq!(err, SubmitError::UnknownDataset(DatasetId(99)));
        service.shutdown();
    }

    #[test]
    fn shutdown_resolves_queued_backlog() {
        let ds = plf_seqgen::generate(plf_seqgen::DatasetSpec::new(4, 16), 9);
        let model = plf_seqgen::default_model();
        let config = ServiceConfig {
            hold: true,
            ..ServiceConfig::default()
        };
        let service = PlfService::new(config, scalar_backends(1));
        let dataset = service.register_dataset(ds.data.clone());
        let tickets: Vec<JobTicket> = (0..6)
            .map(|_| {
                service
                    .submit(JobSpec::new("t", dataset, ds.tree.clone(), model.clone()))
                    .expect("admitted")
            })
            .collect();
        // Shutdown with the gate still held: the flush path must still
        // resolve every admitted job.
        service.shutdown();
        for t in tickets {
            assert!(t.try_wait().is_some(), "job left unresolved by shutdown");
        }
    }
}

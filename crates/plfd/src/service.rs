//! The service facade: dataset registry, admission, and lifecycle.
//!
//! ```
//! use plfd::{JobSpec, PlfService, ServiceConfig};
//! use plf_phylo::kernels::{PlfBackend, ScalarBackend};
//!
//! let ds = plf_seqgen::generate(plf_seqgen::DatasetSpec::new(8, 64), 42);
//! let model = plf_seqgen::default_model();
//! let backends: Vec<Box<dyn PlfBackend>> = vec![Box::new(ScalarBackend)];
//! let service = PlfService::new(ServiceConfig::default(), backends);
//! let dataset = service.register_dataset(ds.data);
//! let ticket = service
//!     .submit(JobSpec::new("tenant-a", dataset, ds.tree, model))
//!     .expect("admitted");
//! let lnl = ticket.wait().ln_likelihood().expect("completed");
//! assert!(lnl < 0.0);
//! service.shutdown();
//! ```

use crate::dispatch::{PoolConfig, PoolShared, WorkerPool};
use crate::health::{
    AdmissionController, BackendFactory, BreakerPolicy, BreakerState, ShedPolicy, WatchdogPolicy,
};
use crate::job::{DatasetId, Job, JobCell, JobId, JobOutcome, JobSpec, JobTicket};
use crate::journal::{AdmittedRecord, Journal, JournalConfig, JournalError};
use crate::queue::{BoundedQueue, SubmitError};
use crate::recovery::{remaining_deadline, scan, unix_nanos_now, RecoveryReport};
use crate::scheduler::{run_scheduler, BatchPolicy, Gate};
use plf_phylo::alignment::PatternAlignment;
use plf_phylo::kernels::{PlfBackend, ScalarBackend};
use plf_phylo::metrics::{ServiceCounters, ServiceSnapshot};
use plf_phylo::resilience::{FaultInjector, ResilientBackend};
use plf_phylo::tree::Tree;
use std::collections::HashMap;
use std::mem;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

/// Reserved prefix for auto-generated journal keys of jobs submitted
/// without an idempotency key; caller keys must not start with it.
const AUTO_KEY_PREFIX: &str = "~job-";

/// Poll cadence while [`PlfService::drain`] waits for in-flight work.
const DRAIN_POLL: Duration = Duration::from_millis(2);

/// Wall-clock budget for re-admitting one replayed job through the
/// bounded queue before recovery resolves it `Failed` instead.
const REPLAY_ADMIT_WALL: Duration = Duration::from_secs(10);

/// Backoff between replay re-admission attempts when the queue pushes
/// back during recovery.
const REPLAY_RETRY_NAP: Duration = Duration::from_millis(2);

/// Service construction knobs.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Admission queue capacity (jobs); submissions past this are
    /// rejected with a retry-after hint.
    pub queue_capacity: usize,
    /// Batch formation policy.
    pub batch: BatchPolicy,
    /// Seed for the admission controller's per-job drain estimate;
    /// after the first completion the estimate tracks an EWMA of
    /// observed service times instead.
    pub drain_hint: Duration,
    /// Adaptive load-shedding policy (see [`ShedPolicy`]).
    pub shed: ShedPolicy,
    /// Per-worker circuit-breaker policy (see [`BreakerPolicy`]).
    pub breaker: BreakerPolicy,
    /// Watchdog supervision policy (see [`WatchdogPolicy`]).
    pub watchdog: WatchdogPolicy,
    /// Service-level fault injector consulted at the `WorkerKill` and
    /// `BackendBlackout` sites; `None` disables service-level chaos.
    pub fault_injector: Option<Arc<FaultInjector>>,
    /// Start with the scheduler gated shut: admitted jobs stay queued
    /// until [`PlfService::release`] — used by admission-control tests
    /// to observe a full queue deterministically.
    pub hold: bool,
    /// Write-ahead journal configuration. `Some` makes every
    /// acknowledged admission durable: a process crash replays
    /// admitted-but-unresolved jobs on the next start (after
    /// [`PlfService::recover`]) and dedups re-submissions by
    /// idempotency key. `None` (the default) keeps the service purely
    /// in-memory.
    pub journal: Option<JournalConfig>,
    /// Per-worker CLV reuse cache capacity, in cached subtree entries.
    /// Fused batches consult the cache before recomputing an internal
    /// node's conditional likelihoods; `0` disables caching. Hits,
    /// misses, and evictions surface as the `clv_cache_*` service
    /// counters.
    pub clv_cache_entries: usize,
}

impl Default for ServiceConfig {
    fn default() -> ServiceConfig {
        ServiceConfig {
            queue_capacity: 256,
            batch: BatchPolicy::default(),
            drain_hint: Duration::from_micros(500),
            shed: ShedPolicy::default(),
            breaker: BreakerPolicy::default(),
            watchdog: WatchdogPolicy::default(),
            fault_injector: None,
            hold: false,
            journal: None,
            clv_cache_entries: crate::dispatch::DEFAULT_CLV_CACHE_ENTRIES,
        }
    }
}

/// What a graceful [`PlfService::drain`] accomplished before the
/// journal was flushed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DrainReport {
    /// Jobs that reached a terminal state by the end of the drain.
    pub resolved: u64,
    /// Jobs still unresolved when the drain deadline hit (they stay
    /// journaled as admitted; a restart replays them).
    pub pending_at_deadline: u64,
    /// Whether every admitted job resolved within the deadline.
    pub within_deadline: bool,
    /// Whether the journal's final fsync succeeded (vacuously true
    /// without a journal).
    pub journal_flushed: bool,
    /// Wall time the drain took.
    pub elapsed: Duration,
}

/// A running PLF evaluation service; see the crate docs for the
/// queue → batcher → dispatcher pipeline it fronts.
#[derive(Debug)]
pub struct PlfService {
    queue: Arc<BoundedQueue>,
    counters: Arc<ServiceCounters>,
    registry: RwLock<HashMap<u64, Arc<PatternAlignment>>>,
    gate: Arc<Gate>,
    scheduler: Option<JoinHandle<()>>,
    pool_shared: Arc<PoolShared>,
    n_workers: usize,
    unit_patterns: usize,
    next_job: AtomicU64,
    next_dataset: AtomicU64,
    journal: Option<Arc<Journal>>,
    /// Idempotency index: key → the live (or pre-resolved) ticket a
    /// duplicate submission receives instead of a second execution.
    dedup: Mutex<HashMap<String, JobTicket>>,
    /// Admitted-but-unresolved records from the startup scan, waiting
    /// for [`PlfService::recover`] (datasets must be registered first).
    pending_replay: Mutex<Vec<AdmittedRecord>>,
    /// The startup scan's partial report, completed by `recover`.
    recovery: Mutex<Option<RecoveryReport>>,
}

impl PlfService {
    /// Start a service evaluating on `backends`, one worker thread per
    /// backend. `backends` must be non-empty.
    ///
    /// Backends are used as given — callers wanting retry/degrade
    /// semantics should pass resilient-wrapped backends or use
    /// [`PlfService::resilient`].
    ///
    /// # Panics
    /// Panics if `backends` is empty, or if a configured journal
    /// cannot be opened (use [`PlfService::try_new_with_factories`]
    /// to handle journal errors as values).
    pub fn new(config: ServiceConfig, backends: Vec<Box<dyn PlfBackend>>) -> PlfService {
        PlfService::new_with_factories(config, backends, Vec::new())
    }

    /// As [`PlfService::new`], but `factories[i]` rebuilds worker `i`'s
    /// backend when the watchdog respawns it after a death. Workers
    /// without a factory respawn on the scalar reference backend —
    /// correct for any worker because every backend produces
    /// bit-identical results.
    ///
    /// # Panics
    /// Panics if `backends` is empty, or if a configured journal
    /// cannot be opened.
    pub fn new_with_factories(
        config: ServiceConfig,
        backends: Vec<Box<dyn PlfBackend>>,
        factories: Vec<BackendFactory>,
    ) -> PlfService {
        match PlfService::try_new_with_factories(config, backends, factories) {
            Ok(service) => service,
            Err(err) => panic!("plfd journal could not be opened: {err}"),
        }
    }

    /// As [`PlfService::new_with_factories`], but journal scan/open
    /// failures are returned instead of panicking — the constructor
    /// embedders (and `plfr serve`) should use when a journal is
    /// configured.
    ///
    /// # Panics
    /// Panics if `backends` is empty.
    pub fn try_new_with_factories(
        config: ServiceConfig,
        backends: Vec<Box<dyn PlfBackend>>,
        factories: Vec<BackendFactory>,
    ) -> Result<PlfService, JournalError> {
        assert!(
            !backends.is_empty(),
            "PlfService needs at least one backend"
        );
        let counters = ServiceCounters::new();
        // Journal recovery scan happens before the pipeline spins up,
        // so replayed state is in place by the time workers could race
        // it.
        let mut journal = None;
        let mut dedup_map: HashMap<String, JobTicket> = HashMap::new();
        let mut pending_replay = Vec::new();
        let mut initial_report = None;
        let mut next_job_start = 0u64;
        if let Some(journal_cfg) = &config.journal {
            let scanned = scan(&journal_cfg.dir)?;
            counters.record_truncated(scanned.truncated);
            let handle = Arc::new(Journal::open(
                journal_cfg.clone(),
                Arc::clone(&counters),
                scanned.next_segment,
                scanned.seg_unresolved,
                scanned.key_seg,
            )?);
            let mut deduped_outcomes = 0u64;
            for (key, record) in &scanned.resolved {
                if key.starts_with(AUTO_KEY_PREFIX) {
                    // Unkeyed jobs cannot be resubmitted; no dedup row.
                    continue;
                }
                let cell = JobCell::new();
                cell.set(record.outcome.clone());
                dedup_map.insert(
                    key.clone(),
                    JobTicket::new(
                        JobId(record.id),
                        String::new(),
                        Arc::new(AtomicBool::new(false)),
                        cell,
                    ),
                );
                deduped_outcomes += 1;
            }
            next_job_start = scanned.max_job_id.map_or(0, |m| m + 1);
            pending_replay = scanned.pending;
            initial_report = Some(RecoveryReport {
                deduped_outcomes,
                truncated_records: scanned.truncated,
                segments_scanned: scanned.segments_scanned,
                ..RecoveryReport::default()
            });
            journal = Some(handle);
        }
        let controller = AdmissionController::new(config.drain_hint, config.shed.clone());
        controller.set_workers(backends.len());
        let queue = Arc::new(BoundedQueue::new(
            config.queue_capacity,
            Arc::clone(&controller),
            Arc::clone(&counters),
        ));
        let pool = WorkerPool::new(
            backends,
            factories,
            Arc::clone(&counters),
            controller,
            PoolConfig {
                breaker: config.breaker.clone(),
                watchdog: config.watchdog.clone(),
                injector: config.fault_injector.clone(),
                clv_cache_entries: config.clv_cache_entries,
            },
        );
        let pool_shared = pool.shared();
        let n_workers = pool.n_workers();
        let unit_patterns = pool.unit_patterns();
        let gate = Gate::new(!config.hold);
        let scheduler = {
            let queue = Arc::clone(&queue);
            let gate = Arc::clone(&gate);
            let counters = Arc::clone(&counters);
            let policy = config.batch.clone();
            std::thread::spawn(move || run_scheduler(queue, pool, policy, gate, counters))
        };
        Ok(PlfService {
            queue,
            counters,
            registry: RwLock::new(HashMap::new()),
            gate,
            scheduler: Some(scheduler),
            pool_shared,
            n_workers,
            unit_patterns,
            next_job: AtomicU64::new(next_job_start),
            next_dataset: AtomicU64::new(0),
            journal,
            dedup: Mutex::new(dedup_map),
            pending_replay: Mutex::new(pending_replay),
            recovery: Mutex::new(initial_report),
        })
    }

    /// As [`PlfService::new`], but every backend is wrapped in the
    /// retry/degrade [`ResilientBackend`] with a scalar-reference
    /// fallback tier, so a faulting device degrades instead of failing
    /// its jobs.
    pub fn resilient(config: ServiceConfig, backends: Vec<Box<dyn PlfBackend>>) -> PlfService {
        let wrapped = backends
            .into_iter()
            .map(|b| {
                Box::new(ResilientBackend::new(b).with_fallback(Box::new(ScalarBackend)))
                    as Box<dyn PlfBackend>
            })
            .collect();
        PlfService::new(config, wrapped)
    }

    /// Register an alignment and get the handle jobs reference it by.
    pub fn register_dataset(&self, data: PatternAlignment) -> DatasetId {
        self.register_dataset_arc(Arc::new(data))
    }

    /// Register an already-shared alignment.
    pub fn register_dataset_arc(&self, data: Arc<PatternAlignment>) -> DatasetId {
        let id = self.next_dataset.fetch_add(1, Ordering::Relaxed);
        self.registry
            .write()
            .unwrap_or_else(|p| p.into_inner())
            .insert(id, data);
        DatasetId(id)
    }

    /// The alignment behind a handle, if registered.
    pub fn dataset(&self, id: DatasetId) -> Option<Arc<PatternAlignment>> {
        self.registry
            .read()
            .unwrap_or_else(|p| p.into_inner())
            .get(&id.0)
            .cloned()
    }

    /// Submit one job. Returns a ticket immediately on admission, or a
    /// [`SubmitError`] — `QueueFull` carries the retry-after hint of
    /// the backpressure contract. Every submission attempt (either
    /// way) is counted in the service metrics under the spec's tenant.
    ///
    /// With an idempotency key, a duplicate submission (racing or
    /// later, including after a crash-restart on a journaled service)
    /// returns the first admission's ticket — or its journaled outcome
    /// — instead of executing again; such dedup hits are counted but
    /// not re-admitted. On a journaled service the `Admitted` record is
    /// written before the ticket is returned, so an acknowledged job
    /// survives `kill -9`.
    pub fn submit(&self, spec: JobSpec) -> Result<JobTicket, SubmitError> {
        // Hold the dedup index lock across admission when keyed, so a
        // racing duplicate waits and then finds this ticket instead of
        // admitting a second execution. The lock is ordered strictly
        // before the queue lock and is never taken by workers.
        let mut dedup_guard = match &spec.idempotency_key {
            Some(key) => {
                let guard = self.dedup.lock().unwrap_or_else(|p| p.into_inner());
                if let Some(ticket) = guard.get(key) {
                    self.counters.record_deduped();
                    return Ok(ticket.clone());
                }
                Some(guard)
            }
            None => None,
        };
        let Some(data) = self.dataset(spec.dataset) else {
            return Err(SubmitError::UnknownDataset(spec.dataset));
        };
        self.counters.record_submitted(&spec.tenant);
        let id = JobId(self.next_job.fetch_add(1, Ordering::Relaxed));
        let cancelled = Arc::new(AtomicBool::new(false));
        let cell = JobCell::new();
        let submitted_at = Instant::now();
        let ticket = JobTicket::new(
            id,
            spec.tenant.clone(),
            Arc::clone(&cancelled),
            Arc::clone(&cell),
        );
        let journal_key = spec
            .idempotency_key
            .clone()
            .unwrap_or_else(|| format!("{AUTO_KEY_PREFIX}{}", id.0));
        // The admitted record is assembled before the tree moves into
        // the job; Newick text round-trips branch lengths bit-exactly.
        let admitted = self.journal.as_ref().map(|_| AdmittedRecord {
            key: journal_key.clone(),
            id: id.0,
            tenant: spec.tenant.clone(),
            priority: spec.priority,
            dataset: spec.dataset.0,
            n_taxa: data.n_taxa() as u64,
            n_patterns: data.n_patterns() as u64,
            newick: spec.tree.to_newick(),
            model: spec.model.clone(),
            admitted_unix_nanos: unix_nanos_now(),
            deadline_nanos: spec.deadline.map(|d| d.as_nanos() as u64),
        });
        let job = Box::new(Job {
            id,
            tenant: spec.tenant,
            priority: spec.priority,
            dataset: spec.dataset,
            data,
            tree: spec.tree,
            model: spec.model,
            submitted_at,
            deadline: spec.deadline.map(|d| submitted_at + d),
            cancelled,
            cell,
            resolved: AtomicBool::new(false),
            redirected: AtomicBool::new(false),
            journal: self
                .journal
                .as_ref()
                .map(|j| (Arc::clone(j), journal_key)),
        });
        match self.queue.push(job) {
            Ok(()) => {
                if let (Some(journal), Some(record)) = (&self.journal, &admitted) {
                    // Deliberate: the dedup lock must cover the journal
                    // append, or a racing duplicate could admit a second
                    // execution before this admission is durable. The
                    // dedup lock is leaf-ordered (never taken by
                    // workers), so the fsync delays only racing keyed
                    // submits. plf-lint: allow(L5)
                    if let Err(err) = journal.append_admitted(record) {
                        // The job may already be executing, but the
                        // caller is told the truth: this admission was
                        // never made durable. Cancellation is
                        // best-effort; a completion that still lands
                        // journals as resolved-under-this-key, which
                        // recovery treats consistently.
                        ticket.cancel();
                        return Err(SubmitError::Journal {
                            detail: err.to_string(),
                        });
                    }
                }
                if let (Some(guard), Some(key)) =
                    (dedup_guard.as_mut(), spec.idempotency_key)
                {
                    guard.insert(key, ticket.clone());
                }
                Ok(ticket)
            }
            Err((job, err)) => {
                // Sheds and hard rejections are distinct overload
                // signals; keep their tenant accounting separate.
                if matches!(err, SubmitError::Overloaded { .. }) {
                    self.counters.record_shed(&job.tenant);
                } else {
                    self.counters.record_rejected(&job.tenant);
                }
                Err(err)
            }
        }
    }

    /// Open the scheduler gate (no-op unless constructed with
    /// `hold: true`).
    pub fn release(&self) {
        self.gate.open();
    }

    /// The shared service counter block.
    pub fn counters(&self) -> Arc<ServiceCounters> {
        Arc::clone(&self.counters)
    }

    /// Snapshot of the service metrics.
    pub fn snapshot(&self) -> ServiceSnapshot {
        self.counters.snapshot()
    }

    /// Live queue backlog.
    pub fn queue_depth(&self) -> usize {
        self.queue.depth()
    }

    /// Admission queue capacity.
    pub fn queue_capacity(&self) -> usize {
        self.queue.capacity()
    }

    /// Backend worker threads.
    pub fn n_workers(&self) -> usize {
        self.n_workers
    }

    /// The fused work-unit size (patterns) batches are measured in.
    pub fn unit_patterns(&self) -> usize {
        self.unit_patterns
    }

    /// Worker threads currently running (the watchdog restores this to
    /// [`PlfService::n_workers`] after a death).
    pub fn alive_workers(&self) -> usize {
        self.pool_shared.alive_workers()
    }

    /// Per-worker circuit-breaker states, in worker order.
    pub fn breaker_states(&self) -> Vec<BreakerState> {
        self.pool_shared.breaker_states()
    }

    /// Chaos/test control: arrange for worker `i` to die before its
    /// next job, exercising the watchdog respawn path. Out-of-range
    /// indices are ignored.
    pub fn kill_worker(&self, i: usize) {
        self.pool_shared.kill_worker(i);
    }

    /// Chaos/test control: make worker `i`'s backend refuse its next
    /// `n` jobs (and half-open probes), exercising the circuit breaker.
    /// Out-of-range indices are ignored.
    pub fn blackout_worker(&self, i: usize, n: u64) {
        self.pool_shared.blackout_worker(i, n);
    }

    /// Whether this service writes a crash-durable journal.
    pub fn journaled(&self) -> bool {
        self.journal.is_some()
    }

    /// The recovery report from the last [`PlfService::recover`] call
    /// (or the partial startup report if recovery has not run yet).
    pub fn recovery_report(&self) -> Option<RecoveryReport> {
        self.recovery
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .clone()
    }

    /// Re-admit every journaled admitted-but-unresolved job found at
    /// startup. Call after registering the datasets those jobs
    /// referenced (dataset ids are assigned in registration order, so a
    /// deterministic restart sequence reproduces them).
    ///
    /// Replayed jobs whose wall-clock deadline already passed resolve
    /// `DeadlineMissed` honestly rather than executing stale work.
    /// Jobs whose dataset is missing or whose recorded shape no longer
    /// matches resolve `Failed` — recovery never guesses. Either way
    /// the outcome is journaled and, for caller-supplied keys, indexed
    /// for dedup so a client resubmission observes it.
    pub fn recover(&self) -> RecoveryReport {
        let pending = mem::take(
            &mut *self
                .pending_replay
                .lock()
                .unwrap_or_else(|p| p.into_inner()),
        );
        let mut report = self
            .recovery
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .take()
            .unwrap_or_default();
        let now = unix_nanos_now();
        for record in pending {
            report.replayed += 1;
            self.counters.record_replayed();
            self.counters.record_submitted(&record.tenant);
            match remaining_deadline(&record, now) {
                None => {
                    report.expired += 1;
                    self.resolve_replay(&record, JobOutcome::DeadlineMissed);
                }
                Some(remaining) => {
                    if let Err(error) = self.replay_job(&record, remaining) {
                        report.unrecoverable += 1;
                        self.resolve_replay(&record, JobOutcome::Failed { error });
                    }
                }
            }
        }
        *self.recovery.lock().unwrap_or_else(|p| p.into_inner()) = Some(report.clone());
        report
    }

    /// Journal a terminal outcome for a replayed job that will not
    /// execute, mirror it in the tenant counters, and index it for
    /// dedup under caller-supplied keys.
    fn resolve_replay(&self, record: &AdmittedRecord, outcome: JobOutcome) {
        if let Some(journal) = &self.journal {
            journal.append_resolved(&record.key, record.id, &outcome);
        }
        match &outcome {
            JobOutcome::DeadlineMissed => {
                self.counters.record_deadline_missed(&record.tenant);
            }
            JobOutcome::Failed { .. } => self.counters.record_failed(&record.tenant),
            _ => {}
        }
        if !record.key.starts_with(AUTO_KEY_PREFIX) {
            let cell = JobCell::new();
            cell.set(outcome);
            let ticket = JobTicket::new(
                JobId(record.id),
                record.tenant.clone(),
                Arc::new(AtomicBool::new(false)),
                cell,
            );
            self.dedup
                .lock()
                .unwrap_or_else(|p| p.into_inner())
                .insert(record.key.clone(), ticket);
        }
    }

    /// Rebuild and re-admit one journaled job. Err(reason) means the
    /// job cannot be reconstructed and must resolve `Failed`.
    fn replay_job(
        &self,
        record: &AdmittedRecord,
        remaining: Option<Duration>,
    ) -> Result<(), String> {
        let dataset = DatasetId(record.dataset);
        let Some(data) = self.dataset(dataset) else {
            return Err(format!(
                "replay: dataset {} is not registered on this service",
                record.dataset
            ));
        };
        if data.n_taxa() as u64 != record.n_taxa
            || data.n_patterns() as u64 != record.n_patterns
        {
            return Err(format!(
                "replay: dataset {} shape {}x{} does not match journaled {}x{}",
                record.dataset,
                data.n_taxa(),
                data.n_patterns(),
                record.n_taxa,
                record.n_patterns
            ));
        }
        let tree = Tree::from_newick(&record.newick)
            .map_err(|err| format!("replay: journaled tree failed to parse: {err}"))?;
        let id = JobId(record.id);
        let cancelled = Arc::new(AtomicBool::new(false));
        let cell = JobCell::new();
        let submitted_at = Instant::now();
        let ticket = JobTicket::new(
            id,
            record.tenant.clone(),
            Arc::clone(&cancelled),
            Arc::clone(&cell),
        );
        let mut job = Box::new(Job {
            id,
            tenant: record.tenant.clone(),
            priority: record.priority,
            dataset,
            data,
            tree,
            model: record.model.clone(),
            submitted_at,
            deadline: remaining.map(|d| submitted_at + d),
            cancelled,
            cell,
            resolved: AtomicBool::new(false),
            redirected: AtomicBool::new(false),
            journal: self
                .journal
                .as_ref()
                .map(|j| (Arc::clone(j), record.key.clone())),
        });
        // Replay must not be silently shed by a momentarily-full queue:
        // retry admission briefly, honouring backpressure hints, before
        // giving up. A closed queue is terminal.
        let wall = Instant::now() + REPLAY_ADMIT_WALL;
        loop {
            match self.queue.push(job) {
                Ok(()) => break,
                Err((_, SubmitError::Closed)) => {
                    return Err("replay: admission queue is closed".to_string());
                }
                Err((rejected, err)) => {
                    if Instant::now() >= wall {
                        return Err(format!("replay: admission kept failing: {err}"));
                    }
                    thread::sleep(err.retry_after().unwrap_or(REPLAY_RETRY_NAP));
                    job = rejected;
                }
            }
        }
        if !record.key.starts_with(AUTO_KEY_PREFIX) {
            self.dedup
                .lock()
                .unwrap_or_else(|p| p.into_inner())
                .insert(record.key.clone(), ticket);
        }
        Ok(())
    }

    /// Graceful drain: stop admitting, open the gate, and wait (up to
    /// `deadline`) for every admitted job to resolve, then join the
    /// pipeline and flush the journal. This is the SIGTERM path — after
    /// it returns, the journal on disk records a terminal outcome for
    /// every acknowledged job that resolved, and a restart replays only
    /// the remainder.
    pub fn drain(&mut self, deadline: Duration) -> DrainReport {
        let started = Instant::now();
        self.queue.close();
        self.gate.open();
        let wall = started + deadline;
        let pending_at_deadline;
        loop {
            let snap = self.counters.snapshot();
            // Shed and rejected submissions were never admitted, so
            // they are not owed a resolution.
            let owed = snap
                .submitted
                .saturating_sub(snap.rejected)
                .saturating_sub(snap.shed);
            let outstanding = owed.saturating_sub(snap.resolved());
            if outstanding == 0 {
                pending_at_deadline = 0;
                break;
            }
            if Instant::now() >= wall {
                pending_at_deadline = outstanding;
                break;
            }
            thread::sleep(DRAIN_POLL);
        }
        let within_deadline = pending_at_deadline == 0;
        // Joining the scheduler flushes any stragglers (the closed
        // queue's drain path resolves them) even past the deadline.
        if let Some(handle) = self.scheduler.take() {
            let _ = handle.join();
        }
        let mut journal_flushed = true;
        if let Some(journal) = &self.journal {
            journal_flushed = journal.flush().is_ok();
        }
        let snap = self.counters.snapshot();
        DrainReport {
            resolved: snap.resolved(),
            pending_at_deadline,
            within_deadline,
            journal_flushed,
            elapsed: started.elapsed(),
        }
    }

    /// Chaos/test control: simulate `kill -9` at this instant. The
    /// journal is frozen — no further appends, no flush — so only
    /// records already written through to the OS survive, exactly as
    /// they would under a real hard kill. The in-memory pipeline is
    /// then torn down without graceful resolution bookkeeping reaching
    /// the journal.
    pub fn crash(self) {
        if let Some(journal) = &self.journal {
            journal.freeze();
        }
        // Drop runs shutdown_in_place; with the journal frozen none of
        // those resolutions are made durable.
    }

    /// Stop admitting, flush the backlog through the workers, and join
    /// every thread. Every admitted job resolves before this returns.
    pub fn shutdown(mut self) {
        self.shutdown_in_place();
    }

    fn shutdown_in_place(&mut self) {
        self.queue.close();
        self.gate.open();
        if let Some(handle) = self.scheduler.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for PlfService {
    fn drop(&mut self) {
        self.shutdown_in_place();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::{JobOutcome, Priority};
    use plf_phylo::likelihood::TreeLikelihood;

    fn scalar_backends(n: usize) -> Vec<Box<dyn PlfBackend>> {
        (0..n)
            .map(|_| Box::new(ScalarBackend) as Box<dyn PlfBackend>)
            .collect()
    }

    #[test]
    fn completed_jobs_match_serial_scalar_evaluation() {
        let ds = plf_seqgen::generate(plf_seqgen::DatasetSpec::new(8, 96), 5);
        let model = plf_seqgen::default_model();
        let service = PlfService::new(ServiceConfig::default(), scalar_backends(2));
        let dataset = service.register_dataset(ds.data.clone());
        let tickets: Vec<JobTicket> = (0..8)
            .map(|i| {
                service
                    .submit(
                        JobSpec::new(format!("tenant-{}", i % 2), dataset, ds.tree.clone(), model.clone()),
                    )
                    .expect("admitted")
            })
            .collect();
        let mut serial = TreeLikelihood::new(&ds.tree, &ds.data, model).expect("workspace");
        let mut reference = ScalarBackend;
        let expected = serial
            .log_likelihood(&ds.tree, &mut reference)
            .expect("serial eval");
        for t in tickets {
            let outcome = t.wait();
            let lnl = outcome.ln_likelihood().expect("completed");
            assert_eq!(lnl.to_bits(), expected.to_bits(), "bit-identical to serial");
        }
        let snap = service.snapshot();
        assert_eq!(snap.completed, 8);
        assert_eq!(snap.resolved(), 8);
        assert!(snap.batches >= 1);
        service.shutdown();
    }

    #[test]
    fn held_service_keeps_jobs_queued_until_release() {
        let ds = plf_seqgen::generate(plf_seqgen::DatasetSpec::new(4, 16), 9);
        let model = plf_seqgen::default_model();
        let config = ServiceConfig {
            queue_capacity: 4,
            hold: true,
            ..ServiceConfig::default()
        };
        let service = PlfService::new(config, scalar_backends(1));
        let dataset = service.register_dataset(ds.data.clone());
        let tickets: Vec<JobTicket> = (0..4)
            .map(|_| {
                service
                    .submit(JobSpec::new("t", dataset, ds.tree.clone(), model.clone()))
                    .expect("admitted")
            })
            .collect();
        assert_eq!(service.queue_depth(), 4);
        // Job K+1 rejected with a retry-after while held at capacity.
        let err = service
            .submit(JobSpec::new("t", dataset, ds.tree.clone(), model.clone()))
            .expect_err("over capacity");
        assert!(
            matches!(err, SubmitError::QueueFull { retry_after, .. } if retry_after > Duration::ZERO)
        );
        service.release();
        for t in tickets {
            assert!(t.wait().is_completed());
        }
        let snap = service.snapshot();
        assert_eq!(snap.rejected, 1);
        assert_eq!(snap.queue_depth_peak, 4);
        service.shutdown();
    }

    #[test]
    fn cancellation_before_release_resolves_cancelled() {
        let ds = plf_seqgen::generate(plf_seqgen::DatasetSpec::new(4, 16), 9);
        let model = plf_seqgen::default_model();
        let config = ServiceConfig {
            hold: true,
            ..ServiceConfig::default()
        };
        let service = PlfService::new(config, scalar_backends(1));
        let dataset = service.register_dataset(ds.data.clone());
        let ticket = service
            .submit(JobSpec::new("t", dataset, ds.tree.clone(), model))
            .expect("admitted");
        ticket.cancel();
        service.release();
        assert_eq!(ticket.wait(), JobOutcome::Cancelled);
        assert_eq!(service.snapshot().cancelled, 1);
        service.shutdown();
    }

    #[test]
    fn expired_deadline_resolves_deadline_missed() {
        let ds = plf_seqgen::generate(plf_seqgen::DatasetSpec::new(4, 16), 9);
        let model = plf_seqgen::default_model();
        let config = ServiceConfig {
            hold: true,
            ..ServiceConfig::default()
        };
        let service = PlfService::new(config, scalar_backends(1));
        let dataset = service.register_dataset(ds.data.clone());
        let ticket = service
            .submit(
                JobSpec::new("t", dataset, ds.tree.clone(), model)
                    .with_deadline(Duration::from_millis(1)),
            )
            .expect("admitted");
        std::thread::sleep(Duration::from_millis(10));
        service.release();
        assert_eq!(ticket.wait(), JobOutcome::DeadlineMissed);
        assert_eq!(service.snapshot().deadline_missed, 1);
        service.shutdown();
    }

    #[test]
    fn high_priority_starts_before_normal_backlog() {
        let ds = plf_seqgen::generate(plf_seqgen::DatasetSpec::new(4, 16), 9);
        let model = plf_seqgen::default_model();
        let config = ServiceConfig {
            hold: true,
            batch: BatchPolicy {
                max_jobs: 1, // one job per batch => strict drain order
                ..BatchPolicy::default()
            },
            ..ServiceConfig::default()
        };
        let service = PlfService::new(config, scalar_backends(1));
        let dataset = service.register_dataset(ds.data.clone());
        let normal = service
            .submit(JobSpec::new("n", dataset, ds.tree.clone(), model.clone()))
            .expect("admitted");
        let high = service
            .submit(
                JobSpec::new("h", dataset, ds.tree.clone(), model.clone())
                    .with_priority(Priority::High),
            )
            .expect("admitted");
        service.release();
        let (h, n) = (high.wait(), normal.wait());
        let wait_of = |o: &JobOutcome| match o {
            JobOutcome::Completed { wait, .. } => *wait,
            other => panic!("expected completion, got {other:?}"),
        };
        // The high job entered the queue second but started first.
        assert!(wait_of(&h) <= wait_of(&n));
        service.shutdown();
    }

    #[test]
    fn unknown_dataset_is_rejected() {
        let ds = plf_seqgen::generate(plf_seqgen::DatasetSpec::new(4, 16), 9);
        let model = plf_seqgen::default_model();
        let service = PlfService::new(ServiceConfig::default(), scalar_backends(1));
        let err = service
            .submit(JobSpec::new("t", DatasetId(99), ds.tree.clone(), model))
            .expect_err("unregistered");
        assert_eq!(err, SubmitError::UnknownDataset(DatasetId(99)));
        service.shutdown();
    }

    #[test]
    fn shutdown_resolves_queued_backlog() {
        let ds = plf_seqgen::generate(plf_seqgen::DatasetSpec::new(4, 16), 9);
        let model = plf_seqgen::default_model();
        let config = ServiceConfig {
            hold: true,
            ..ServiceConfig::default()
        };
        let service = PlfService::new(config, scalar_backends(1));
        let dataset = service.register_dataset(ds.data.clone());
        let tickets: Vec<JobTicket> = (0..6)
            .map(|_| {
                service
                    .submit(JobSpec::new("t", dataset, ds.tree.clone(), model.clone()))
                    .expect("admitted")
            })
            .collect();
        // Shutdown with the gate still held: the flush path must still
        // resolve every admitted job.
        service.shutdown();
        for t in tickets {
            assert!(t.try_wait().is_some(), "job left unresolved by shutdown");
        }
    }

    #[test]
    fn drain_under_light_load_skips_linger() {
        // A closed queue can never produce batchmates, so a scheduler
        // mid-linger must dispatch immediately instead of napping out
        // the window — otherwise every drain pays the full linger as
        // tail latency on its last job.
        let ds = plf_seqgen::generate(plf_seqgen::DatasetSpec::new(4, 16), 9);
        let model = plf_seqgen::default_model();
        let linger = Duration::from_millis(500);
        let config = ServiceConfig {
            batch: BatchPolicy {
                linger,
                ..BatchPolicy::default()
            },
            ..ServiceConfig::default()
        };
        let mut service = PlfService::new(config, scalar_backends(1));
        let dataset = service.register_dataset(ds.data.clone());
        let ticket = service
            .submit(JobSpec::new("t", dataset, ds.tree.clone(), model))
            .expect("admitted");
        // Let the scheduler pop the job and settle into the linger.
        std::thread::sleep(Duration::from_millis(50));
        let closed_at = Instant::now();
        let report = service.drain(Duration::from_secs(5));
        assert!(ticket.wait().is_completed());
        assert!(report.within_deadline);
        assert!(
            closed_at.elapsed() < linger,
            "drain waited out the linger: {:?}",
            closed_at.elapsed()
        );
    }

    #[test]
    fn mid_batch_fault_resolves_alone_and_batchmates_complete() {
        // One blackout charge poisons exactly one job of a fused
        // batch; its batchmates must still complete, bit-identical to
        // the serial reference (per-job demux under a mid-batch
        // fault).
        let ds = plf_seqgen::generate(plf_seqgen::DatasetSpec::new(6, 64), 13);
        let model = plf_seqgen::default_model();
        let config = ServiceConfig {
            hold: true,
            ..ServiceConfig::default()
        };
        let service = PlfService::new(config, scalar_backends(1));
        let dataset = service.register_dataset(ds.data.clone());
        let tickets: Vec<JobTicket> = (0..4)
            .map(|_| {
                service
                    .submit(JobSpec::new("t", dataset, ds.tree.clone(), model.clone()))
                    .expect("admitted")
            })
            .collect();
        // Single worker, single charge: the first job of the (only)
        // shard blacks out; no redirect target exists, so it fails.
        service.blackout_worker(0, 1);
        service.release();
        let outcomes: Vec<JobOutcome> = tickets.iter().map(|t| t.wait()).collect();
        let failed = outcomes
            .iter()
            .filter(|o| matches!(o, JobOutcome::Failed { .. }))
            .count();
        assert_eq!(failed, 1, "exactly one job absorbs the fault: {outcomes:?}");
        let mut serial =
            TreeLikelihood::new(&ds.tree, &ds.data, model).expect("workspace");
        let expected = serial
            .log_likelihood(&ds.tree, &mut ScalarBackend)
            .expect("serial eval");
        let completed: Vec<f64> = outcomes
            .iter()
            .filter_map(|o| o.ln_likelihood())
            .collect();
        assert_eq!(completed.len(), 3);
        for lnl in completed {
            assert_eq!(lnl.to_bits(), expected.to_bits(), "bit-identical demux");
        }
        let snap = service.snapshot();
        assert_eq!(snap.completed, 3);
        assert_eq!(snap.failed, 1);
        // The survivors ran fused with the CLV cache consulted.
        assert!(snap.clv_cache_misses > 0, "fused path not exercised");
        service.shutdown();
    }

    fn temp_journal_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "plfd-service-{tag}-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn journaled_config(dir: &std::path::Path) -> ServiceConfig {
        ServiceConfig {
            journal: Some(JournalConfig::in_dir(dir)),
            ..ServiceConfig::default()
        }
    }

    #[test]
    fn duplicate_idempotency_key_returns_one_outcome() {
        let ds = plf_seqgen::generate(plf_seqgen::DatasetSpec::new(6, 48), 11);
        let model = plf_seqgen::default_model();
        let dir = temp_journal_dir("dedup");
        let service = PlfService::new(journaled_config(&dir), scalar_backends(1));
        let dataset = service.register_dataset(ds.data.clone());
        let first = service
            .submit(
                JobSpec::new("t", dataset, ds.tree.clone(), model.clone())
                    .with_idempotency_key("job-a"),
            )
            .expect("admitted");
        let dup = service
            .submit(
                JobSpec::new("t", dataset, ds.tree.clone(), model.clone())
                    .with_idempotency_key("job-a"),
            )
            .expect("deduped, not rejected");
        let a = first.wait().ln_likelihood().expect("completed");
        let b = dup.wait().ln_likelihood().expect("completed");
        assert_eq!(a.to_bits(), b.to_bits(), "one execution, one result");
        let snap = service.snapshot();
        assert_eq!(snap.submitted, 1, "duplicate was not re-admitted");
        assert_eq!(snap.deduped_jobs, 1);
        assert!(snap.journal_appends >= 2, "admit + resolve journaled");
        service.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn crash_then_recover_replays_unresolved_and_dedups_resubmission() {
        let ds = plf_seqgen::generate(plf_seqgen::DatasetSpec::new(6, 48), 13);
        let model = plf_seqgen::default_model();
        let dir = temp_journal_dir("crash");

        // Uncrashed reference for bit-identity.
        let mut serial =
            TreeLikelihood::new(&ds.tree, &ds.data, model.clone()).expect("workspace");
        let expected = serial
            .log_likelihood(&ds.tree, &mut ScalarBackend)
            .expect("serial eval");

        // Run 1: admit some jobs while the scheduler is held shut, so
        // they are journaled admitted but never resolve, then crash.
        {
            let config = ServiceConfig {
                hold: true,
                ..journaled_config(&dir)
            };
            let service = PlfService::new(config, scalar_backends(1));
            let dataset = service.register_dataset(ds.data.clone());
            for i in 0..3 {
                service
                    .submit(
                        JobSpec::new("t", dataset, ds.tree.clone(), model.clone())
                            .with_idempotency_key(format!("crash-{i}")),
                    )
                    .expect("admitted");
            }
            service.crash();
        }

        // Run 2: same journal dir. Recovery replays all three; a client
        // resubmission under the same key dedups onto the replay.
        let service = PlfService::new(journaled_config(&dir), scalar_backends(1));
        let dataset = service.register_dataset(ds.data.clone());
        let report = service.recover();
        assert_eq!(report.replayed, 3, "all admitted-unresolved jobs replayed");
        assert_eq!(report.expired, 0);
        assert_eq!(report.unrecoverable, 0);
        let resubmitted = service
            .submit(
                JobSpec::new("t", dataset, ds.tree.clone(), model.clone())
                    .with_idempotency_key("crash-1"),
            )
            .expect("deduped onto the replayed job");
        let lnl = resubmitted.wait().ln_likelihood().expect("completed");
        assert_eq!(lnl.to_bits(), expected.to_bits(), "bit-identical across crash");
        let snap = service.snapshot();
        assert_eq!(snap.replayed_jobs, 3);
        assert_eq!(snap.deduped_jobs, 1);
        service.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn recover_resolves_expired_deadlines_as_missed() {
        let ds = plf_seqgen::generate(plf_seqgen::DatasetSpec::new(4, 16), 17);
        let model = plf_seqgen::default_model();
        let dir = temp_journal_dir("expired");
        {
            let config = ServiceConfig {
                hold: true,
                ..journaled_config(&dir)
            };
            let service = PlfService::new(config, scalar_backends(1));
            let dataset = service.register_dataset(ds.data.clone());
            service
                .submit(
                    JobSpec::new("t", dataset, ds.tree.clone(), model.clone())
                        .with_deadline(Duration::from_nanos(1))
                        .with_idempotency_key("stale"),
                )
                .expect("admitted");
            service.crash();
        }
        let service = PlfService::new(journaled_config(&dir), scalar_backends(1));
        let _dataset = service.register_dataset(ds.data.clone());
        let report = service.recover();
        assert_eq!(report.replayed, 1);
        assert_eq!(report.expired, 1, "past-deadline replay resolves honestly");
        // The journaled outcome is visible to a resubmission.
        let ticket = service
            .submit(
                JobSpec::new("t", DatasetId(0), ds.tree.clone(), model)
                    .with_idempotency_key("stale"),
            )
            .expect("deduped");
        assert!(matches!(ticket.wait(), JobOutcome::DeadlineMissed));
        service.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn drain_resolves_backlog_and_flushes_journal() {
        let ds = plf_seqgen::generate(plf_seqgen::DatasetSpec::new(6, 48), 19);
        let model = plf_seqgen::default_model();
        let dir = temp_journal_dir("drain");
        let config = ServiceConfig {
            hold: true,
            ..journaled_config(&dir)
        };
        let mut service = PlfService::new(config, scalar_backends(2));
        let dataset = service.register_dataset(ds.data.clone());
        let tickets: Vec<JobTicket> = (0..6)
            .map(|_| {
                service
                    .submit(JobSpec::new("t", dataset, ds.tree.clone(), model.clone()))
                    .expect("admitted")
            })
            .collect();
        let report = service.drain(Duration::from_secs(30));
        assert!(report.within_deadline, "backlog drained in time");
        assert_eq!(report.pending_at_deadline, 0);
        assert!(report.journal_flushed);
        assert_eq!(report.resolved, 6);
        for t in tickets {
            assert!(t.try_wait().is_some(), "drain left a job unresolved");
        }
        // A drained journal has no admitted-but-unresolved jobs left:
        // a restart replays nothing.
        drop(service);
        let restarted = PlfService::new(journaled_config(&dir), scalar_backends(1));
        let _dataset = restarted.register_dataset(ds.data.clone());
        let report = restarted.recover();
        assert_eq!(report.replayed, 0, "nothing to replay after clean drain");
        restarted.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }
}

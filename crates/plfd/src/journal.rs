//! Write-ahead job journal: the durability layer under [`crate::PlfService`].
//!
//! Every *acknowledged* admission appends an `Admitted` record before
//! the caller's ticket is returned, and every terminal outcome appends
//! a `Resolved` record before the ticket's completion cell is woken.
//! A process that dies between the two leaves an admitted-but-
//! unresolved record behind; [`crate::recovery`] replays exactly those
//! jobs on restart, so a `kill -9` loses no acknowledged work.
//!
//! # On-disk format
//!
//! The journal is a directory of append-only segment files
//! (`wal-NNNNNN.log`). Each record is framed as
//!
//! ```text
//! [u32 LE payload length][u32 LE CRC-32 of payload][payload bytes]
//! ```
//!
//! with a JSON payload. Floats (branch lengths aside — trees travel as
//! Newick text, whose `Display` round-trips `f64` bit-exactly) are
//! stored as `f64::to_bits` integers, so replayed jobs re-evaluate to
//! bit-identical log-likelihoods. A torn final record (length or CRC
//! mismatch) marks the crash point: recovery truncates it, counts the
//! truncation, and keeps everything before it.
//!
//! Appends write through to the OS immediately; `fsync` is batched
//! (group commit) under [`JournalConfig::fsync_interval`]. The active
//! segment rotates at [`JournalConfig::max_segment_bytes`], and old
//! segments compact (delete) oldest-first once every job admitted in
//! them has resolved.

use crate::job::{JobOutcome, Priority};
use plf_phylo::metrics::ServiceCounters;
use plf_phylo::model::{GtrParams, SiteModel};
use serde_json::{Number, Value};
use std::collections::{BTreeMap, BTreeSet};
use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Journal segment file name prefix.
pub(crate) const SEGMENT_PREFIX: &str = "wal-";
/// Journal segment file name suffix.
pub(crate) const SEGMENT_SUFFIX: &str = ".log";
/// Frame header bytes: `u32` payload length + `u32` CRC-32.
pub(crate) const FRAME_HEADER_BYTES: u64 = 8;
/// Upper bound on one record's payload, used by the recovery scanner to
/// reject garbage lengths in a torn tail without attempting a huge
/// allocation.
pub(crate) const MAX_RECORD_BYTES: u32 = 16 * 1024 * 1024; // plf-lint: allow(L3) — definition site, not a DMA size

/// Durability knobs for the write-ahead job journal.
#[derive(Debug, Clone)]
pub struct JournalConfig {
    /// Directory holding the segment files; created if absent.
    pub dir: PathBuf,
    /// Group-commit window: an append `fsync`s only if this much time
    /// passed since the last `fsync` (zero means every append syncs).
    /// Acknowledged-but-unsynced records ride the OS page cache — they
    /// survive a process kill, but not a host power loss.
    pub fsync_interval: Duration,
    /// Rotate the active segment once it reaches this many bytes.
    pub max_segment_bytes: u64,
    /// Delete fully-resolved segments (oldest first) as they drain.
    pub compact: bool,
}

/// Default group-commit window.
const DEFAULT_FSYNC_INTERVAL: Duration = Duration::from_millis(5);
/// Default segment rotation threshold.
const DEFAULT_SEGMENT_BYTES: u64 = 4 * 1024 * 1024;

impl Default for JournalConfig {
    fn default() -> JournalConfig {
        JournalConfig {
            dir: PathBuf::from("plfd-journal"),
            fsync_interval: DEFAULT_FSYNC_INTERVAL,
            max_segment_bytes: DEFAULT_SEGMENT_BYTES,
            compact: true,
        }
    }
}

impl JournalConfig {
    /// A config journaling into `dir` with default batching.
    pub fn in_dir(dir: impl Into<PathBuf>) -> JournalConfig {
        JournalConfig {
            dir: dir.into(),
            ..JournalConfig::default()
        }
    }
}

/// A journal operation failed at the filesystem layer.
#[derive(Debug)]
pub struct JournalError {
    /// The operation that failed (for the error message).
    pub context: String,
    /// The underlying I/O error.
    pub source: std::io::Error,
}

impl std::fmt::Display for JournalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "journal {}: {}", self.context, self.source)
    }
}

impl std::error::Error for JournalError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(&self.source)
    }
}

fn io_err(context: &str, source: std::io::Error) -> JournalError {
    JournalError {
        context: context.to_string(),
        source,
    }
}

// ------------------------------------------------------------- CRC-32

/// CRC-32 (IEEE 802.3) generator polynomial, reflected.
const CRC32_POLY: u32 = 0xEDB8_8320;

const fn build_crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut bit = 0;
        while bit < 8 {
            c = if c & 1 != 0 { (c >> 1) ^ CRC32_POLY } else { c >> 1 };
            bit += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC32_TABLE: [u32; 256] = build_crc32_table();

/// CRC-32 (IEEE) of `data`; the per-record checksum in the frame header.
pub(crate) fn crc32(data: &[u8]) -> u32 {
    let mut c = u32::MAX;
    for &b in data {
        // Index is masked to 0..=255, always in bounds for the
        // 256-entry table. plf-lint: allow(L8)
        c = (c >> 8) ^ CRC32_TABLE[((c ^ b as u32) & 0xFF) as usize];
    }
    !c
}

// ------------------------------------------------------- record model

/// An `Admitted` journal record: everything needed to reconstruct and
/// re-run the job after a crash.
#[derive(Debug, Clone)]
pub(crate) struct AdmittedRecord {
    /// Idempotency key (dedup identity across restarts).
    pub key: String,
    /// Service-assigned job id (recovery resumes id allocation above it).
    pub id: u64,
    /// Accounting principal.
    pub tenant: String,
    /// Scheduling lane.
    pub priority: Priority,
    /// Dataset handle the job referenced. Handles are assigned in
    /// registration order, so an embedder re-registering the same
    /// datasets in the same order gets stable ids across restarts.
    pub dataset: u64,
    /// Alignment shape fingerprint guarding against a dataset-id remap.
    pub n_taxa: u64,
    /// Alignment shape fingerprint guarding against a dataset-id remap.
    pub n_patterns: u64,
    /// The tree, as Newick text (`f64` branch lengths round-trip
    /// bit-exactly through `Display`).
    pub newick: String,
    /// The site model (floats as `to_bits` integers in the payload).
    pub model: SiteModel,
    /// Wall-clock admission instant (nanoseconds since `UNIX_EPOCH`),
    /// the anchor the relative deadline is honored against on replay.
    pub admitted_unix_nanos: u64,
    /// Relative deadline from admission, if any.
    pub deadline_nanos: Option<u64>,
}

/// A `Resolved` journal record: the terminal outcome under the key.
#[derive(Debug, Clone)]
pub(crate) struct ResolvedRecord {
    /// Idempotency key this outcome belongs to.
    pub key: String,
    /// Service-assigned job id the outcome resolved under.
    pub id: u64,
    /// CRC-32 of the canonical outcome JSON — a content digest callers
    /// can compare across runs without parsing the outcome.
    pub digest: u64,
    /// The terminal outcome itself, replayed verbatim on dedup.
    pub outcome: JobOutcome,
}

/// One decoded journal record.
#[derive(Debug, Clone)]
#[allow(clippy::large_enum_variant)] // transient: encoded or scanned one at a time, never stored in bulk
pub(crate) enum Record {
    Admitted(AdmittedRecord),
    Resolved(ResolvedRecord),
}

fn obj(fields: Vec<(&str, Value)>) -> Value {
    Value::Object(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

fn uint(v: u64) -> Value {
    Value::Number(Number::PosInt(v))
}

fn bits_array(values: &[f64]) -> Value {
    Value::Array(values.iter().map(|v| uint(v.to_bits())).collect())
}

fn model_to_value(model: &SiteModel) -> Value {
    obj(vec![
        ("rates", bits_array(&model.params().rates)),
        ("freqs", bits_array(&model.params().freqs)),
        ("shape", uint(model.shape().to_bits())),
        ("n_rates", uint(model.n_rates() as u64)),
        ("pinvar", uint(model.pinvar().to_bits())),
    ])
}

fn bits_from(v: &Value) -> Option<f64> {
    v.as_u64().map(f64::from_bits)
}

fn model_from_value(v: &Value) -> Option<SiteModel> {
    let rates_v = v.get("rates")?.as_array()?;
    let freqs_v = v.get("freqs")?.as_array()?;
    if rates_v.len() != 6 || freqs_v.len() != 4 {
        return None;
    }
    let mut rates = [0.0f64; 6];
    for (slot, raw) in rates.iter_mut().zip(rates_v) {
        *slot = bits_from(raw)?;
    }
    let mut freqs = [0.0f64; 4];
    for (slot, raw) in freqs.iter_mut().zip(freqs_v) {
        *slot = bits_from(raw)?;
    }
    let shape = bits_from(v.get("shape")?)?;
    let n_rates = v.get("n_rates")?.as_u64()? as usize;
    let pinvar = bits_from(v.get("pinvar")?)?;
    let model = SiteModel::new(GtrParams { rates, freqs }, shape, n_rates).ok()?;
    if pinvar == 0.0 {
        Some(model)
    } else {
        model.with_pinvar(pinvar).ok()
    }
}

fn outcome_to_value(outcome: &JobOutcome) -> Value {
    match outcome {
        JobOutcome::Completed {
            ln_likelihood,
            wait,
            service,
            backend,
        } => obj(vec![
            ("status", Value::String("completed".to_string())),
            ("lnl_bits", uint(ln_likelihood.to_bits())),
            ("wait_nanos", uint(wait.as_nanos() as u64)),
            ("service_nanos", uint(service.as_nanos() as u64)),
            ("backend", Value::String(backend.clone())),
        ]),
        JobOutcome::Cancelled => obj(vec![(
            "status",
            Value::String("cancelled".to_string()),
        )]),
        JobOutcome::DeadlineMissed => obj(vec![(
            "status",
            Value::String("deadline_missed".to_string()),
        )]),
        JobOutcome::Failed { error } => obj(vec![
            ("status", Value::String("failed".to_string())),
            ("error", Value::String(error.clone())),
        ]),
    }
}

fn outcome_from_value(v: &Value) -> Option<JobOutcome> {
    match v.get("status")?.as_str()? {
        "completed" => Some(JobOutcome::Completed {
            ln_likelihood: bits_from(v.get("lnl_bits")?)?,
            wait: Duration::from_nanos(v.get("wait_nanos")?.as_u64()?),
            service: Duration::from_nanos(v.get("service_nanos")?.as_u64()?),
            backend: v.get("backend")?.as_str()?.to_string(),
        }),
        "cancelled" => Some(JobOutcome::Cancelled),
        "deadline_missed" => Some(JobOutcome::DeadlineMissed),
        "failed" => Some(JobOutcome::Failed {
            error: v.get("error")?.as_str()?.to_string(),
        }),
        _ => None,
    }
}

/// The canonical serialized outcome and its CRC-32 content digest.
pub(crate) fn outcome_digest(outcome: &JobOutcome) -> u64 {
    match serde_json::to_string(&outcome_to_value(outcome)) {
        Ok(text) => crc32(text.as_bytes()) as u64,
        Err(_) => 0,
    }
}

fn priority_label(p: Priority) -> &'static str {
    match p {
        Priority::High => "high",
        Priority::Normal => "normal",
    }
}

pub(crate) fn encode_record(record: &Record) -> Result<String, JournalError> {
    let value = match record {
        Record::Admitted(a) => obj(vec![
            ("kind", Value::String("admitted".to_string())),
            ("key", Value::String(a.key.clone())),
            ("id", uint(a.id)),
            ("tenant", Value::String(a.tenant.clone())),
            (
                "priority",
                Value::String(priority_label(a.priority).to_string()),
            ),
            ("dataset", uint(a.dataset)),
            ("n_taxa", uint(a.n_taxa)),
            ("n_patterns", uint(a.n_patterns)),
            ("tree", Value::String(a.newick.clone())),
            ("model", model_to_value(&a.model)),
            ("admitted_unix_nanos", uint(a.admitted_unix_nanos)),
            (
                "deadline_nanos",
                match a.deadline_nanos {
                    Some(n) => uint(n),
                    None => Value::Null,
                },
            ),
        ]),
        Record::Resolved(r) => obj(vec![
            ("kind", Value::String("resolved".to_string())),
            ("key", Value::String(r.key.clone())),
            ("id", uint(r.id)),
            ("digest", uint(r.digest)),
            ("outcome", outcome_to_value(&r.outcome)),
        ]),
    };
    serde_json::to_string(&value)
        .map_err(|e| io_err("encode", std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string())))
}

/// Decode one JSON payload; `None` marks a malformed record (the
/// scanner treats it as tail corruption).
pub(crate) fn decode_record(payload: &[u8]) -> Option<Record> {
    let text = std::str::from_utf8(payload).ok()?;
    let value = serde_json::from_str(text).ok()?;
    match value.get("kind")?.as_str()? {
        "admitted" => Some(Record::Admitted(AdmittedRecord {
            key: value.get("key")?.as_str()?.to_string(),
            id: value.get("id")?.as_u64()?,
            tenant: value.get("tenant")?.as_str()?.to_string(),
            priority: Priority::parse(value.get("priority")?.as_str()?)?,
            dataset: value.get("dataset")?.as_u64()?,
            n_taxa: value.get("n_taxa")?.as_u64()?,
            n_patterns: value.get("n_patterns")?.as_u64()?,
            newick: value.get("tree")?.as_str()?.to_string(),
            model: model_from_value(value.get("model")?)?,
            admitted_unix_nanos: value.get("admitted_unix_nanos")?.as_u64()?,
            deadline_nanos: match value.get("deadline_nanos")? {
                Value::Null => None,
                other => Some(other.as_u64()?),
            },
        })),
        "resolved" => Some(Record::Resolved(ResolvedRecord {
            key: value.get("key")?.as_str()?.to_string(),
            id: value.get("id")?.as_u64()?,
            digest: value.get("digest")?.as_u64()?,
            outcome: outcome_from_value(value.get("outcome")?)?,
        })),
        _ => None,
    }
}

/// Frame a payload for appending: `[len][crc][payload]`.
pub(crate) fn frame(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(payload.len() + FRAME_HEADER_BYTES as usize);
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Path of segment `index` under `dir`.
pub(crate) fn segment_path(dir: &Path, index: u64) -> PathBuf {
    dir.join(format!("{SEGMENT_PREFIX}{index:06}{SEGMENT_SUFFIX}"))
}

/// The `(index, path)` of every segment file under `dir`, ordered.
pub(crate) fn list_segments(dir: &Path) -> Result<Vec<(u64, PathBuf)>, JournalError> {
    let mut out = Vec::new();
    let entries = match std::fs::read_dir(dir) {
        Ok(entries) => entries,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(out),
        Err(e) => return Err(io_err("read_dir", e)),
    };
    for entry in entries {
        let entry = entry.map_err(|e| io_err("read_dir entry", e))?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        let Some(stem) = name
            .strip_prefix(SEGMENT_PREFIX)
            .and_then(|s| s.strip_suffix(SEGMENT_SUFFIX))
        else {
            continue;
        };
        if let Ok(index) = stem.parse::<u64>() {
            out.push((index, entry.path()));
        }
    }
    out.sort_unstable_by_key(|(index, _)| *index);
    Ok(out)
}

// ------------------------------------------------------------ journal

/// Per-segment liveness bookkeeping for compaction.
#[derive(Debug)]
struct SegmentState {
    /// Keys admitted in this segment still awaiting a `Resolved` record.
    unresolved: u64,
}

#[derive(Debug)]
struct Inner {
    /// Active segment file; `None` once frozen (crash simulation).
    file: Option<File>,
    frozen: bool,
    seg_index: u64,
    seg_bytes: u64,
    last_fsync: Instant,
    /// Bytes written since the last fsync.
    dirty: bool,
    /// Which segment each unresolved admitted key lives in.
    key_seg: BTreeMap<String, u64>,
    /// Keys whose `Resolved` record hit disk before their `Admitted`
    /// record (the worker raced the submitter to the journal). The
    /// late-arriving admit consumes the entry instead of counting the
    /// key unresolved, so compaction accounting stays exact.
    early_resolved: BTreeSet<String>,
    /// Ordered live segments (oldest first) for prefix compaction.
    segments: BTreeMap<u64, SegmentState>,
}

/// The append side of the write-ahead journal. Shared by the service
/// (admission) and every `Job` (resolution), so both record kinds hit
/// one serialized append path.
#[derive(Debug)]
pub(crate) struct Journal {
    cfg: JournalConfig,
    counters: Arc<ServiceCounters>,
    inner: Mutex<Inner>,
}

impl Journal {
    /// Open the journal for appending, resuming after any existing
    /// segments. `resume_segments` carries the per-segment unresolved
    /// counts and key locations the recovery scan observed.
    pub(crate) fn open(
        cfg: JournalConfig,
        counters: Arc<ServiceCounters>,
        resume_next_index: u64,
        resume_unresolved: BTreeMap<u64, u64>,
        resume_key_seg: BTreeMap<String, u64>,
    ) -> Result<Journal, JournalError> {
        std::fs::create_dir_all(&cfg.dir).map_err(|e| io_err("create dir", e))?;
        let seg_index = resume_next_index;
        let file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(segment_path(&cfg.dir, seg_index))
            .map_err(|e| io_err("open segment", e))?;
        let mut segments: BTreeMap<u64, SegmentState> = resume_unresolved
            .into_iter()
            .map(|(index, unresolved)| (index, SegmentState { unresolved }))
            .collect();
        segments.insert(seg_index, SegmentState { unresolved: 0 });
        let journal = Journal {
            cfg,
            counters,
            inner: Mutex::new(Inner {
                file: Some(file),
                frozen: false,
                seg_index,
                seg_bytes: 0,
                last_fsync: Instant::now(),
                dirty: false,
                key_seg: resume_key_seg,
                early_resolved: BTreeSet::new(),
                segments,
            }),
        };
        // Segments that were already fully resolved before the restart
        // compact immediately.
        {
            let mut inner = journal.inner.lock().unwrap_or_else(|p| p.into_inner());
            journal.compact_locked(&mut inner);
        }
        Ok(journal)
    }

    /// Append one `Admitted` record. Errors propagate: admission must
    /// not be acknowledged if the record is not durable.
    pub(crate) fn append_admitted(&self, record: &AdmittedRecord) -> Result<(), JournalError> {
        let payload = encode_record(&Record::Admitted(record.clone()))?;
        let mut inner = self.inner.lock().unwrap_or_else(|p| p.into_inner());
        if inner.frozen {
            return Ok(());
        }
        // Group-commit by design: the record must be durable before the
        // key is published under this same lock. plf-lint: allow(L5)
        self.write_locked(&mut inner, payload.as_bytes())?;
        if inner.early_resolved.remove(&record.key) {
            // The resolution already landed; this key owes nothing.
            self.compact_locked(&mut inner);
            return Ok(());
        }
        let seg = inner.seg_index;
        inner.key_seg.insert(record.key.clone(), seg);
        if let Some(state) = inner.segments.get_mut(&seg) {
            state.unresolved += 1;
        }
        Ok(())
    }

    /// Append one `Resolved` record. Called from every terminal publish
    /// path (worker threads included), so it must not panic and must
    /// not fail the publish: an append error here leaves the job
    /// admitted-but-unresolved on disk, which recovery handles by
    /// replaying it — safe, because results are bit-identical.
    pub(crate) fn append_resolved(&self, key: &str, id: u64, outcome: &JobOutcome) {
        let record = Record::Resolved(ResolvedRecord {
            key: key.to_string(),
            id,
            digest: outcome_digest(outcome),
            outcome: outcome.clone(),
        });
        let Ok(payload) = encode_record(&record) else {
            return;
        };
        let mut inner = self.inner.lock().unwrap_or_else(|p| p.into_inner());
        if inner.frozen {
            return;
        }
        // Group-commit by design: resolution must hit disk before the
        // segment accounting changes. plf-lint: allow(L5)
        if self.write_locked(&mut inner, payload.as_bytes()).is_err() {
            return;
        }
        if let Some(seg) = inner.key_seg.remove(key) {
            if let Some(state) = inner.segments.get_mut(&seg) {
                state.unresolved = state.unresolved.saturating_sub(1);
            }
            self.compact_locked(&mut inner);
        } else {
            // Resolution beat the admit to disk (publish raced
            // submit's journal append). Remember it so the admit does
            // not count this key unresolved forever.
            inner.early_resolved.insert(key.to_string());
        }
    }

    /// Write one framed payload into the active segment, rotating and
    /// group-committing per config. Caller holds the lock.
    fn write_locked(&self, inner: &mut Inner, payload: &[u8]) -> Result<(), JournalError> {
        let framed = frame(payload);
        let framed_len = framed.len() as u64;
        if inner.seg_bytes > 0 && inner.seg_bytes + framed_len > self.cfg.max_segment_bytes {
            self.rotate_locked(inner)?;
        }
        let Some(file) = inner.file.as_mut() else {
            return Ok(());
        };
        file.write_all(&framed).map_err(|e| io_err("append", e))?;
        inner.seg_bytes += framed_len;
        inner.dirty = true;
        self.counters.record_journal_append();
        let due = self.cfg.fsync_interval.is_zero()
            || inner.last_fsync.elapsed() >= self.cfg.fsync_interval;
        if due {
            self.fsync_locked(inner)?;
        }
        Ok(())
    }

    fn fsync_locked(&self, inner: &mut Inner) -> Result<(), JournalError> {
        if !inner.dirty {
            return Ok(());
        }
        if let Some(file) = inner.file.as_mut() {
            file.sync_data().map_err(|e| io_err("fsync", e))?;
            inner.dirty = false;
            inner.last_fsync = Instant::now();
            self.counters.record_journal_fsync();
        }
        Ok(())
    }

    fn rotate_locked(&self, inner: &mut Inner) -> Result<(), JournalError> {
        self.fsync_locked(inner)?;
        let next = inner.seg_index + 1;
        let file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(segment_path(&self.cfg.dir, next))
            .map_err(|e| io_err("rotate", e))?;
        inner.file = Some(file);
        inner.seg_index = next;
        inner.seg_bytes = 0;
        inner.segments.insert(next, SegmentState { unresolved: 0 });
        self.counters.record_journal_rotation();
        // The sealed segment may already be fully resolved.
        self.compact_locked(inner);
        Ok(())
    }

    /// Prefix compaction: delete the oldest live segment while every
    /// job admitted in it has resolved. Only a *prefix* is eligible —
    /// a fully-resolved middle segment may still hold the `Resolved`
    /// records for keys admitted in an older, still-live segment, and
    /// deleting those would make recovery replay already-resolved work.
    fn compact_locked(&self, inner: &mut Inner) {
        if !self.cfg.compact || inner.frozen {
            return;
        }
        loop {
            let Some((&oldest, state)) = inner.segments.iter().next() else {
                return;
            };
            if oldest == inner.seg_index || state.unresolved > 0 {
                return;
            }
            // Best-effort: a failed unlink leaves a stale segment that
            // recovery re-reads harmlessly (all its keys are resolved).
            if std::fs::remove_file(segment_path(&self.cfg.dir, oldest)).is_ok() {
                self.counters.record_journal_compaction();
            }
            inner.segments.remove(&oldest);
        }
    }

    /// Force an fsync of any batched appends (drain / shutdown path).
    pub(crate) fn flush(&self) -> Result<(), JournalError> {
        let mut inner = self.inner.lock().unwrap_or_else(|p| p.into_inner());
        // Drain/shutdown path: the whole point is to fsync what the
        // lock protects, and no other lock is held. plf-lint: allow(L5)
        self.fsync_locked(&mut inner)
    }

    /// Crash simulation: atomically stop all journaling *without*
    /// flushing, exactly as if the process died at this instant. Every
    /// record appended before the freeze is on disk (appends write
    /// through to the OS); everything after is lost, including
    /// `Resolved` records for jobs that finish during teardown — which
    /// is precisely the admitted-but-unresolved state a real `kill -9`
    /// leaves behind.
    pub(crate) fn freeze(&self) {
        let mut inner = self.inner.lock().unwrap_or_else(|p| p.into_inner());
        inner.frozen = true;
        inner.file = None;
    }

    /// Whether [`Journal::freeze`] was called.
    #[cfg(test)]
    pub(crate) fn is_frozen(&self) -> bool {
        self.inner
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .frozen
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vectors() {
        // IEEE CRC-32 check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn record_roundtrip_is_lossless() {
        let model = plf_seqgen::default_model();
        let admitted = AdmittedRecord {
            key: "k-1".to_string(),
            id: 7,
            tenant: "tenant-a".to_string(),
            priority: Priority::High,
            dataset: 3,
            n_taxa: 8,
            n_patterns: 64,
            newick: "((a:0.1,b:0.2):0.05,c:0.3,d:0.4);".to_string(),
            model: model.clone(),
            admitted_unix_nanos: 123_456_789,
            deadline_nanos: Some(50_000_000),
        };
        let payload = encode_record(&Record::Admitted(admitted.clone())).expect("encode");
        let Some(Record::Admitted(back)) = decode_record(payload.as_bytes()) else {
            panic!("expected admitted record");
        };
        assert_eq!(back.key, admitted.key);
        assert_eq!(back.id, admitted.id);
        assert_eq!(back.priority, admitted.priority);
        assert_eq!(back.newick, admitted.newick);
        assert_eq!(back.deadline_nanos, admitted.deadline_nanos);
        assert_eq!(back.model.shape().to_bits(), model.shape().to_bits());
        assert_eq!(back.model.n_rates(), model.n_rates());
        for (a, b) in back
            .model
            .params()
            .rates
            .iter()
            .zip(model.params().rates.iter())
        {
            assert_eq!(a.to_bits(), b.to_bits());
        }

        let outcome = JobOutcome::Completed {
            ln_likelihood: -1234.56789,
            wait: Duration::from_micros(42),
            service: Duration::from_micros(7),
            backend: "scalar".to_string(),
        };
        let resolved = ResolvedRecord {
            key: "k-1".to_string(),
            id: 7,
            digest: outcome_digest(&outcome),
            outcome: outcome.clone(),
        };
        let payload = encode_record(&Record::Resolved(resolved)).expect("encode");
        let Some(Record::Resolved(back)) = decode_record(payload.as_bytes()) else {
            panic!("expected resolved record");
        };
        assert_eq!(back.outcome, outcome);
        assert_eq!(back.digest, outcome_digest(&outcome));
        assert_eq!(
            back.outcome.ln_likelihood().map(f64::to_bits),
            outcome.ln_likelihood().map(f64::to_bits),
            "lnL survives the journal bit-exactly"
        );
    }

    #[test]
    fn malformed_payloads_decode_to_none() {
        assert!(decode_record(b"not json").is_none());
        assert!(decode_record(b"{\"kind\":\"unknown\"}").is_none());
        assert!(decode_record(&[0xFF, 0xFE]).is_none());
    }

    #[test]
    fn frame_is_length_then_crc_then_payload() {
        let framed = frame(b"abc");
        assert_eq!(&framed[0..4], &3u32.to_le_bytes());
        assert_eq!(&framed[4..8], &crc32(b"abc").to_le_bytes());
        assert_eq!(&framed[8..], b"abc");
    }

    #[test]
    fn freeze_drops_later_appends_leaving_admitted_unresolved() {
        let dir = std::env::temp_dir().join(format!(
            "plfd-journal-freeze-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let counters = Arc::new(ServiceCounters::default());
        let journal = Journal::open(
            JournalConfig::in_dir(&dir),
            counters,
            0,
            BTreeMap::new(),
            BTreeMap::new(),
        )
        .expect("open");
        let record = AdmittedRecord {
            key: "frozen-1".to_string(),
            id: 1,
            tenant: "t".to_string(),
            priority: Priority::Normal,
            dataset: 0,
            n_taxa: 4,
            n_patterns: 16,
            newick: "((a:0.1,b:0.2):0.05,c:0.3,d:0.4);".to_string(),
            model: plf_seqgen::default_model(),
            admitted_unix_nanos: 1,
            deadline_nanos: None,
        };
        journal.append_admitted(&record).expect("admit");
        assert!(!journal.is_frozen());
        journal.freeze();
        assert!(journal.is_frozen());
        // Post-freeze resolution is silently dropped — kill -9 semantics.
        journal.append_resolved("frozen-1", 1, &JobOutcome::Cancelled);
        let scanned = crate::recovery::scan(&dir).expect("scan");
        assert_eq!(scanned.pending.len(), 1, "admit survived the freeze");
        assert!(
            scanned.resolved.is_empty(),
            "post-freeze resolve never reached disk"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}

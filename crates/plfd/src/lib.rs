//! # plfd — the batched, multi-tenant PLF evaluation service
//!
//! The paper accelerates the three PLF kernels for a single caller on
//! one device at a time; this crate is the subsystem that turns those
//! kernels, the backends, and the resilience layer into a *server*, in
//! the spirit of BEAGLE's likelihood-service layer: many concurrent
//! clients submit likelihood-evaluation jobs (tree + model + alignment
//! handle), and the service multiplexes them across a pool of
//! [`PlfBackend`](plf_phylo::kernels::PlfBackend) workers.
//!
//! The pipeline (DESIGN.md §11):
//!
//! ```text
//!  submit() ──▶ BoundedQueue ──▶ batching scheduler ──▶ dispatcher ──▶ workers
//!   (admission:   (two priority    (coalesce compatible   (shard across   (one
//!    reject +      lanes, hard      jobs; linger window;   backends;       backend
//!    retry-after)  capacity)        device-sized units)    reassemble)     each)
//! ```
//!
//! * **Admission control** — the submission queue is bounded; at
//!   capacity, [`PlfService::submit`] rejects with a `retry_after`
//!   hint instead of growing without bound ([`queue`]).
//! * **Batching** — compatible jobs (same dataset handle, same rate
//!   count) fuse into batches measured in device-sized pattern units:
//!   Local-Store-sized chunks for the Cell backend, grid-sized slabs
//!   for the GPU, per-thread chunks for the multicore pools
//!   ([`scheduler`], sizing via
//!   [`PlfBackend::preferred_batch_patterns`](plf_phylo::kernels::PlfBackend::preferred_batch_patterns)).
//! * **Dispatch & reassembly** — batches shard across the worker pool;
//!   per-job outcomes flow back through one-shot completion cells, and
//!   a failing (or even panicking) job resolves as `Failed` without
//!   sinking its batchmates ([`dispatch`]).
//! * **Accounting** — queue depth, wait vs. service time, batch
//!   occupancy, rejects, and deadline misses land in
//!   [`ServiceCounters`](plf_phylo::metrics::ServiceCounters), with a
//!   per-tenant breakdown, and surface in the `service` section of
//!   `BENCH_plf.json` schema v2 ([`loadgen::ServiceBenchmark`]).
//! * **Self-healing** — a watchdog respawns dead workers and re-queues
//!   their in-flight jobs (at-most-once, bit-identical results); each
//!   worker carries a circuit breaker that routes traffic away from a
//!   faulting backend until seeded half-open probes re-close it; and
//!   admission sheds load adaptively when the EWMA-estimated queue
//!   delay exceeds the policy target ([`health`], DESIGN.md §12).
//! * **Crash durability** — with a [`JournalConfig`], every
//!   acknowledged admission is written to an append-only checksummed
//!   write-ahead journal before the ticket is returned; after a hard
//!   kill, [`PlfService::recover`] replays admitted-but-unresolved
//!   jobs, dedups re-submissions by idempotency key, and truncates any
//!   torn tail record non-fatally ([`journal`], [`recovery`],
//!   DESIGN.md §13).
//!
//! See [`service`] for the facade and a usage example, [`loadgen`]
//! for the deterministic seeded load generator behind `plfr loadgen`,
//! and [`chaos`] for the seeded chaos soak harness behind `plfr chaos`.

#![warn(missing_docs)]

pub mod chaos;
pub mod dispatch;
pub mod health;
pub mod job;
pub mod journal;
pub mod loadgen;
pub mod queue;
pub mod recovery;
pub mod scheduler;
pub mod service;

pub use chaos::{
    run_chaos, scalar_chaos_factory, ChaosBackendFactory, ChaosConfig, ChaosReport,
    CrashDurability, ScheduledBlackout, ScheduledKill,
};
pub use health::{BackendFactory, BreakerPolicy, BreakerState, ShedPolicy, WatchdogPolicy};
pub use job::{DatasetId, JobId, JobOutcome, JobSpec, JobTicket, Priority};
pub use journal::{JournalConfig, JournalError};
pub use loadgen::{LoadMode, LoadgenConfig, LoadgenReport, ServiceBenchmark};
pub use queue::{RetryPolicy, SubmitError};
pub use recovery::RecoveryReport;
pub use scheduler::BatchPolicy;
pub use service::{DrainReport, PlfService, ServiceConfig};

//! Deterministic seeded load generator and the serial-vs-batched
//! service benchmark behind `BENCH_plf.json`'s `service` section.
//!
//! The generator drives a running [`PlfService`] in either a *closed*
//! loop (a fixed number of outstanding jobs; each completion triggers
//! the next submission — throughput-oriented) or an *open* loop
//! (submissions paced at a target QPS regardless of completions —
//! latency-oriented). Every random choice — per-job tree topology,
//! tenant, priority, cancellation — derives from one seed through one
//! `StdRng`, so a (seed, config) pair replays the identical job stream.
//!
//! Rejected submissions honor the backpressure contract: on either a
//! capacity rejection or an adaptive shed, the generator backs off
//! per its [`RetryPolicy`] (exponential with deterministic jitter,
//! floored at the service's `retry_after` hint) and resubmits the
//! same job under the same idempotency key (`lg-{seed}-{i}`), so no
//! job is ever lost to admission control and a retried submission can
//! never execute twice. With `check` enabled, each completed
//! log-likelihood is recomputed serially on the scalar reference
//! backend and compared *bit-for-bit*.

use crate::job::{JobOutcome, JobSpec, JobTicket, Priority};
use crate::queue::{RetryPolicy, SubmitError};
use crate::service::{PlfService, ServiceConfig};
use plf_phylo::kernels::{PlfBackend, ScalarBackend};
use plf_phylo::likelihood::TreeLikelihood;
use plf_phylo::metrics::ServiceSnapshot;
use plf_phylo::model::SiteModel;
use plf_phylo::tree::Tree;
use plf_seqgen::{random_tree_for_taxa, DatasetSpec};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::Serialize;
use std::collections::VecDeque;
use std::time::{Duration, Instant};

/// Submission discipline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LoadMode {
    /// Keep `concurrency` jobs outstanding; submit on completion.
    Closed {
        /// Outstanding-job window (1 = serial one-at-a-time).
        concurrency: usize,
    },
    /// Pace submissions at `qps` regardless of completions.
    Open {
        /// Target submissions per second.
        qps: f64,
    },
}

/// Load-generator configuration; all randomness flows from `seed`.
#[derive(Debug, Clone)]
pub struct LoadgenConfig {
    /// Jobs to submit.
    pub jobs: usize,
    /// Submission discipline.
    pub mode: LoadMode,
    /// Tenants to spread jobs across (`tenant-0..N`, round-robin).
    pub tenants: usize,
    /// Fraction of jobs submitted on the high-priority lane.
    pub high_fraction: f64,
    /// Fraction of jobs cancelled right after submission.
    pub cancel_fraction: f64,
    /// Relative deadline applied to every job, if any.
    pub deadline: Option<Duration>,
    /// RNG seed for the whole job stream.
    pub seed: u64,
    /// Mean branch length of the per-job random trees.
    pub branch_mean: f64,
    /// Fraction of jobs shaped like MCMC proposals: instead of a fresh
    /// random tree, the job reuses the previous job's tree with one
    /// branch rescaled (a multiplier move). Proposal-shaped jobs share
    /// every subtree outside the edited path, which is what the
    /// per-worker CLV reuse cache (DESIGN.md §14) accelerates. `0.0`
    /// (the default) keeps the fully-random stream — and consumes the
    /// exact same RNG draw sequence as before the knob existed, so
    /// existing seeded streams replay unchanged.
    pub proposal_fraction: f64,
    /// Recompute every completed result serially on the scalar
    /// reference backend and compare bit-for-bit.
    pub check: bool,
    /// Stop submitting once this much wall time has elapsed (the CI
    /// smoke caps a run at ~10 s); already-submitted jobs still drain.
    pub max_duration: Option<Duration>,
    /// Backoff discipline for retryable admission refusals.
    pub retry: RetryPolicy,
}

impl Default for LoadgenConfig {
    fn default() -> LoadgenConfig {
        LoadgenConfig {
            jobs: 256,
            mode: LoadMode::Closed { concurrency: 256 },
            tenants: 4,
            high_fraction: 0.125,
            cancel_fraction: 0.0,
            deadline: None,
            seed: 2009,
            branch_mean: 0.1,
            proposal_fraction: 0.0,
            check: true,
            max_duration: None,
            retry: RetryPolicy::default(),
        }
    }
}

/// What one loadgen run observed.
#[derive(Debug, Clone, Serialize)]
pub struct LoadgenReport {
    /// Jobs submitted (admitted).
    pub submitted: usize,
    /// Jobs that completed with a log-likelihood.
    pub completed: usize,
    /// Jobs that failed evaluation.
    pub failed: usize,
    /// Jobs cancelled by the generator.
    pub cancelled: usize,
    /// Jobs that missed their deadline.
    pub deadline_missed: usize,
    /// Admission rejections absorbed by retry (not lost jobs).
    pub rejections_retried: usize,
    /// Adaptive-shed refusals absorbed by retry (not lost jobs).
    pub sheds_retried: usize,
    /// Jobs with no outcome — always 0 unless the service dropped work.
    pub lost: usize,
    /// Completed results re-checked against the serial scalar
    /// reference.
    pub checked: usize,
    /// Checked results whose bits differed — always 0 on a correct
    /// service.
    pub bit_mismatches: usize,
    /// Wall-clock seconds from first submission to last resolution.
    pub wall_seconds: f64,
    /// Resolved jobs per wall second.
    pub jobs_per_second: f64,
    /// Mean queue-wait per completed job, milliseconds.
    pub mean_wait_ms: f64,
    /// Mean evaluation time per completed job, milliseconds.
    pub mean_service_ms: f64,
    /// Median completion latency (wait + service), milliseconds.
    pub p50_latency_ms: f64,
    /// 95th-percentile completion latency, milliseconds.
    pub p95_latency_ms: f64,
    /// Service counter snapshot at the end of the run.
    pub service: ServiceSnapshot,
}

/// One pending job the generator is tracking.
struct Pending {
    ticket: JobTicket,
    tree: Tree,
    model: SiteModel,
}

/// Draw the next tree of a job stream: with probability
/// `proposal_fraction` (and once a previous tree exists), the previous
/// tree with one branch rescaled by a multiplier move; otherwise a
/// fresh random tree. The short-circuit keeps the RNG draw sequence of
/// a `proposal_fraction == 0.0` stream identical to the pre-knob one.
fn next_stream_tree(
    taxa: &[String],
    branch_mean: f64,
    proposal_fraction: f64,
    last: &mut Option<Tree>,
    rng: &mut StdRng,
) -> Tree {
    let proposed = proposal_fraction > 0.0
        && last.is_some()
        && rng.gen_range(0.0..1.0) < proposal_fraction;
    let tree = match last.take() {
        Some(mut t) if proposed => {
            let branches = t.branches();
            if branches.is_empty() {
                random_tree_for_taxa(taxa, branch_mean, rng)
            } else {
                let pick = branches[rng.gen_range(0..branches.len())];
                // MrBayes-style multiplier move: b' = b·exp(u), u ∈ (−½, ½).
                let factor = rng.gen_range(-0.5f64..0.5).exp();
                let node = t.node_mut(pick);
                node.branch = (node.branch * factor).max(1e-9);
                t
            }
        }
        _ => random_tree_for_taxa(taxa, branch_mean, rng),
    };
    *last = Some(tree.clone());
    tree
}

/// Drive `service` with a deterministic job stream against `dataset`
/// (which must be registered with the service; `taxa` are its taxon
/// names, used to grow random per-job trees).
///
/// Errors when a submission fails non-retryably (closed queue,
/// unknown dataset, journal failure) or the retry budget runs out —
/// the generator never panics on a service refusal.
pub fn run(
    service: &PlfService,
    dataset: crate::job::DatasetId,
    taxa: &[String],
    model: &SiteModel,
    cfg: &LoadgenConfig,
) -> Result<LoadgenReport, SubmitError> {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let data = service.dataset(dataset);
    let started = Instant::now();
    let mut outstanding: VecDeque<Pending> = VecDeque::new();
    let mut outcomes: Vec<(JobOutcome, Tree, SiteModel)> = Vec::new();
    let mut rejections_retried = 0usize;
    let mut sheds_retried = 0usize;
    let mut submitted = 0usize;
    let mut next_open_slot = started;
    let mut last_tree: Option<Tree> = None;

    for i in 0..cfg.jobs {
        if cfg
            .max_duration
            .is_some_and(|limit| started.elapsed() >= limit)
        {
            break;
        }
        // Deterministic per-job draws (consumed in a fixed order).
        let tree = next_stream_tree(
            taxa,
            cfg.branch_mean,
            cfg.proposal_fraction,
            &mut last_tree,
            &mut rng,
        );
        let tenant = format!("tenant-{}", i % cfg.tenants.max(1));
        let high = rng.gen_range(0.0..1.0) < cfg.high_fraction;
        let cancel = rng.gen_range(0.0..1.0) < cfg.cancel_fraction;

        match cfg.mode {
            LoadMode::Closed { concurrency } => {
                while outstanding.len() >= concurrency.max(1) {
                    if let Some(p) = outstanding.pop_front() {
                        outcomes.push((p.ticket.wait(), p.tree, p.model));
                    }
                }
            }
            LoadMode::Open { qps } => {
                let now = Instant::now();
                if next_open_slot > now {
                    std::thread::sleep(next_open_slot - now);
                }
                let period = Duration::from_secs_f64(1.0 / qps.max(1e-3));
                next_open_slot += period;
            }
        }

        let mut spec = JobSpec::new(tenant, dataset, tree.clone(), model.clone())
            .with_idempotency_key(format!("lg-{}-{i}", cfg.seed));
        if high {
            spec = spec.with_priority(Priority::High);
        }
        if let Some(d) = cfg.deadline {
            spec = spec.with_deadline(d);
        }
        // Backpressure loop: exponential backoff with deterministic
        // jitter, floored at the service's retry-after hint. The
        // idempotency key makes every resubmission safe: even if an
        // admission raced a refusal, the retry dedups instead of
        // executing twice.
        let mut attempt = 0u32;
        let ticket = loop {
            match service.submit(spec.clone()) {
                Ok(t) => break t,
                Err(err) if err.is_retryable() && cfg.retry.allows(attempt) => {
                    if matches!(err, SubmitError::QueueFull { .. }) {
                        rejections_retried += 1;
                    } else {
                        sheds_retried += 1;
                    }
                    std::thread::sleep(cfg.retry.backoff(attempt, err.retry_after()));
                    attempt += 1;
                }
                Err(err) => return Err(err),
            }
        };
        submitted += 1;
        if cancel {
            ticket.cancel();
        }
        outstanding.push_back(Pending {
            ticket,
            tree,
            model: model.clone(),
        });
    }

    while let Some(p) = outstanding.pop_front() {
        outcomes.push((p.ticket.wait(), p.tree, p.model));
    }
    let wall_seconds = started.elapsed().as_secs_f64();

    // Verification pass: recompute completed jobs serially on the
    // scalar reference and demand bit-identity.
    let mut checked = 0usize;
    let mut bit_mismatches = 0usize;
    if cfg.check {
        if let Some(data) = data.as_ref() {
            let mut reference = ScalarBackend;
            for (outcome, tree, model) in &outcomes {
                let Some(lnl) = outcome.ln_likelihood() else {
                    continue;
                };
                let serial = TreeLikelihood::new(tree, data, model.clone())
                    .and_then(|mut eval| eval.log_likelihood(tree, &mut reference));
                checked += 1;
                match serial {
                    Ok(expected) if expected.to_bits() == lnl.to_bits() => {}
                    _ => bit_mismatches += 1,
                }
            }
        }
    }

    let mut completed = 0usize;
    let mut failed = 0usize;
    let mut cancelled = 0usize;
    let mut deadline_missed = 0usize;
    let mut wait_total = Duration::ZERO;
    let mut service_total = Duration::ZERO;
    let mut latencies_ms: Vec<f64> = Vec::new();
    for (outcome, _, _) in &outcomes {
        match outcome {
            JobOutcome::Completed { wait, service, .. } => {
                completed += 1;
                wait_total += *wait;
                service_total += *service;
                latencies_ms.push((*wait + *service).as_secs_f64() * 1e3);
            }
            JobOutcome::Failed { .. } => failed += 1,
            JobOutcome::Cancelled => cancelled += 1,
            JobOutcome::DeadlineMissed => deadline_missed += 1,
        }
    }
    latencies_ms.sort_by(|a, b| a.total_cmp(b));
    let percentile = |p: f64| -> f64 {
        if latencies_ms.is_empty() {
            return 0.0;
        }
        let idx = ((latencies_ms.len() - 1) as f64 * p).round() as usize;
        latencies_ms[idx.min(latencies_ms.len() - 1)]
    };

    Ok(LoadgenReport {
        submitted,
        completed,
        failed,
        cancelled,
        deadline_missed,
        rejections_retried,
        sheds_retried,
        lost: submitted.saturating_sub(outcomes.len()),
        checked,
        bit_mismatches,
        wall_seconds,
        jobs_per_second: if wall_seconds > 0.0 {
            outcomes.len() as f64 / wall_seconds
        } else {
            0.0
        },
        mean_wait_ms: if completed > 0 {
            wait_total.as_secs_f64() * 1e3 / completed as f64
        } else {
            0.0
        },
        mean_service_ms: if completed > 0 {
            service_total.as_secs_f64() * 1e3 / completed as f64
        } else {
            0.0
        },
        p50_latency_ms: percentile(0.50),
        p95_latency_ms: percentile(0.95),
        service: service.snapshot(),
    })
}

/// The `service` section of `BENCH_plf.json` schema v2: the same job
/// stream pushed through the service three ways.
#[derive(Debug, Clone, Serialize)]
pub struct ServiceBenchmark {
    /// Jobs per mode.
    pub jobs: usize,
    /// Dataset shape.
    pub taxa: usize,
    /// Dataset shape.
    pub patterns: usize,
    /// Name of the worker backend (one per worker).
    pub worker_backend: String,
    /// Worker threads in the batched service.
    pub workers: usize,
    /// Baseline: the same evaluations run directly on one backend,
    /// no service in between.
    pub direct_seconds: f64,
    /// Direct evaluations per second.
    pub direct_jobs_per_sec: f64,
    /// Through the service, one job outstanding at a time (each job
    /// pays the full batch-formation linger and dispatch round trip).
    pub serial_seconds: f64,
    /// Serial-submission jobs per second.
    pub serial_jobs_per_sec: f64,
    /// Through the service, all jobs submitted concurrently (linger
    /// and dispatch overhead amortize across each fused batch).
    pub batched_seconds: f64,
    /// Batched-submission jobs per second.
    pub batched_jobs_per_sec: f64,
    /// `batched_jobs_per_sec / serial_jobs_per_sec` — the batching
    /// payoff the ISSUE's ≥1.5× acceptance bar refers to.
    pub speedup_batched_over_serial: f64,
    /// Mean batch occupancy of the batched run, in `[0, 1]`.
    pub batch_occupancy: f64,
    /// Completed-result bit-mismatches vs. the serial scalar reference
    /// across both service runs — must be 0.
    pub bit_mismatches: usize,
    /// Service counter snapshot from the batched run.
    pub batched_service: ServiceSnapshot,
}

/// Fraction of MCMC-proposal-shaped jobs in the benchmark stream:
/// three of four jobs reuse the previous tree with one branch
/// rescaled, the MrBayes-shaped workload the CLV reuse cache serves.
const BENCH_PROPOSAL_FRACTION: f64 = 0.75;

/// Run the serial-vs-batched comparison: `jobs` evaluations of
/// `taxa × patterns` trees (an MCMC-shaped stream — see
/// [`BENCH_PROPOSAL_FRACTION`]), (a) directly on one backend, (b)
/// through the service submitting one at a time, (c) through the
/// service submitting all at once. The same seed drives all three job
/// streams, and every completed service result is checked bit-for-bit
/// against the serial scalar reference.
pub fn benchmark_batching(
    make_backend: &dyn Fn() -> Box<dyn PlfBackend>,
    workers: usize,
    taxa: usize,
    patterns: usize,
    jobs: usize,
    seed: u64,
) -> Result<ServiceBenchmark, String> {
    let ds = plf_seqgen::generate(DatasetSpec::new(taxa, patterns), seed);
    let model = plf_seqgen::default_model();
    let taxa_names = ds.data.taxa().to_vec();

    // (a) Direct: no service, one backend, same-shaped tree stream.
    let mut rng = StdRng::seed_from_u64(seed);
    let mut last_tree: Option<Tree> = None;
    let trees: Vec<Tree> = (0..jobs)
        .map(|_| {
            next_stream_tree(
                &taxa_names,
                0.1,
                BENCH_PROPOSAL_FRACTION,
                &mut last_tree,
                &mut rng,
            )
        })
        .collect();
    let mut direct_backend = make_backend();
    let direct_started = Instant::now();
    for tree in &trees {
        let mut eval = TreeLikelihood::new(tree, &ds.data, model.clone())
            .map_err(|e| format!("benchmark workspace: {e}"))?;
        eval.log_likelihood(tree, direct_backend.as_mut())
            .map_err(|e| format!("benchmark eval: {e}"))?;
    }
    let direct_seconds = direct_started.elapsed().as_secs_f64();

    let service_run = |concurrency: usize| -> Result<(f64, LoadgenReport), String> {
        let service = PlfService::new(
            ServiceConfig::default(),
            (0..workers.max(1)).map(|_| make_backend()).collect(),
        );
        let dataset = service.register_dataset(ds.data.clone());
        let cfg = LoadgenConfig {
            jobs,
            mode: LoadMode::Closed { concurrency },
            seed,
            proposal_fraction: BENCH_PROPOSAL_FRACTION,
            check: true,
            ..LoadgenConfig::default()
        };
        let report = run(&service, dataset, &taxa_names, &model, &cfg)
            .map_err(|e| format!("benchmark loadgen: {e}"))?;
        service.shutdown();
        Ok((report.wall_seconds, report))
    };

    // (b) Serial one-job-at-a-time submission.
    let (serial_seconds, serial_report) = service_run(1)?;
    // (c) Batched: everything outstanding at once.
    let (batched_seconds, batched_report) = service_run(jobs)?;

    let rate = |n: usize, secs: f64| if secs > 0.0 { n as f64 / secs } else { 0.0 };
    let serial_jobs_per_sec = rate(serial_report.completed, serial_seconds);
    let batched_jobs_per_sec = rate(batched_report.completed, batched_seconds);
    Ok(ServiceBenchmark {
        jobs,
        taxa,
        patterns,
        worker_backend: make_backend().name(),
        workers: workers.max(1),
        direct_seconds,
        direct_jobs_per_sec: rate(jobs, direct_seconds),
        serial_seconds,
        serial_jobs_per_sec,
        batched_seconds,
        batched_jobs_per_sec,
        speedup_batched_over_serial: if serial_jobs_per_sec > 0.0 {
            batched_jobs_per_sec / serial_jobs_per_sec
        } else {
            0.0
        },
        batch_occupancy: batched_report.service.batch_occupancy(),
        bit_mismatches: serial_report.bit_mismatches + batched_report.bit_mismatches,
        batched_service: batched_report.service,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::{PlfService, ServiceConfig};

    fn small_service() -> (PlfService, crate::job::DatasetId, Vec<String>, SiteModel) {
        let ds = plf_seqgen::generate(DatasetSpec::new(6, 48), 17);
        let model = plf_seqgen::default_model();
        let service = PlfService::new(
            ServiceConfig::default(),
            vec![
                Box::new(ScalarBackend) as Box<dyn PlfBackend>,
                Box::new(ScalarBackend) as Box<dyn PlfBackend>,
            ],
        );
        let taxa = ds.data.taxa().to_vec();
        let dataset = service.register_dataset(ds.data);
        (service, dataset, taxa, model)
    }

    #[test]
    fn closed_loop_completes_all_jobs_bit_identically() {
        let (service, dataset, taxa, model) = small_service();
        let cfg = LoadgenConfig {
            jobs: 24,
            mode: LoadMode::Closed { concurrency: 8 },
            tenants: 3,
            seed: 7,
            ..LoadgenConfig::default()
        };
        let report = run(&service, dataset, &taxa, &model, &cfg).expect("loadgen run");
        assert_eq!(report.submitted, 24);
        assert_eq!(report.completed, 24);
        assert_eq!(report.lost, 0);
        assert_eq!(report.checked, 24);
        assert_eq!(report.bit_mismatches, 0);
        assert_eq!(report.service.tenants.len(), 3);
        service.shutdown();
    }

    #[test]
    fn open_loop_paces_and_cancellations_resolve() {
        let (service, dataset, taxa, model) = small_service();
        let cfg = LoadgenConfig {
            jobs: 12,
            mode: LoadMode::Open { qps: 2000.0 },
            cancel_fraction: 0.5,
            seed: 21,
            ..LoadgenConfig::default()
        };
        let report = run(&service, dataset, &taxa, &model, &cfg).expect("loadgen run");
        assert_eq!(report.submitted, 12);
        assert_eq!(report.lost, 0);
        assert_eq!(
            report.completed + report.cancelled + report.failed + report.deadline_missed,
            12
        );
        assert_eq!(report.bit_mismatches, 0);
        service.shutdown();
    }

    #[test]
    fn same_seed_reproduces_the_job_stream() {
        // Two runs with one seed must draw identical trees; compare via
        // the reference log-likelihoods of the first completed job.
        let mut lnls = Vec::new();
        for _ in 0..2 {
            let (service, dataset, taxa, model) = small_service();
            let cfg = LoadgenConfig {
                jobs: 4,
                mode: LoadMode::Closed { concurrency: 1 },
                seed: 99,
                ..LoadgenConfig::default()
            };
            let report = run(&service, dataset, &taxa, &model, &cfg).expect("loadgen run");
            assert_eq!(report.completed, 4);
            lnls.push((
                report.service.wait_seconds > 0.0,
                report.completed,
                report.checked,
            ));
            service.shutdown();
        }
        assert_eq!(lnls[0].1, lnls[1].1);
        assert_eq!(lnls[0].2, lnls[1].2);
    }

    #[test]
    fn loadgen_report_serializes() {
        let (service, dataset, taxa, model) = small_service();
        let cfg = LoadgenConfig {
            jobs: 2,
            mode: LoadMode::Closed { concurrency: 2 },
            ..LoadgenConfig::default()
        };
        let report = run(&service, dataset, &taxa, &model, &cfg).expect("loadgen run");
        let json = serde_json::to_string(&report).expect("serialize");
        assert!(json.contains("\"bit_mismatches\""));
        assert!(json.contains("\"p95_latency_ms\""));
        service.shutdown();
    }

    #[test]
    fn proposal_stream_rescales_exactly_one_branch() {
        let taxa: Vec<String> = (0..6).map(|i| format!("t{i}")).collect();
        let mut rng = StdRng::seed_from_u64(11);
        let mut last = None;
        let first = next_stream_tree(&taxa, 0.1, 1.0, &mut last, &mut rng);
        let second = next_stream_tree(&taxa, 0.1, 1.0, &mut last, &mut rng);
        // Same topology, exactly one branch length changed — every
        // subtree outside the edited path keeps its fingerprint.
        let changed = first
            .branches()
            .iter()
            .filter(|&&id| {
                first.node(id).branch.to_bits() != second.node(id).branch.to_bits()
            })
            .count();
        assert_eq!(changed, 1);
        assert_eq!(first.n_nodes(), second.n_nodes());
    }

    #[test]
    fn zero_proposal_fraction_replays_the_pre_knob_stream() {
        // proposal_fraction == 0.0 must consume the exact RNG draw
        // sequence of the original generator (a bare
        // random_tree_for_taxa per job), so existing seeded streams
        // replay unchanged.
        let taxa: Vec<String> = (0..5).map(|i| format!("t{i}")).collect();
        let mut rng_knob = StdRng::seed_from_u64(5);
        let mut rng_orig = StdRng::seed_from_u64(5);
        let mut last = None;
        for _ in 0..4 {
            let a = next_stream_tree(&taxa, 0.1, 0.0, &mut last, &mut rng_knob);
            let b = random_tree_for_taxa(&taxa, 0.1, &mut rng_orig);
            assert_eq!(a.to_newick(), b.to_newick());
        }
    }
}

//! Bounded two-lane submission queue with admission control.
//!
//! **Backpressure contract.** `push` never blocks and the queue never
//! grows past its capacity: at capacity, submissions are rejected with
//! a `retry_after` hint proportional to the current backlog (depth ×
//! the configured per-job drain estimate, capped at one second).
//! Callers are expected to back off for the hinted duration and retry;
//! the deterministic load generator does exactly that.
//!
//! This file is in `plf-lint`'s L2 hot-path scope: no panicking calls.
//! Lock poisoning is absorbed with `unwrap_or_else(|p| p.into_inner())`
//! — counter/queue state stays consistent because every critical
//! section leaves the lanes structurally valid before it can panic.

use crate::job::{DatasetId, Job, Priority};
use plf_phylo::metrics::ServiceCounters;
use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::Duration;

/// Why a submission was not admitted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubmitError {
    /// The queue is at capacity; retry after the hinted backoff.
    QueueFull {
        /// Estimated time for enough backlog to drain.
        retry_after: Duration,
    },
    /// The service is shutting down and accepts no new work.
    Closed,
    /// The spec referenced a dataset handle never registered with this
    /// service instance.
    UnknownDataset(DatasetId),
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::QueueFull { retry_after } => write!(
                f,
                "queue full; retry after {:.1} ms",
                retry_after.as_secs_f64() * 1e3
            ),
            SubmitError::Closed => write!(f, "service is shut down"),
            SubmitError::UnknownDataset(id) => {
                write!(f, "dataset handle {} was never registered", id.0)
            }
        }
    }
}

impl std::error::Error for SubmitError {}

/// Result of a blocking pop. Jobs are boxed while queued — a `Job`
/// carries a whole tree plus model, and boxing keeps the queue's move
/// and rejection paths pointer-sized.
#[derive(Debug)]
pub(crate) enum PopResult {
    /// A job was available (high lane first).
    Job(Box<Job>),
    /// Timed out with the queue still open.
    Empty,
    /// The queue is closed and fully drained.
    Closed,
}

#[derive(Debug, Default)]
struct Lanes {
    high: VecDeque<Box<Job>>,
    normal: VecDeque<Box<Job>>,
    closed: bool,
}

impl Lanes {
    fn depth(&self) -> usize {
        self.high.len() + self.normal.len()
    }

    fn pop_front(&mut self) -> Option<Box<Job>> {
        self.high.pop_front().or_else(|| self.normal.pop_front())
    }
}

/// The bounded, priority-laned submission queue.
#[derive(Debug)]
pub(crate) struct BoundedQueue {
    state: Mutex<Lanes>,
    ready: Condvar,
    capacity: usize,
    drain_hint: Duration,
    counters: Arc<ServiceCounters>,
}

impl BoundedQueue {
    pub(crate) fn new(
        capacity: usize,
        drain_hint: Duration,
        counters: Arc<ServiceCounters>,
    ) -> BoundedQueue {
        BoundedQueue {
            state: Mutex::new(Lanes::default()),
            ready: Condvar::new(),
            capacity: capacity.max(1),
            drain_hint,
            counters,
        }
    }

    fn lock(&self) -> MutexGuard<'_, Lanes> {
        self.state.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Admission capacity (jobs).
    pub(crate) fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current backlog.
    pub(crate) fn depth(&self) -> usize {
        self.lock().depth()
    }

    /// Admit `job` or reject it without blocking. On rejection the job
    /// is handed back so the caller can surface or retry it.
    pub(crate) fn push(&self, job: Box<Job>) -> Result<(), (Box<Job>, SubmitError)> {
        let mut lanes = self.lock();
        if lanes.closed {
            return Err((job, SubmitError::Closed));
        }
        let depth = lanes.depth();
        if depth >= self.capacity {
            let backlog = u32::try_from(depth).unwrap_or(u32::MAX);
            let retry_after = self
                .drain_hint
                .saturating_mul(backlog)
                .min(Duration::from_secs(1))
                .max(Duration::from_micros(100));
            return Err((job, SubmitError::QueueFull { retry_after }));
        }
        match job.priority {
            Priority::High => lanes.high.push_back(job),
            Priority::Normal => lanes.normal.push_back(job),
        }
        drop(lanes);
        self.counters.record_enqueued();
        self.ready.notify_one();
        Ok(())
    }

    /// Block up to `timeout` for the next job (high lane first).
    pub(crate) fn pop_wait(&self, timeout: Duration) -> PopResult {
        let mut lanes = self.lock();
        loop {
            if let Some(job) = lanes.pop_front() {
                drop(lanes);
                self.counters.record_dequeued(1);
                return PopResult::Job(job);
            }
            if lanes.closed {
                return PopResult::Closed;
            }
            let (guard, result) = self
                .ready
                .wait_timeout(lanes, timeout)
                .unwrap_or_else(|p| p.into_inner());
            lanes = guard;
            if result.timed_out() && lanes.depth() == 0 {
                return if lanes.closed {
                    PopResult::Closed
                } else {
                    PopResult::Empty
                };
            }
        }
    }

    /// Drain up to `max` jobs without blocking, high lane first.
    pub(crate) fn drain(&self, max: usize) -> Vec<Job> {
        let mut lanes = self.lock();
        let take = max.min(lanes.depth());
        let mut out = Vec::with_capacity(take);
        for _ in 0..take {
            if let Some(job) = lanes.pop_front() {
                out.push(*job);
            }
        }
        drop(lanes);
        if !out.is_empty() {
            self.counters.record_dequeued(out.len() as u64);
        }
        out
    }

    /// Stop admitting; wake all waiters so drains can finish.
    pub(crate) fn close(&self) {
        self.lock().closed = true;
        self.ready.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::{JobCell, JobId, JobSpec};
    use plf_phylo::model::SiteModel;
    use std::sync::atomic::AtomicBool;
    use std::time::Instant;

    fn test_job(id: u64, priority: Priority) -> Box<Job> {
        let ds = plf_seqgen::generate(plf_seqgen::DatasetSpec::new(4, 8), 7);
        let spec = JobSpec::new("t", DatasetId(0), ds.tree, SiteModel::jc69())
            .with_priority(priority);
        let aln = ds.data;
        Box::new(Job {
            id: JobId(id),
            tenant: spec.tenant,
            priority: spec.priority,
            dataset: spec.dataset,
            data: Arc::new(aln),
            tree: spec.tree,
            model: spec.model,
            submitted_at: Instant::now(),
            deadline: None,
            cancelled: Arc::new(AtomicBool::new(false)),
            cell: JobCell::new(),
        })
    }

    fn queue(capacity: usize) -> BoundedQueue {
        BoundedQueue::new(
            capacity,
            Duration::from_micros(500),
            ServiceCounters::new(),
        )
    }

    #[test]
    fn rejects_job_k_plus_1_with_positive_retry_after() {
        let q = queue(3);
        for i in 0..3 {
            assert!(q.push(test_job(i, Priority::Normal)).is_ok());
        }
        let (_job, err) = q.push(test_job(3, Priority::Normal)).expect_err("full");
        match err {
            SubmitError::QueueFull { retry_after } => {
                assert!(retry_after > Duration::ZERO);
                assert!(retry_after <= Duration::from_secs(1));
            }
            other => panic!("expected QueueFull, got {other:?}"),
        }
        assert_eq!(q.depth(), 3);
    }

    #[test]
    fn high_lane_drains_before_normal() {
        let q = queue(8);
        q.push(test_job(0, Priority::Normal)).expect("push");
        q.push(test_job(1, Priority::High)).expect("push");
        q.push(test_job(2, Priority::Normal)).expect("push");
        let order: Vec<u64> = q.drain(8).into_iter().map(|j| j.id.0).collect();
        assert_eq!(order, vec![1, 0, 2]);
    }

    #[test]
    fn pop_wait_times_out_empty_and_sees_close() {
        let q = queue(2);
        assert!(matches!(
            q.pop_wait(Duration::from_millis(2)),
            PopResult::Empty
        ));
        q.push(test_job(0, Priority::Normal)).expect("push");
        q.close();
        // Closed queues still drain their backlog...
        assert!(matches!(
            q.pop_wait(Duration::from_millis(2)),
            PopResult::Job(_)
        ));
        // ...then report Closed, and reject new work.
        assert!(matches!(
            q.pop_wait(Duration::from_millis(2)),
            PopResult::Closed
        ));
        let (_job, err) = q.push(test_job(1, Priority::Normal)).expect_err("closed");
        assert_eq!(err, SubmitError::Closed);
    }

    #[test]
    fn counters_track_depth() {
        let counters = ServiceCounters::new();
        let q = BoundedQueue::new(4, Duration::from_micros(500), Arc::clone(&counters));
        q.push(test_job(0, Priority::Normal)).expect("push");
        q.push(test_job(1, Priority::Normal)).expect("push");
        assert_eq!(counters.queue_depth(), 2);
        let _ = q.drain(1);
        assert_eq!(counters.queue_depth(), 1);
        assert_eq!(counters.snapshot().queue_depth_peak, 2);
    }
}

//! Bounded two-lane submission queue with adaptive admission control.
//!
//! **Backpressure contract.** `push` never blocks and the queue never
//! grows past its capacity. Two admission gates apply, in order:
//!
//! 1. **Hard cap** — at capacity, submissions are rejected with
//!    [`SubmitError::QueueFull`] and a retry hint from the
//!    [`AdmissionController`]'s live drain estimate.
//! 2. **Adaptive shed** — below capacity, a submission whose estimated
//!    queue delay already exceeds the shed policy's target is refused
//!    with [`SubmitError::Overloaded`] rather than queued into a
//!    near-certain deadline miss.
//!
//! Both hints are *lane-aware*: a high-priority submission only waits
//! out the high-lane backlog (the high lane drains first), so its
//! `jobs_ahead` counts only that lane, while a normal-priority
//! submission counts the total depth. Callers back off for the hinted
//! duration and retry; the deterministic load generator does exactly
//! that.
//!
//! **In-queue deadline expiry.** A job whose deadline passes while it
//! is still queued resolves as `DeadlineMissed` at pop time — it is
//! never handed to the scheduler, so an expired job cannot consume a
//! batch slot nor be silently dispatched.
//!
//! This file is in `plf-lint`'s L2 hot-path scope: no panicking calls.
//! Lock poisoning is absorbed with `unwrap_or_else(|p| p.into_inner())`
//! — counter/queue state stays consistent because every critical
//! section leaves the lanes structurally valid before it can panic.

use crate::health::AdmissionController;
use crate::job::{DatasetId, Job, JobOutcome, Priority};
use plf_phylo::metrics::ServiceCounters;
use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

/// Why a submission was not admitted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubmitError {
    /// The queue is at capacity; retry after the hinted backoff.
    QueueFull {
        /// Estimated time for enough backlog to drain.
        retry_after: Duration,
        /// Lane-aware backlog the submission would have waited behind
        /// (high-priority submissions count only the high lane).
        jobs_ahead: usize,
    },
    /// The queue has room, but the admission controller estimates the
    /// job would wait longer than the shed policy's target delay;
    /// retry after the hinted backoff.
    Overloaded {
        /// Estimated time for enough backlog to drain.
        retry_after: Duration,
        /// Lane-aware backlog the submission would have waited behind
        /// (high-priority submissions count only the high lane).
        jobs_ahead: usize,
    },
    /// The service is shutting down and accepts no new work.
    Closed,
    /// The spec referenced a dataset handle never registered with this
    /// service instance.
    UnknownDataset(DatasetId),
    /// The write-ahead journal could not make the admission durable;
    /// the job was cancelled rather than acknowledged without its
    /// durability guarantee.
    Journal {
        /// Description of the underlying I/O failure.
        detail: String,
    },
}

impl SubmitError {
    /// The backoff hint, for rejections that carry one.
    pub fn retry_after(&self) -> Option<Duration> {
        match self {
            SubmitError::QueueFull { retry_after, .. }
            | SubmitError::Overloaded { retry_after, .. } => Some(*retry_after),
            SubmitError::Closed
            | SubmitError::UnknownDataset(_)
            | SubmitError::Journal { .. } => None,
        }
    }

    /// The lane-aware backlog hint, for rejections that carry one: how
    /// many jobs the submission would have waited behind. Remote
    /// protocol frames forward this verbatim so a network client sees
    /// exactly what an in-process caller sees.
    pub fn jobs_ahead(&self) -> Option<usize> {
        match self {
            SubmitError::QueueFull { jobs_ahead, .. }
            | SubmitError::Overloaded { jobs_ahead, .. } => Some(*jobs_ahead),
            SubmitError::Closed
            | SubmitError::UnknownDataset(_)
            | SubmitError::Journal { .. } => None,
        }
    }

    /// Whether retrying the submission later can succeed (backpressure
    /// rejections are transient; the rest are terminal).
    pub fn is_retryable(&self) -> bool {
        matches!(
            self,
            SubmitError::QueueFull { .. } | SubmitError::Overloaded { .. }
        )
    }
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::QueueFull { retry_after, jobs_ahead } => write!(
                f,
                "queue full ({jobs_ahead} ahead); retry after {:.1} ms",
                retry_after.as_secs_f64() * 1e3
            ),
            SubmitError::Overloaded { retry_after, jobs_ahead } => write!(
                f,
                "service overloaded (shed, {jobs_ahead} ahead); retry after {:.1} ms",
                retry_after.as_secs_f64() * 1e3
            ),
            SubmitError::Closed => write!(f, "service is shut down"),
            SubmitError::UnknownDataset(id) => {
                write!(f, "dataset handle {} was never registered", id.0)
            }
            SubmitError::Journal { detail } => {
                write!(f, "journal append failed: {detail}")
            }
        }
    }
}

impl std::error::Error for SubmitError {}

/// Client-side resubmission policy: exponential backoff with
/// deterministic jitter, floored by the service's `retry_after` hint.
/// Pair it with [`crate::JobSpec::with_idempotency_key`] — a keyed
/// resubmission dedups against the first admission, so retrying after
/// an ambiguous failure never executes a job twice.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Backoff before the first retry; doubles on each subsequent one.
    pub base: Duration,
    /// Upper bound on any single backoff.
    pub cap: Duration,
    /// Submission attempts (first try included) before giving up.
    pub max_attempts: u32,
    /// Fraction of each backoff randomized away, in `[0, 1]`: the
    /// sleep lands in `[backoff × (1 − jitter), backoff]`, decorrelating
    /// retry storms across clients.
    pub jitter: f64,
    /// Seed for the deterministic jitter stream.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            base: Duration::from_micros(500),
            cap: Duration::from_millis(100),
            max_attempts: 16,
            jitter: 0.5,
            seed: 2009,
        }
    }
}

/// SplitMix64 step: the jitter stream's stateless PRNG.
fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl RetryPolicy {
    /// The backoff before retry number `attempt` (0-based: the sleep
    /// after the first rejection), never below the service's
    /// `retry_after` hint. Deterministic in `(seed, attempt)`.
    pub fn backoff(&self, attempt: u32, hint: Option<Duration>) -> Duration {
        // Integer nanos throughout: float → Duration conversions can
        // panic on NaN/negative and this is called on the submit path.
        let base = self.base.as_nanos().min(u128::from(u64::MAX)) as u64;
        let cap = self.cap.as_nanos().min(u128::from(u64::MAX)) as u64;
        let doubled = base.saturating_mul(1u64 << attempt.min(32));
        let mut nanos = doubled.min(cap);
        let jitter = self.jitter.clamp(0.0, 1.0);
        if jitter > 0.0 && nanos > 0 {
            // 53-bit uniform fraction in [0, 1).
            let frac = (splitmix64(self.seed.wrapping_add(u64::from(attempt))) >> 11) as f64
                / (1u64 << 53) as f64;
            let cut = ((nanos as f64) * jitter * frac) as u64;
            nanos = nanos.saturating_sub(cut);
        }
        let floor = hint.map_or(0, |h| h.as_nanos().min(u128::from(u64::MAX)) as u64);
        Duration::from_nanos(nanos.max(floor))
    }

    /// Whether retry number `attempt` (0-based) is still within budget.
    pub fn allows(&self, attempt: u32) -> bool {
        attempt + 1 < self.max_attempts
    }
}

/// Result of a blocking pop. Jobs are boxed while queued — a `Job`
/// carries a whole tree plus model, and boxing keeps the queue's move
/// and rejection paths pointer-sized.
#[derive(Debug)]
pub(crate) enum PopResult {
    /// A job was available (high lane first).
    Job(Box<Job>),
    /// Timed out with the queue still open.
    Empty,
    /// The queue is closed and fully drained.
    Closed,
}

#[derive(Debug, Default)]
struct Lanes {
    high: VecDeque<Box<Job>>,
    normal: VecDeque<Box<Job>>,
    closed: bool,
}

impl Lanes {
    fn depth(&self) -> usize {
        self.high.len() + self.normal.len()
    }

    fn pop_front(&mut self) -> Option<Box<Job>> {
        self.high.pop_front().or_else(|| self.normal.pop_front())
    }
}

/// The bounded, priority-laned submission queue.
#[derive(Debug)]
pub(crate) struct BoundedQueue {
    state: Mutex<Lanes>,
    ready: Condvar,
    capacity: usize,
    controller: Arc<AdmissionController>,
    counters: Arc<ServiceCounters>,
}

impl BoundedQueue {
    pub(crate) fn new(
        capacity: usize,
        controller: Arc<AdmissionController>,
        counters: Arc<ServiceCounters>,
    ) -> BoundedQueue {
        BoundedQueue {
            state: Mutex::new(Lanes::default()),
            ready: Condvar::new(),
            capacity: capacity.max(1),
            controller,
            counters,
        }
    }

    fn lock(&self) -> MutexGuard<'_, Lanes> {
        self.state.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Admission capacity (jobs).
    pub(crate) fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current backlog.
    pub(crate) fn depth(&self) -> usize {
        self.lock().depth()
    }

    /// Admit `job` or reject it without blocking. On rejection the job
    /// is handed back so the caller can surface or retry it.
    pub(crate) fn push(&self, job: Box<Job>) -> Result<(), (Box<Job>, SubmitError)> {
        let mut lanes = self.lock();
        if lanes.closed {
            return Err((job, SubmitError::Closed));
        }
        // Lane-aware backlog: the high lane drains first, so a High
        // submission only waits out the high lane; a Normal submission
        // waits out everything queued ahead of it.
        let jobs_ahead = match job.priority {
            Priority::High => lanes.high.len(),
            Priority::Normal => lanes.depth(),
        };
        if lanes.depth() >= self.capacity {
            let retry_after = self.controller.retry_hint(jobs_ahead);
            return Err((job, SubmitError::QueueFull { retry_after, jobs_ahead }));
        }
        if let Some(retry_after) = self.controller.shed_decision(jobs_ahead) {
            return Err((job, SubmitError::Overloaded { retry_after, jobs_ahead }));
        }
        match job.priority {
            Priority::High => lanes.high.push_back(job),
            Priority::Normal => lanes.normal.push_back(job),
        }
        drop(lanes);
        self.counters.record_enqueued();
        self.ready.notify_one();
        Ok(())
    }

    /// Pop the next job that is still live, moving any job whose
    /// deadline expired while it sat in the queue into `expired`.
    /// Must be called with the lanes locked; dequeue accounting for
    /// expired jobs happens here, but the jobs are *not* resolved —
    /// publishing writes (and fsyncs) the journal, which must never
    /// happen under the queue lock. Callers resolve via
    /// [`BoundedQueue::resolve_expired`] after releasing the guard.
    fn pop_live(&self, lanes: &mut Lanes, expired: &mut Vec<Job>) -> Option<Box<Job>> {
        let now = Instant::now();
        let mut n_expired = 0u64;
        let job = loop {
            match lanes.pop_front() {
                None => break None,
                Some(job) => {
                    if job.past_deadline(now) && !job.is_cancelled() {
                        n_expired += 1;
                        expired.push(*job);
                        continue;
                    }
                    break Some(job);
                }
            }
        };
        if n_expired > 0 {
            self.counters.record_dequeued(n_expired);
        }
        job
    }

    /// Resolve jobs that expired in the queue as `DeadlineMissed`.
    /// Called with the lanes guard released: publishing journals the
    /// resolution, and the fsync must not stall submitters or other
    /// poppers.
    fn resolve_expired(&self, expired: Vec<Job>) {
        for job in expired {
            if job.try_claim() {
                self.counters.record_deadline_missed(&job.tenant);
                job.publish(JobOutcome::DeadlineMissed);
            }
        }
    }

    /// Block up to `timeout` for the next live job (high lane first).
    pub(crate) fn pop_wait(&self, timeout: Duration) -> PopResult {
        let mut lanes = self.lock();
        loop {
            let mut expired = Vec::new();
            let popped = self.pop_live(&mut lanes, &mut expired);
            if let Some(job) = popped {
                drop(lanes);
                self.resolve_expired(expired);
                self.counters.record_dequeued(1);
                return PopResult::Job(job);
            }
            if !expired.is_empty() {
                // Everything popped had expired: resolve outside the
                // lock, then re-acquire and re-check for new arrivals.
                drop(lanes);
                self.resolve_expired(expired);
                lanes = self.lock();
                continue;
            }
            if lanes.closed {
                return PopResult::Closed;
            }
            let (guard, result) = self
                .ready
                .wait_timeout(lanes, timeout)
                .unwrap_or_else(|p| p.into_inner());
            lanes = guard;
            if result.timed_out() && lanes.depth() == 0 {
                return if lanes.closed {
                    PopResult::Closed
                } else {
                    PopResult::Empty
                };
            }
        }
    }

    /// Drain up to `max` live jobs without blocking, high lane first.
    /// Jobs that expired in the queue resolve as `DeadlineMissed` and
    /// do not count against `max`.
    pub(crate) fn drain(&self, max: usize) -> Vec<Job> {
        let mut lanes = self.lock();
        let mut expired = Vec::new();
        let mut out = Vec::with_capacity(max.min(lanes.depth()));
        while out.len() < max {
            match self.pop_live(&mut lanes, &mut expired) {
                Some(job) => out.push(*job),
                None => break,
            }
        }
        drop(lanes);
        self.resolve_expired(expired);
        if !out.is_empty() {
            self.counters.record_dequeued(out.len() as u64);
        }
        out
    }

    /// Stop admitting; wake all waiters so drains can finish.
    pub(crate) fn close(&self) {
        self.lock().closed = true;
        self.ready.notify_all();
    }

    /// Whether [`close`](Self::close) has been called. The scheduler
    /// uses this to skip the batching linger during drain: no new
    /// batchmate can ever arrive once admission stops.
    pub(crate) fn is_closed(&self) -> bool {
        self.lock().closed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::health::ShedPolicy;
    use crate::job::{JobCell, JobId, JobSpec};
    use plf_phylo::model::SiteModel;
    use std::sync::atomic::AtomicBool;
    use std::thread;

    fn job_from_spec(id: u64, spec: JobSpec) -> Box<Job> {
        let ds = plf_seqgen::generate(plf_seqgen::DatasetSpec::new(4, 8), 7);
        let now = Instant::now();
        Box::new(Job {
            id: JobId(id),
            tenant: spec.tenant,
            priority: spec.priority,
            dataset: spec.dataset,
            data: Arc::new(ds.data),
            tree: spec.tree,
            model: spec.model,
            submitted_at: now,
            deadline: spec.deadline.map(|d| now + d),
            cancelled: Arc::new(AtomicBool::new(false)),
            cell: JobCell::new(),
            resolved: AtomicBool::new(false),
            redirected: AtomicBool::new(false),
            journal: None,
        })
    }

    fn test_job(id: u64, priority: Priority) -> Box<Job> {
        let ds = plf_seqgen::generate(plf_seqgen::DatasetSpec::new(4, 8), 7);
        let spec = JobSpec::new("t", DatasetId(0), ds.tree, SiteModel::jc69())
            .with_priority(priority);
        job_from_spec(id, spec)
    }

    fn controller(per_job: Duration) -> Arc<AdmissionController> {
        AdmissionController::new(per_job, ShedPolicy::default())
    }

    fn queue(capacity: usize) -> BoundedQueue {
        BoundedQueue::new(
            capacity,
            controller(Duration::from_micros(500)),
            ServiceCounters::new(),
        )
    }

    #[test]
    fn rejects_job_k_plus_1_with_positive_retry_after() {
        let q = queue(3);
        for i in 0..3 {
            assert!(q.push(test_job(i, Priority::Normal)).is_ok());
        }
        let (_job, err) = q.push(test_job(3, Priority::Normal)).expect_err("full");
        match err {
            SubmitError::QueueFull { retry_after, jobs_ahead } => {
                assert!(retry_after > Duration::ZERO);
                assert!(retry_after <= Duration::from_secs(1));
                assert_eq!(jobs_ahead, 3, "three queued jobs ahead of the reject");
            }
            other => panic!("expected QueueFull, got {other:?}"),
        }
        assert_eq!(q.depth(), 3);
    }

    #[test]
    fn high_lane_drains_before_normal() {
        let q = queue(8);
        q.push(test_job(0, Priority::Normal)).expect("push");
        q.push(test_job(1, Priority::High)).expect("push");
        q.push(test_job(2, Priority::Normal)).expect("push");
        let order: Vec<u64> = q.drain(8).into_iter().map(|j| j.id.0).collect();
        assert_eq!(order, vec![1, 0, 2]);
    }

    #[test]
    fn pop_wait_times_out_empty_and_sees_close() {
        let q = queue(2);
        assert!(matches!(
            q.pop_wait(Duration::from_millis(2)),
            PopResult::Empty
        ));
        q.push(test_job(0, Priority::Normal)).expect("push");
        q.close();
        // Closed queues still drain their backlog...
        assert!(matches!(
            q.pop_wait(Duration::from_millis(2)),
            PopResult::Job(_)
        ));
        // ...then report Closed, and reject new work.
        assert!(matches!(
            q.pop_wait(Duration::from_millis(2)),
            PopResult::Closed
        ));
        let (_job, err) = q.push(test_job(1, Priority::Normal)).expect_err("closed");
        assert_eq!(err, SubmitError::Closed);
    }

    #[test]
    fn counters_track_depth() {
        let counters = ServiceCounters::new();
        let q = BoundedQueue::new(
            4,
            controller(Duration::from_micros(500)),
            Arc::clone(&counters),
        );
        q.push(test_job(0, Priority::Normal)).expect("push");
        q.push(test_job(1, Priority::Normal)).expect("push");
        assert_eq!(counters.queue_depth(), 2);
        let _ = q.drain(1);
        assert_eq!(counters.queue_depth(), 1);
        assert_eq!(counters.snapshot().queue_depth_peak, 2);
    }

    #[test]
    fn sheds_below_capacity_when_estimated_delay_exceeds_target() {
        // 200 ms per job, target 500 ms: the 4th Normal submission sees
        // 3 jobs ahead → 600 ms estimate → shed, though capacity is 64.
        let c = AdmissionController::new(
            Duration::from_millis(200),
            ShedPolicy {
                target_delay: Duration::from_millis(500),
                alpha: 0.2,
            },
        );
        let q = BoundedQueue::new(64, c, ServiceCounters::new());
        for i in 0..3 {
            assert!(q.push(test_job(i, Priority::Normal)).is_ok());
        }
        let (_job, err) = q.push(test_job(3, Priority::Normal)).expect_err("shed");
        match err {
            SubmitError::Overloaded { retry_after, jobs_ahead } => {
                assert!(retry_after > Duration::ZERO);
                assert!(retry_after <= Duration::from_secs(1));
                assert_eq!(jobs_ahead, 3, "shed decision saw the whole backlog");
            }
            other => panic!("expected Overloaded, got {other:?}"),
        }
        assert_eq!(q.depth(), 3, "shed job was not queued");
    }

    #[test]
    fn retry_hints_are_lane_aware() {
        // Deep normal backlog, empty high lane, at capacity. The high
        // submission's hint must reflect only the (empty) high lane —
        // i.e. the clamp floor — while the normal submission's hint
        // reflects the whole backlog.
        let per_job = Duration::from_millis(10);
        let c = AdmissionController::new(per_job, ShedPolicy {
            target_delay: Duration::from_secs(60), // shedding off
            alpha: 0.2,
        });
        let q = BoundedQueue::new(8, c, ServiceCounters::new());
        for i in 0..8 {
            assert!(q.push(test_job(i, Priority::Normal)).is_ok());
        }
        let (_j, high_err) = q.push(test_job(100, Priority::High)).expect_err("full");
        let (_j, normal_err) = q.push(test_job(101, Priority::Normal)).expect_err("full");
        let high_hint = high_err.retry_after().expect("hint");
        let normal_hint = normal_err.retry_after().expect("hint");
        assert_eq!(
            high_hint,
            Duration::from_millis(10),
            "high lane empty: one-job floor, not the normal backlog"
        );
        assert_eq!(normal_hint, Duration::from_millis(80), "8 jobs ahead");
        assert!(high_hint < normal_hint);
    }

    #[test]
    fn close_wakes_all_blocked_waiters() {
        let q = Arc::new(queue(4));
        let waiters: Vec<_> = (0..4)
            .map(|_| {
                let q = Arc::clone(&q);
                thread::spawn(move || q.pop_wait(Duration::from_secs(30)))
            })
            .collect();
        // Give the waiters time to block.
        thread::sleep(Duration::from_millis(20));
        let t0 = Instant::now();
        q.close();
        for w in waiters {
            let result = w.join().expect("waiter thread");
            assert!(matches!(result, PopResult::Closed));
        }
        assert!(
            t0.elapsed() < Duration::from_secs(5),
            "close must wake every blocked waiter promptly"
        );
    }

    #[test]
    fn queued_job_past_deadline_resolves_missed_not_dispatched() {
        let q = queue(4);
        let ds = plf_seqgen::generate(plf_seqgen::DatasetSpec::new(4, 8), 7);
        let spec = JobSpec::new("t", DatasetId(0), ds.tree, SiteModel::jc69())
            .with_deadline(Duration::from_millis(1));
        let expired = job_from_spec(0, spec);
        let cell = Arc::clone(&expired.cell);
        q.push(expired).expect("push");
        q.push(test_job(1, Priority::Normal)).expect("push");
        thread::sleep(Duration::from_millis(5));
        // The expired job must not come out of the queue; the live one
        // must.
        let drained = q.drain(8);
        assert_eq!(drained.len(), 1);
        assert_eq!(drained[0].id, JobId(1));
        assert_eq!(cell.try_get(), Some(JobOutcome::DeadlineMissed));
        assert_eq!(q.depth(), 0, "expired job left the depth gauge");
    }

    #[test]
    fn retry_policy_backoff_doubles_caps_and_honors_hints() {
        let p = RetryPolicy {
            base: Duration::from_millis(1),
            cap: Duration::from_millis(8),
            max_attempts: 4,
            jitter: 0.0,
            seed: 1,
        };
        assert_eq!(p.backoff(0, None), Duration::from_millis(1));
        assert_eq!(p.backoff(1, None), Duration::from_millis(2));
        assert_eq!(p.backoff(2, None), Duration::from_millis(4));
        assert_eq!(p.backoff(3, None), Duration::from_millis(8));
        assert_eq!(p.backoff(10, None), Duration::from_millis(8), "capped");
        // The service hint is a floor, never shortened.
        assert_eq!(
            p.backoff(0, Some(Duration::from_millis(50))),
            Duration::from_millis(50)
        );
        assert!(p.allows(0) && p.allows(2) && !p.allows(3));
    }

    #[test]
    fn retry_policy_jitter_is_deterministic_and_bounded() {
        let p = RetryPolicy {
            base: Duration::from_millis(4),
            cap: Duration::from_secs(1),
            max_attempts: 8,
            jitter: 0.5,
            seed: 42,
        };
        for attempt in 0..6 {
            let a = p.backoff(attempt, None);
            let b = p.backoff(attempt, None);
            assert_eq!(a, b, "same (seed, attempt) → same backoff");
            let full = Duration::from_millis(4 << attempt.min(8)).min(Duration::from_secs(1));
            assert!(a <= full, "jitter only shortens");
            assert!(a >= full / 2, "jitter bounded by the jitter fraction");
        }
        let other = RetryPolicy { seed: 43, ..p.clone() };
        assert_ne!(
            (0..6).map(|i| p.backoff(i, None)).collect::<Vec<_>>(),
            (0..6).map(|i| other.backoff(i, None)).collect::<Vec<_>>(),
            "different seeds decorrelate"
        );
    }

    #[test]
    fn cancel_after_drain_is_a_no_op() {
        let q = queue(4);
        let job = test_job(0, Priority::Normal);
        let cancelled = Arc::clone(&job.cancelled);
        q.push(job).expect("push");
        let drained = q.drain(1);
        assert_eq!(drained.len(), 1);
        let job = &drained[0];
        // The job was already handed to the caller; a late cancel flag
        // flips the bit but cannot claw the job back out of the drain.
        cancelled.store(true, std::sync::atomic::Ordering::Relaxed);
        assert_eq!(q.depth(), 0);
        // Resolving the drained job still works and wins the cell.
        assert!(job.finish_once(JobOutcome::Completed {
            ln_likelihood: -1.0,
            wait: Duration::ZERO,
            service: Duration::ZERO,
            backend: "test".into(),
        }));
        assert!(job.cell.try_get().is_some_and(|o| o.is_completed()));
    }
}

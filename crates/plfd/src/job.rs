//! The job model: what a caller submits, what the service hands back,
//! and the internal queued representation the scheduler batches.
//!
//! A *job* is one likelihood evaluation request — a tree plus a site
//! model against a pre-registered alignment. The caller receives a
//! [`JobTicket`] immediately on admission and later collects exactly
//! one terminal [`JobOutcome`]; the service guarantees every admitted
//! job reaches a terminal state (no silent drops), even across
//! shutdown.

use plf_phylo::alignment::PatternAlignment;
use plf_phylo::model::SiteModel;
use plf_phylo::tree::Tree;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Opaque handle to an alignment registered with the service; jobs
/// reference datasets by handle so the (potentially large) pattern data
/// is shared rather than carried per request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DatasetId(pub(crate) u64);

/// Unique job identifier within one service instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct JobId(pub u64);

impl std::fmt::Display for JobId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "job-{}", self.0)
    }
}

/// Scheduling lane: the queue drains every `High` job before any
/// `Normal` job of the same age.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Priority {
    /// Latency-sensitive lane, drained first.
    High,
    /// Default throughput lane.
    #[default]
    Normal,
}

impl Priority {
    /// Parse a CLI/protocol label.
    pub fn parse(s: &str) -> Option<Priority> {
        match s {
            "high" => Some(Priority::High),
            "normal" => Some(Priority::Normal),
            _ => None,
        }
    }
}

/// One evaluation request as submitted by a caller.
#[derive(Debug, Clone)]
pub struct JobSpec {
    /// Accounting principal; drives the per-tenant metrics breakdown.
    pub tenant: String,
    /// Scheduling lane.
    pub priority: Priority,
    /// Which registered alignment to evaluate against.
    pub dataset: DatasetId,
    /// The tree to score (leaf names must match the alignment's taxa).
    pub tree: Tree,
    /// Site model (rate count is part of the batch-compatibility key).
    pub model: SiteModel,
    /// Relative deadline from submission. A job whose evaluation has
    /// not *started* by its deadline resolves as
    /// [`JobOutcome::DeadlineMissed`]; a started job always runs to its
    /// natural outcome.
    pub deadline: Option<Duration>,
    /// Caller-chosen idempotency key. On a journaled service, a second
    /// submission under the same key returns the first submission's
    /// ticket (or its journaled outcome after a restart) instead of
    /// executing again; keyed resubmission after a crash or a
    /// [`crate::SubmitError`] backoff is therefore always safe.
    pub idempotency_key: Option<String>,
}

impl JobSpec {
    /// A normal-priority spec with no deadline.
    pub fn new(
        tenant: impl Into<String>,
        dataset: DatasetId,
        tree: Tree,
        model: SiteModel,
    ) -> JobSpec {
        JobSpec {
            tenant: tenant.into(),
            priority: Priority::Normal,
            dataset,
            tree,
            model,
            deadline: None,
            idempotency_key: None,
        }
    }

    /// Set the scheduling lane.
    pub fn with_priority(mut self, priority: Priority) -> JobSpec {
        self.priority = priority;
        self
    }

    /// Set a relative deadline.
    pub fn with_deadline(mut self, deadline: Duration) -> JobSpec {
        self.deadline = Some(deadline);
        self
    }

    /// Set the idempotency key for dedup across retries and restarts.
    pub fn with_idempotency_key(mut self, key: impl Into<String>) -> JobSpec {
        self.idempotency_key = Some(key.into());
        self
    }
}

/// Terminal state of one job.
#[derive(Debug, Clone, PartialEq)]
pub enum JobOutcome {
    /// Evaluation finished.
    Completed {
        /// The tree log-likelihood, bit-identical to a serial
        /// single-backend evaluation of the same job.
        ln_likelihood: f64,
        /// Time spent queued + batched before evaluation started.
        wait: Duration,
        /// Time spent under evaluation.
        service: Duration,
        /// Name of the backend that evaluated the job.
        backend: String,
    },
    /// The caller cancelled before evaluation started.
    Cancelled,
    /// The deadline passed before evaluation started.
    DeadlineMissed,
    /// Evaluation failed after the resilience layer exhausted retries
    /// and fallbacks.
    Failed {
        /// Human-readable failure description.
        error: String,
    },
}

impl JobOutcome {
    /// The log-likelihood, if the job completed.
    pub fn ln_likelihood(&self) -> Option<f64> {
        match self {
            JobOutcome::Completed { ln_likelihood, .. } => Some(*ln_likelihood),
            _ => None,
        }
    }

    /// Whether the job completed with a result.
    pub fn is_completed(&self) -> bool {
        matches!(self, JobOutcome::Completed { .. })
    }
}

/// One-shot completion cell shared between a [`JobTicket`] and the
/// dispatcher; the first writer wins and waiters are woken.
#[derive(Debug, Default)]
pub(crate) struct JobCell {
    slot: Mutex<Option<JobOutcome>>,
    done: Condvar,
}

impl JobCell {
    pub(crate) fn new() -> Arc<JobCell> {
        Arc::new(JobCell::default())
    }

    /// Publish the outcome; later writers are ignored (a cancel racing
    /// a completion keeps whichever resolved first).
    pub(crate) fn set(&self, outcome: JobOutcome) {
        let mut slot = self.slot.lock().unwrap_or_else(|p| p.into_inner());
        if slot.is_none() {
            *slot = Some(outcome);
            self.done.notify_all();
        }
    }

    /// Block until the outcome is published.
    pub(crate) fn wait(&self) -> JobOutcome {
        let mut slot = self.slot.lock().unwrap_or_else(|p| p.into_inner());
        loop {
            if let Some(outcome) = slot.as_ref() {
                return outcome.clone();
            }
            slot = self.done.wait(slot).unwrap_or_else(|p| p.into_inner());
        }
    }

    /// Block up to `timeout`; `None` if the job is still unresolved.
    pub(crate) fn wait_timeout(&self, timeout: Duration) -> Option<JobOutcome> {
        let deadline = Instant::now() + timeout;
        let mut slot = self.slot.lock().unwrap_or_else(|p| p.into_inner());
        loop {
            if let Some(outcome) = slot.as_ref() {
                return Some(outcome.clone());
            }
            let now = Instant::now();
            if now >= deadline {
                return None;
            }
            let (guard, _timed_out) = self
                .done
                .wait_timeout(slot, deadline - now)
                .unwrap_or_else(|p| p.into_inner());
            slot = guard;
        }
    }

    /// Non-blocking peek.
    pub(crate) fn try_get(&self) -> Option<JobOutcome> {
        self.slot
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .clone()
    }
}

/// The caller's handle to one admitted job: poll or block for the
/// outcome, or request cancellation.
#[derive(Debug, Clone)]
pub struct JobTicket {
    id: JobId,
    tenant: String,
    cancelled: Arc<AtomicBool>,
    cell: Arc<JobCell>,
}

impl JobTicket {
    pub(crate) fn new(
        id: JobId,
        tenant: String,
        cancelled: Arc<AtomicBool>,
        cell: Arc<JobCell>,
    ) -> JobTicket {
        JobTicket {
            id,
            tenant,
            cancelled,
            cell,
        }
    }

    /// The job's service-wide identifier.
    pub fn id(&self) -> JobId {
        self.id
    }

    /// The tenant the job was submitted under.
    pub fn tenant(&self) -> &str {
        &self.tenant
    }

    /// Request cancellation. Best-effort: a job whose evaluation has
    /// already started still completes; one still queued or batched
    /// resolves as [`JobOutcome::Cancelled`].
    pub fn cancel(&self) {
        self.cancelled.store(true, Ordering::Relaxed);
    }

    /// Block until the job reaches a terminal state.
    pub fn wait(&self) -> JobOutcome {
        self.cell.wait()
    }

    /// Block up to `timeout`; `None` if still unresolved.
    pub fn wait_timeout(&self, timeout: Duration) -> Option<JobOutcome> {
        self.cell.wait_timeout(timeout)
    }

    /// Non-blocking poll.
    pub fn try_wait(&self) -> Option<JobOutcome> {
        self.cell.try_get()
    }
}

/// Batch-compatibility key: jobs fuse into one batch only when they
/// share the alignment (same pattern data, taxa, and dimensions) and
/// the model rate count (same CLV stride, hence the same device unit
/// geometry).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) struct BatchKey {
    pub dataset: DatasetId,
    pub n_rates: usize,
}

/// The internal, queued representation of an admitted job.
#[derive(Debug)]
pub(crate) struct Job {
    pub id: JobId,
    pub tenant: String,
    pub priority: Priority,
    pub dataset: DatasetId,
    pub data: Arc<PatternAlignment>,
    pub tree: Tree,
    pub model: SiteModel,
    pub submitted_at: Instant,
    pub deadline: Option<Instant>,
    pub cancelled: Arc<AtomicBool>,
    pub cell: Arc<JobCell>,
    /// At-most-once resolution guard: set by the first successful
    /// [`Job::finish_once`]. The watchdog may re-dispatch a job whose
    /// worker died mid-shard, so a hung-but-alive worker finishing late
    /// must neither double-publish nor double-count — the claim on this
    /// flag decides which execution "owns" the terminal outcome.
    pub resolved: AtomicBool,
    /// Degradation-routing guard: a job that hits a backend fault is
    /// redirected to a healthy worker at most once; a second fault
    /// (anywhere) fails the job instead of bouncing it forever.
    pub redirected: AtomicBool,
    /// Durability sink: when the service journals, every terminal
    /// outcome appends a `Resolved` record under this idempotency key
    /// *before* the ticket's cell is woken, so an acknowledged-resolved
    /// job is durable by the time its waiter observes the outcome.
    pub journal: Option<(Arc<crate::journal::Journal>, String)>,
}

impl Job {
    pub(crate) fn is_cancelled(&self) -> bool {
        self.cancelled.load(Ordering::Relaxed)
    }

    pub(crate) fn past_deadline(&self, now: Instant) -> bool {
        self.deadline.is_some_and(|d| now > d)
    }

    pub(crate) fn batch_key(&self) -> BatchKey {
        BatchKey {
            dataset: self.dataset,
            n_rates: self.model.n_rates(),
        }
    }

    /// Whether a terminal outcome was already claimed for this job.
    pub(crate) fn is_resolved(&self) -> bool {
        self.resolved.load(Ordering::Acquire)
    }

    /// Claim the right to resolve this job. Returns `true` for exactly
    /// one caller — only that caller may record the job in the service
    /// counters and must then [`Job::publish`] the outcome. Duplicate
    /// executions (kill/respawn races) are harmless because every
    /// backend produces bit-identical results, but they must not
    /// double-count.
    pub(crate) fn try_claim(&self) -> bool {
        self.resolved
            .compare_exchange(false, true, Ordering::AcqRel, Ordering::Acquire)
            .is_ok()
    }

    /// Publish the terminal outcome (wakes ticket waiters). Call only
    /// after winning [`Job::try_claim`], and only after recording the
    /// job in the counters — waiters may snapshot the counters the
    /// moment the cell resolves.
    ///
    /// Every terminal path in the service funnels through here (queue
    /// expiry, dispatch completion/failure, fault containment, pool
    /// shutdown), so journaling the `Resolved` record in this one spot
    /// covers them all.
    pub(crate) fn publish(&self, outcome: JobOutcome) {
        if let Some((journal, key)) = &self.journal {
            journal.append_resolved(key, self.id.0, &outcome);
        }
        self.cell.set(outcome);
    }

    /// [`Job::try_claim`] + [`Job::publish`] for paths with no counter
    /// to record.
    #[cfg(test)]
    pub(crate) fn finish_once(&self, outcome: JobOutcome) -> bool {
        if !self.try_claim() {
            return false;
        }
        self.publish(outcome);
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn cell_first_writer_wins_and_wakes_waiters() {
        let cell = JobCell::new();
        let waiter = {
            let cell = Arc::clone(&cell);
            thread::spawn(move || cell.wait())
        };
        cell.set(JobOutcome::Cancelled);
        cell.set(JobOutcome::DeadlineMissed); // ignored: already resolved
        assert_eq!(waiter.join().expect("waiter"), JobOutcome::Cancelled);
        assert_eq!(cell.try_get(), Some(JobOutcome::Cancelled));
    }

    #[test]
    fn cell_wait_timeout_expires_and_then_resolves() {
        let cell = JobCell::new();
        assert_eq!(cell.wait_timeout(Duration::from_millis(5)), None);
        cell.set(JobOutcome::Cancelled);
        assert_eq!(
            cell.wait_timeout(Duration::from_millis(5)),
            Some(JobOutcome::Cancelled)
        );
    }

    #[test]
    fn finish_once_claims_exactly_once() {
        let job = Job {
            id: JobId(0),
            tenant: "t".into(),
            priority: Priority::Normal,
            dataset: DatasetId(0),
            data: Arc::new(
                plf_seqgen::generate(plf_seqgen::DatasetSpec::new(4, 8), 3).data,
            ),
            tree: plf_seqgen::generate(plf_seqgen::DatasetSpec::new(4, 8), 3).tree,
            model: plf_phylo::model::SiteModel::jc69(),
            submitted_at: Instant::now(),
            deadline: None,
            cancelled: Arc::new(AtomicBool::new(false)),
            cell: JobCell::new(),
            resolved: AtomicBool::new(false),
            redirected: AtomicBool::new(false),
            journal: None,
        };
        assert!(!job.is_resolved());
        assert!(job.finish_once(JobOutcome::Cancelled));
        assert!(job.is_resolved());
        assert!(!job.finish_once(JobOutcome::DeadlineMissed));
        assert_eq!(job.cell.try_get(), Some(JobOutcome::Cancelled));
    }

    #[test]
    fn priority_parses_labels() {
        assert_eq!(Priority::parse("high"), Some(Priority::High));
        assert_eq!(Priority::parse("normal"), Some(Priority::Normal));
        assert_eq!(Priority::parse("urgent"), None);
    }
}

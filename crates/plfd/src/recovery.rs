//! Journal recovery: scan segments on startup, truncate a torn tail,
//! and rebuild the admitted-but-unresolved backlog.
//!
//! Recovery is a pure fold over the record stream — order between
//! `Admitted` and `Resolved` records for the same key does not matter
//! (resolution may race admission onto disk), and a `Resolved` record
//! whose `Admitted` counterpart was compacted away is simply a dedup
//! entry. The state machine per key:
//!
//! ```text
//!            Admitted              Resolved
//!   absent ───────────► pending ───────────► resolved
//!      │                                        ▲
//!      └────────────── Resolved ────────────────┘
//! ```
//!
//! After the scan, `pending` keys are replayed through the admission
//! queue (resolving `DeadlineMissed` honestly when their journaled
//! deadline already passed) and `resolved` keys prime the idempotency
//! index so re-submissions return the journaled outcome instead of
//! re-executing.
//!
//! **Corrupt tails.** A crash can tear the final record (short frame,
//! bad CRC, or garbage length). The scanner truncates the segment at
//! the first malformed frame, counts it, and keeps everything before
//! it — corruption is never fatal.
//!
//! This file is in `plf-lint`'s L2 hot-path scope: no panicking calls.

use crate::journal::{
    decode_record, list_segments, AdmittedRecord, JournalError, Record, ResolvedRecord,
    FRAME_HEADER_BYTES, MAX_RECORD_BYTES,
};
use std::collections::BTreeMap;
use std::io::Read;
use std::path::Path;
use std::time::{Duration, SystemTime, UNIX_EPOCH};

/// What startup recovery did, surfaced through
/// [`crate::PlfService::recovery_report`] and mirrored into the
/// durability counters of `ServiceCounters`.
#[derive(Debug, Clone, Default, PartialEq, serde::Serialize)]
pub struct RecoveryReport {
    /// Admitted-but-unresolved jobs re-queued from the journal.
    pub replayed: u64,
    /// Replayed jobs whose journaled deadline had already passed; they
    /// resolved `DeadlineMissed` without re-executing.
    pub expired: u64,
    /// Replayed jobs that could not be reconstructed (dataset handle
    /// unregistered, shape fingerprint mismatch, or unparseable tree);
    /// they resolved `Failed` rather than being dropped.
    pub unrecoverable: u64,
    /// Journaled terminal outcomes loaded into the idempotency index —
    /// re-submissions under these keys dedup instead of re-executing.
    pub deduped_outcomes: u64,
    /// Corrupt trailing records truncated (one per torn tail).
    pub truncated_records: u64,
    /// Journal segment files scanned.
    pub segments_scanned: u64,
}

/// The raw result of scanning a journal directory.
#[derive(Debug, Default)]
pub(crate) struct ScanState {
    /// Admitted records with no matching `Resolved` record, in journal
    /// order — the replay backlog.
    pub pending: Vec<AdmittedRecord>,
    /// Terminal outcomes by idempotency key.
    pub resolved: BTreeMap<String, ResolvedRecord>,
    /// Segment index the reopened journal should append after.
    pub next_segment: u64,
    /// Per-segment count of still-unresolved admitted keys.
    pub seg_unresolved: BTreeMap<u64, u64>,
    /// Which segment each unresolved key's `Admitted` record lives in.
    pub key_seg: BTreeMap<String, u64>,
    /// Corrupt trailing records truncated across all segments.
    pub truncated: u64,
    /// Segment files scanned.
    pub segments_scanned: u64,
    /// Highest journaled job id (id allocation resumes above it).
    pub max_job_id: Option<u64>,
}

/// One parsed frame, or the reason scanning must stop at this offset.
#[allow(clippy::large_enum_variant)] // transient: one frame in flight per scan step
enum FrameOutcome {
    Record(Record, u64),
    /// Clean end of file.
    End,
    /// Torn/corrupt frame starting at this offset.
    Corrupt(u64),
}

fn next_frame(buf: &[u8], offset: u64) -> FrameOutcome {
    let at = offset as usize;
    if at == buf.len() {
        return FrameOutcome::End;
    }
    if buf.len() - at < FRAME_HEADER_BYTES as usize {
        return FrameOutcome::Corrupt(offset);
    }
    let mut len_bytes = [0u8; 4];
    len_bytes.copy_from_slice(&buf[at..at + 4]);
    let len = u32::from_le_bytes(len_bytes);
    let mut crc_bytes = [0u8; 4];
    crc_bytes.copy_from_slice(&buf[at + 4..at + 8]);
    let crc = u32::from_le_bytes(crc_bytes);
    if len > MAX_RECORD_BYTES {
        return FrameOutcome::Corrupt(offset);
    }
    let body_start = at + FRAME_HEADER_BYTES as usize;
    let body_end = body_start + len as usize;
    if body_end > buf.len() {
        return FrameOutcome::Corrupt(offset);
    }
    let payload = &buf[body_start..body_end];
    if crate::journal::crc32(payload) != crc {
        return FrameOutcome::Corrupt(offset);
    }
    match decode_record(payload) {
        Some(record) => FrameOutcome::Record(record, body_end as u64),
        None => FrameOutcome::Corrupt(offset),
    }
}

/// Truncate `path` to `len` bytes (cutting a torn tail). Best-effort:
/// an error leaves the tail in place, and the next recovery simply
/// truncates it again.
fn truncate_segment(path: &Path, len: u64) {
    if let Ok(file) = std::fs::OpenOptions::new().write(true).open(path) {
        let _ = file.set_len(len);
    }
}

/// Scan every segment under `dir`, truncating torn tails, and fold the
/// record stream into the recovery state.
pub(crate) fn scan(dir: &Path) -> Result<ScanState, JournalError> {
    let mut state = ScanState::default();
    let segments = list_segments(dir)?;
    let mut admitted_order: Vec<AdmittedRecord> = Vec::new();
    let mut admitted_seg: BTreeMap<String, u64> = BTreeMap::new();
    for (index, path) in &segments {
        state.segments_scanned += 1;
        state.next_segment = state.next_segment.max(index + 1);
        let mut buf = Vec::new();
        {
            let mut file = std::fs::File::open(path).map_err(|e| JournalError {
                context: format!("open segment {}", path.display()),
                source: e,
            })?;
            file.read_to_end(&mut buf).map_err(|e| JournalError {
                context: format!("read segment {}", path.display()),
                source: e,
            })?;
        }
        let mut offset = 0u64;
        loop {
            match next_frame(&buf, offset) {
                FrameOutcome::End => break,
                FrameOutcome::Corrupt(at) => {
                    truncate_segment(path, at);
                    state.truncated += 1;
                    break;
                }
                FrameOutcome::Record(record, next) => {
                    offset = next;
                    match record {
                        Record::Admitted(a) => {
                            if state.max_job_id.is_none_or(|m| a.id > m) {
                                state.max_job_id = Some(a.id);
                            }
                            // First admit under a key wins; a duplicate
                            // admit record (should not happen) is inert.
                            if !admitted_seg.contains_key(&a.key) {
                                admitted_seg.insert(a.key.clone(), *index);
                                admitted_order.push(a);
                            }
                        }
                        Record::Resolved(r) => {
                            if state.max_job_id.is_none_or(|m| r.id > m) {
                                state.max_job_id = Some(r.id);
                            }
                            state.resolved.entry(r.key.clone()).or_insert(r);
                        }
                    }
                }
            }
        }
    }
    for record in admitted_order {
        if state.resolved.contains_key(&record.key) {
            continue;
        }
        if let Some(seg) = admitted_seg.get(&record.key) {
            *state.seg_unresolved.entry(*seg).or_insert(0) += 1;
            state.key_seg.insert(record.key.clone(), *seg);
        }
        state.pending.push(record);
    }
    Ok(state)
}

/// Nanoseconds since `UNIX_EPOCH` now; the clock replayed deadlines
/// are honored against.
pub(crate) fn unix_nanos_now() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0)
}

/// How much of a journaled relative deadline remains at `now_nanos`,
/// or `None` if it already passed. A record without a deadline always
/// has time remaining (`Some(None)` shape flattened by the caller).
pub(crate) fn remaining_deadline(
    record: &AdmittedRecord,
    now_nanos: u64,
) -> Option<Option<Duration>> {
    match record.deadline_nanos {
        None => Some(None),
        Some(rel) => {
            let absolute = record.admitted_unix_nanos.saturating_add(rel);
            if now_nanos >= absolute {
                None
            } else {
                Some(Some(Duration::from_nanos(absolute - now_nanos)))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::{JobOutcome, Priority};
    use crate::journal::{encode_record, frame, segment_path, outcome_digest};
    use std::io::Write;

    fn admitted(key: &str, id: u64) -> AdmittedRecord {
        AdmittedRecord {
            key: key.to_string(),
            id,
            tenant: "t".to_string(),
            priority: Priority::Normal,
            dataset: 0,
            n_taxa: 4,
            n_patterns: 8,
            newick: "((a:0.1,b:0.2):0.05,c:0.3,d:0.4);".to_string(),
            model: plf_seqgen::default_model(),
            admitted_unix_nanos: 1_000,
            deadline_nanos: None,
        }
    }

    fn resolved(key: &str) -> ResolvedRecord {
        let outcome = JobOutcome::Cancelled;
        ResolvedRecord {
            key: key.to_string(),
            id: 0,
            digest: outcome_digest(&outcome),
            outcome,
        }
    }

    fn write_segment(dir: &Path, index: u64, records: &[Record], garbage_tail: &[u8]) {
        std::fs::create_dir_all(dir).expect("mkdir");
        let mut file = std::fs::File::create(segment_path(dir, index)).expect("create");
        for record in records {
            let payload = encode_record(record).expect("encode");
            file.write_all(&frame(payload.as_bytes())).expect("write");
        }
        file.write_all(garbage_tail).expect("tail");
    }

    fn temp_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "plfd-recovery-{tag}-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn scan_separates_pending_from_resolved() {
        let dir = temp_dir("split");
        write_segment(
            &dir,
            0,
            &[
                Record::Admitted(admitted("a", 0)),
                Record::Admitted(admitted("b", 1)),
                Record::Resolved(resolved("a")),
            ],
            &[],
        );
        let state = scan(&dir).expect("scan");
        assert_eq!(state.pending.len(), 1);
        assert_eq!(state.pending[0].key, "b");
        assert_eq!(state.resolved.len(), 1);
        assert!(state.resolved.contains_key("a"));
        assert_eq!(state.next_segment, 1);
        assert_eq!(state.max_job_id, Some(1));
        assert_eq!(state.truncated, 0);
        assert_eq!(state.seg_unresolved.get(&0), Some(&1));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn resolved_before_admitted_still_counts_as_resolved() {
        let dir = temp_dir("order");
        write_segment(
            &dir,
            0,
            &[
                Record::Resolved(resolved("a")),
                Record::Admitted(admitted("a", 0)),
            ],
            &[],
        );
        let state = scan(&dir).expect("scan");
        assert!(state.pending.is_empty(), "out-of-order resolve must win");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_tail_is_truncated_and_counted() {
        let dir = temp_dir("tail");
        write_segment(
            &dir,
            0,
            &[
                Record::Admitted(admitted("a", 0)),
                Record::Resolved(resolved("a")),
            ],
            b"\x40\x00\x00\x00garbage-partial-record",
        );
        let before = std::fs::metadata(segment_path(&dir, 0)).expect("meta").len();
        let state = scan(&dir).expect("scan");
        assert_eq!(state.truncated, 1);
        assert!(state.pending.is_empty());
        assert_eq!(state.resolved.len(), 1);
        let after = std::fs::metadata(segment_path(&dir, 0)).expect("meta").len();
        assert!(after < before, "torn tail was cut from the file");
        // A second scan over the truncated file is clean.
        let again = scan(&dir).expect("rescan");
        assert_eq!(again.truncated, 0);
        assert_eq!(again.resolved.len(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupted_crc_mid_file_cuts_from_that_record() {
        let dir = temp_dir("crc");
        write_segment(
            &dir,
            0,
            &[
                Record::Admitted(admitted("a", 0)),
                Record::Admitted(admitted("b", 1)),
            ],
            &[],
        );
        // Flip a byte in the last record's payload.
        let path = segment_path(&dir, 0);
        let mut bytes = std::fs::read(&path).expect("read");
        let last = bytes.len() - 3;
        bytes[last] ^= 0xFF;
        std::fs::write(&path, &bytes).expect("rewrite");
        let state = scan(&dir).expect("scan");
        assert_eq!(state.truncated, 1);
        assert_eq!(state.pending.len(), 1, "record before the flip survives");
        assert_eq!(state.pending[0].key, "a");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn deadline_remaining_honors_the_wall_clock() {
        let mut record = admitted("a", 0);
        record.admitted_unix_nanos = 1_000_000;
        record.deadline_nanos = Some(500);
        assert_eq!(remaining_deadline(&record, 1_000_100), Some(Some(Duration::from_nanos(400))));
        assert_eq!(remaining_deadline(&record, 1_000_500), None);
        assert_eq!(remaining_deadline(&record, 2_000_000), None);
        record.deadline_nanos = None;
        assert_eq!(remaining_deadline(&record, u64::MAX), Some(None));
    }

    #[test]
    fn empty_or_missing_dir_scans_clean() {
        let dir = temp_dir("empty");
        let state = scan(&dir).expect("scan missing dir");
        assert_eq!(state.pending.len(), 0);
        assert_eq!(state.segments_scanned, 0);
        assert_eq!(state.next_segment, 0);
    }
}

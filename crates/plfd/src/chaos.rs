//! The end-to-end chaos soak harness behind `plfr chaos`.
//!
//! One seeded run drives a deterministic job stream through the whole
//! queue → scheduler → dispatch → backend pipeline while injecting
//! faults at every `PLF_FAULT_*` site — kernel-output corruption, DMA
//! and PCIe transfer failures, launch failures, worker-body panics —
//! plus the two service-level fault classes this layer owns: **worker
//! kills** (a dispatch worker thread dies outright; the watchdog must
//! respawn it and re-queue its in-flight jobs) and **backend
//! blackouts** (a worker's backend refuses a run of jobs; its circuit
//! breaker must open, shift traffic to healthy workers, and re-close
//! via half-open probes once the blackout lifts).
//!
//! The harness then asserts the self-healing invariants:
//!
//! * **zero lost jobs** — every admitted job reaches a terminal
//!   outcome;
//! * **zero bit-divergent results** — every completed log-likelihood
//!   matches a serial scalar re-evaluation bit-for-bit;
//! * **bounded recovery** — by soak exit the worker pool is back at
//!   full capacity and every breaker has re-closed, within the
//!   configured recovery bound.
//!
//! Failures are collected (not panicked) into [`ChaosReport`], which
//! serializes to JSON for the CI `chaos-smoke` artifact.
//!
//! With [`ChaosConfig::crash_at`] set, the harness instead runs the
//! **process-level crash drill** behind `plfr chaos --crash N`: it
//! journals a job stream, hard-aborts the service mid-stream at job N
//! (the journal is frozen exactly as a `kill -9` would leave it, plus
//! a deliberately torn tail record), restarts on the same journal
//! directory, recovers, and resubmits every job under its original
//! idempotency key. It then asserts the durability invariants: zero
//! lost acknowledged jobs, no duplicate executions (every resubmission
//! dedups), the torn tail truncated non-fatally and counted, and every
//! completed log-likelihood bit-identical to the serial scalar
//! reference an uncrashed run would produce.
//!
//! This file is in `plf-lint`'s L2 hot-path scope: no panicking calls.

use crate::health::{BackendFactory, BreakerPolicy, BreakerState};
use crate::job::{JobOutcome, JobSpec, JobTicket, Priority};
use crate::journal::JournalConfig;
use crate::queue::SubmitError;
use crate::recovery::RecoveryReport;
use crate::service::{PlfService, ServiceConfig};
use plf_phylo::kernels::{PlfBackend, ScalarBackend};
use plf_phylo::likelihood::TreeLikelihood;
use plf_phylo::metrics::ServiceSnapshot;
use plf_phylo::resilience::{FaultInjector, FaultSite};
use plf_phylo::tree::Tree;
use plf_seqgen::{random_tree_for_taxa, DatasetSpec};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::Serialize;
use std::collections::VecDeque;
use std::io::Write;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Builds one worker backend for the chaos service. The injector (the
/// soak's single seeded fault source, `None` when every backend-level
/// rate is zero) is passed so the factory can arm the backend's
/// kernel-level fault sites; factories that ignore it are fine — the
/// service-level kill/blackout sites are driven by the harness itself.
pub type ChaosBackendFactory =
    Arc<dyn Fn(Option<Arc<FaultInjector>>) -> Box<dyn PlfBackend> + Send + Sync>;

/// A factory producing plain scalar workers (ignores the injector);
/// the default when no accelerator backend is selected.
pub fn scalar_chaos_factory() -> ChaosBackendFactory {
    Arc::new(|_inj| Box::new(ScalarBackend))
}

/// A deliberate fault event at a fixed point in the submission stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScheduledKill {
    /// Worker slot to kill.
    pub worker: usize,
    /// Fire just before the `after_jobs`-th submission (0-based).
    pub after_jobs: usize,
}

/// A deliberate blackout at a fixed point in the submission stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScheduledBlackout {
    /// Worker slot whose backend goes dark.
    pub worker: usize,
    /// Fire just before the `after_jobs`-th submission (0-based).
    pub after_jobs: usize,
    /// Consecutive jobs (and probes) the backend refuses.
    pub failures: u64,
}

/// Chaos soak configuration; all randomness flows from `seed`.
#[derive(Debug, Clone)]
pub struct ChaosConfig {
    /// Jobs to submit (the acceptance soak uses ≥ 200).
    pub jobs: usize,
    /// Seed for the job stream and the fault injector.
    pub seed: u64,
    /// Dataset shape.
    pub taxa: usize,
    /// Dataset shape.
    pub patterns: usize,
    /// Worker threads.
    pub workers: usize,
    /// Outstanding-job window while submitting.
    pub concurrency: usize,
    /// `PLF_FAULT_CORRUPT_RATE`: kernel-output corruption probability.
    pub corrupt_rate: f64,
    /// `PLF_FAULT_DMA_RATE`: Cell/BE DMA failure probability.
    pub dma_rate: f64,
    /// `PLF_FAULT_PCIE_RATE`: GPU PCIe transfer failure probability.
    pub pcie_rate: f64,
    /// `PLF_FAULT_LAUNCH_RATE`: kernel launch failure probability.
    pub launch_rate: f64,
    /// `PLF_FAULT_PANIC_RATE`: worker-body panic probability.
    pub panic_rate: f64,
    /// `PLF_FAULT_WORKER_KILL_RATE`: per-job probability a dispatch
    /// worker dies before the job.
    pub kill_rate: f64,
    /// `PLF_FAULT_BLACKOUT_RATE`: per-job probability a worker's
    /// backend goes dark for a burst of jobs.
    pub blackout_rate: f64,
    /// Deterministic worker kills at fixed submission indices.
    pub scheduled_kills: Vec<ScheduledKill>,
    /// Deterministic blackouts at fixed submission indices.
    pub scheduled_blackouts: Vec<ScheduledBlackout>,
    /// Fraction of jobs on the high-priority lane.
    pub high_fraction: f64,
    /// Fraction of jobs cancelled right after submission.
    pub cancel_fraction: f64,
    /// Fraction of jobs submitted with `deadline`.
    pub deadline_fraction: f64,
    /// Relative deadline for the deadline-bearing fraction.
    pub deadline: Duration,
    /// Hard wall-clock cap on the whole soak.
    pub max_wall: Duration,
    /// After the last job resolves, the pool must be back at full
    /// capacity with every breaker closed within this bound.
    pub recovery_bound: Duration,
    /// Crash drill: hard-abort the service after admitting this many
    /// jobs, restart on the same journal, and assert the durability
    /// invariants. `None` (the default) runs the fault-injection soak.
    pub crash_at: Option<usize>,
    /// Journal directory for the crash drill; a per-seed directory
    /// under the system temp dir when unset. Ignored without
    /// [`ChaosConfig::crash_at`].
    pub journal_dir: Option<PathBuf>,
}

impl Default for ChaosConfig {
    fn default() -> ChaosConfig {
        ChaosConfig {
            jobs: 200,
            seed: 2009,
            taxa: 6,
            patterns: 48,
            workers: 3,
            concurrency: 64,
            corrupt_rate: 0.0,
            dma_rate: 0.0,
            pcie_rate: 0.0,
            launch_rate: 0.0,
            panic_rate: 0.0,
            kill_rate: 0.0,
            blackout_rate: 0.0,
            scheduled_kills: vec![ScheduledKill {
                worker: 0,
                after_jobs: 40,
            }],
            scheduled_blackouts: vec![ScheduledBlackout {
                worker: 1,
                after_jobs: 80,
                failures: 6,
            }],
            high_fraction: 0.125,
            cancel_fraction: 0.05,
            deadline_fraction: 0.0,
            deadline: Duration::from_millis(50),
            max_wall: Duration::from_secs(60),
            recovery_bound: Duration::from_secs(10),
            crash_at: None,
            journal_dir: None,
        }
    }
}

impl ChaosConfig {
    /// Does this config inject at least one worker kill?
    fn kills_requested(&self) -> bool {
        !self.scheduled_kills.is_empty() || self.kill_rate > 0.0
    }

    /// Does this config inject at least one blackout?
    fn blackouts_requested(&self) -> bool {
        !self.scheduled_blackouts.is_empty() || self.blackout_rate > 0.0
    }

    /// The single seeded injector covering every configured rate, or
    /// `None` when all rates are zero (scheduled faults go through the
    /// service control plane instead).
    fn build_injector(&self) -> Option<Arc<FaultInjector>> {
        let rates = [
            (FaultSite::KernelOutput, self.corrupt_rate),
            (FaultSite::DmaTransfer, self.dma_rate),
            (FaultSite::PcieTransfer, self.pcie_rate),
            (FaultSite::KernelLaunch, self.launch_rate),
            (FaultSite::Worker, self.panic_rate),
            (FaultSite::WorkerKill, self.kill_rate),
            (FaultSite::BackendBlackout, self.blackout_rate),
        ];
        if rates.iter().all(|(_, p)| *p <= 0.0) {
            return None;
        }
        let mut inj = FaultInjector::new(self.seed);
        for (site, p) in rates {
            if p > 0.0 {
                inj = inj.with_rate(site, p.min(1.0));
            }
        }
        Some(Arc::new(inj))
    }
}

/// What one chaos soak observed, and whether the self-healing
/// invariants held. Serializes to JSON for the CI artifact.
#[derive(Debug, Clone, Serialize)]
pub struct ChaosReport {
    /// Seed the whole soak derived from.
    pub seed: u64,
    /// Worker threads configured.
    pub workers: usize,
    /// Jobs admitted.
    pub submitted: usize,
    /// Jobs that completed with a log-likelihood.
    pub completed: usize,
    /// Jobs that failed evaluation (resolved, not lost).
    pub failed: usize,
    /// Jobs cancelled by the harness.
    pub cancelled: usize,
    /// Jobs that missed their deadline.
    pub deadline_missed: usize,
    /// Jobs with no outcome by the wall-clock cap — must be 0.
    pub lost: usize,
    /// Completed results re-checked against the serial scalar
    /// reference.
    pub checked: usize,
    /// Checked results whose bits differed — must be 0.
    pub bit_mismatches: usize,
    /// Capacity rejections absorbed by retry.
    pub rejections_retried: usize,
    /// Adaptive-shed refusals absorbed by retry.
    pub sheds_retried: usize,
    /// Deterministic worker kills the harness requested.
    pub kills_scheduled: usize,
    /// Deterministic blackouts the harness requested.
    pub blackouts_scheduled: usize,
    /// Faults the seeded injector fired (rate-based sites).
    pub injector_faults_fired: u64,
    /// Wall-clock seconds for the whole soak.
    pub wall_seconds: f64,
    /// Seconds from last job resolution to a fully healthy pool.
    pub recovery_seconds: f64,
    /// Whether the pool recovered within the bound.
    pub recovered: bool,
    /// Running worker threads at exit — must equal `workers`.
    pub alive_workers_at_exit: usize,
    /// Breaker states at exit, in worker order — must all be "closed".
    pub breaker_states_at_exit: Vec<String>,
    /// Service counter snapshot at exit (breaker transitions, watchdog
    /// respawns, sheds, probe outcomes, ...).
    pub service: ServiceSnapshot,
    /// Crash-drill observations; `None` on a fault-injection soak.
    pub durability: Option<CrashDurability>,
    /// Invariant violations; empty on a passing soak.
    pub failures: Vec<String>,
    /// `failures.is_empty()`.
    pub pass: bool,
}

/// What the crash drill (`plfr chaos --crash N`) observed across the
/// hard abort and restart.
#[derive(Debug, Clone, Serialize)]
pub struct CrashDurability {
    /// Jobs acknowledged (journaled admitted) before the abort.
    pub crashed_after: usize,
    /// The recovery scan + replay report from the restarted service.
    pub recovery: RecoveryReport,
    /// Resubmissions after restart that deduped onto a journaled
    /// outcome or replayed job instead of executing again — must equal
    /// `crashed_after` (no duplicate side effects).
    pub resubmits_deduped: u64,
    /// Acknowledged jobs with no terminal outcome after restart —
    /// must be 0.
    pub lost_acknowledged: usize,
    /// Torn-tail records truncated non-fatally during recovery —
    /// at least 1 (the drill tears the tail deliberately).
    pub truncated_records: u64,
}

/// Run one seeded chaos soak. See the module docs for what is injected
/// and what is asserted; the returned report carries `pass` plus the
/// specific invariant violations, and never panics on failure. With
/// [`ChaosConfig::crash_at`] set, runs the crash drill instead.
pub fn run_chaos(cfg: &ChaosConfig, make_backend: &ChaosBackendFactory) -> ChaosReport {
    if cfg.crash_at.is_some() {
        return run_crash_drill(cfg, make_backend);
    }
    let started = Instant::now();
    let wall_deadline = started + cfg.max_wall;
    let workers = cfg.workers.max(1);
    let injector = cfg.build_injector();
    let mut failures: Vec<String> = Vec::new();

    let ds = plf_seqgen::generate(
        DatasetSpec::new(cfg.taxa.max(4), cfg.patterns.max(8)),
        cfg.seed,
    );
    let model = plf_seqgen::default_model();
    let taxa_names = ds.data.taxa().to_vec();

    let service_cfg = ServiceConfig {
        breaker: BreakerPolicy {
            failure_threshold: 3,
            cooldown: Duration::from_millis(25),
            probe_seed: cfg.seed,
        },
        fault_injector: injector.clone(),
        ..ServiceConfig::default()
    };
    let backends: Vec<Box<dyn PlfBackend>> =
        (0..workers).map(|_| make_backend(injector.clone())).collect();
    let factories: Vec<BackendFactory> = (0..workers)
        .map(|_| {
            let mb = Arc::clone(make_backend);
            let inj = injector.clone();
            Arc::new(move || mb(inj.clone())) as BackendFactory
        })
        .collect();
    let service = PlfService::new_with_factories(service_cfg, backends, factories);
    let dataset = service.register_dataset(ds.data.clone());

    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut outstanding: VecDeque<(JobTicket, Tree)> = VecDeque::new();
    let mut outcomes: Vec<(JobOutcome, Tree)> = Vec::new();
    let mut submitted = 0usize;
    let mut lost = 0usize;
    let mut rejections_retried = 0usize;
    let mut sheds_retried = 0usize;

    let settle =
        |pending: &mut VecDeque<(JobTicket, Tree)>, out: &mut Vec<(JobOutcome, Tree)>,
         lost: &mut usize| {
            if let Some((ticket, tree)) = pending.pop_front() {
                let remaining = wall_deadline
                    .saturating_duration_since(Instant::now())
                    .max(Duration::from_millis(100));
                match ticket.wait_timeout(remaining) {
                    Some(outcome) => out.push((outcome, tree)),
                    None => *lost += 1,
                }
            }
        };

    'submit: for i in 0..cfg.jobs {
        if Instant::now() >= wall_deadline {
            failures.push(format!(
                "wall-clock cap hit after {submitted} of {} submissions",
                cfg.jobs
            ));
            break;
        }
        // Scheduled fault events fire just before the i-th submission.
        for k in cfg.scheduled_kills.iter().filter(|k| k.after_jobs == i) {
            service.kill_worker(k.worker);
        }
        for b in cfg
            .scheduled_blackouts
            .iter()
            .filter(|b| b.after_jobs == i)
        {
            service.blackout_worker(b.worker, b.failures);
        }
        // Deterministic per-job draws (consumed in a fixed order).
        let tree = random_tree_for_taxa(&taxa_names, 0.1, &mut rng);
        let tenant = format!("tenant-{}", i % 4);
        let high = rng.gen_range(0.0..1.0) < cfg.high_fraction;
        let cancel = rng.gen_range(0.0..1.0) < cfg.cancel_fraction;
        let with_deadline = rng.gen_range(0.0..1.0) < cfg.deadline_fraction;

        while outstanding.len() >= cfg.concurrency.max(1) {
            settle(&mut outstanding, &mut outcomes, &mut lost);
        }

        let mut spec = JobSpec::new(tenant, dataset, tree.clone(), model.clone());
        if high {
            spec = spec.with_priority(Priority::High);
        }
        if with_deadline {
            spec = spec.with_deadline(cfg.deadline);
        }
        let ticket = loop {
            match service.submit(spec.clone()) {
                Ok(t) => break t,
                Err(SubmitError::QueueFull { retry_after, .. }) => {
                    rejections_retried += 1;
                    std::thread::sleep(retry_after);
                }
                Err(SubmitError::Overloaded { retry_after, .. }) => {
                    sheds_retried += 1;
                    std::thread::sleep(retry_after);
                }
                Err(err) => {
                    failures.push(format!("submission {i} failed fatally: {err}"));
                    break 'submit;
                }
            }
            if Instant::now() >= wall_deadline {
                failures.push(format!("submission {i} stalled past the wall-clock cap"));
                break 'submit;
            }
        };
        submitted += 1;
        if cancel {
            ticket.cancel();
        }
        outstanding.push_back((ticket, tree));
    }
    while !outstanding.is_empty() {
        settle(&mut outstanding, &mut outcomes, &mut lost);
    }

    // Recovery: the pool must return to full capacity with every
    // breaker closed within the bound (probes run on idle workers).
    let resolved_at = Instant::now();
    let mut recovered = false;
    loop {
        let healthy = service.alive_workers() == workers
            && service
                .breaker_states()
                .iter()
                .all(|s| *s == BreakerState::Closed);
        if healthy {
            recovered = true;
            break;
        }
        if resolved_at.elapsed() > cfg.recovery_bound {
            break;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    let recovery_seconds = resolved_at.elapsed().as_secs_f64();

    // Bit-identity: every completed result must match a serial scalar
    // re-evaluation exactly.
    let mut checked = 0usize;
    let mut bit_mismatches = 0usize;
    let mut reference = ScalarBackend;
    for (outcome, tree) in &outcomes {
        let Some(lnl) = outcome.ln_likelihood() else {
            continue;
        };
        let serial = TreeLikelihood::new(tree, &ds.data, model.clone())
            .and_then(|mut eval| eval.log_likelihood(tree, &mut reference));
        checked += 1;
        match serial {
            Ok(expected) if expected.to_bits() == lnl.to_bits() => {}
            _ => bit_mismatches += 1,
        }
    }

    let mut completed = 0usize;
    let mut failed = 0usize;
    let mut cancelled = 0usize;
    let mut deadline_missed = 0usize;
    for (outcome, _) in &outcomes {
        match outcome {
            JobOutcome::Completed { .. } => completed += 1,
            JobOutcome::Failed { .. } => failed += 1,
            JobOutcome::Cancelled => cancelled += 1,
            JobOutcome::DeadlineMissed => deadline_missed += 1,
        }
    }

    let alive_workers_at_exit = service.alive_workers();
    let breaker_states_at_exit: Vec<String> = service
        .breaker_states()
        .iter()
        .map(|s| s.label().to_string())
        .collect();
    let snapshot = service.snapshot();
    service.shutdown();

    // Invariant checks.
    if lost > 0 {
        failures.push(format!("{lost} job(s) lost (no terminal outcome)"));
    }
    if bit_mismatches > 0 {
        failures.push(format!(
            "{bit_mismatches} completed result(s) diverged from the serial scalar reference"
        ));
    }
    if outcomes.len() + lost != submitted {
        failures.push(format!(
            "outcome accounting broken: {submitted} submitted vs {} resolved + {lost} lost",
            outcomes.len()
        ));
    }
    if cfg.kills_requested() {
        if snapshot.watchdog_respawns == 0 {
            failures.push("worker kills requested but the watchdog never respawned".into());
        }
        if alive_workers_at_exit != workers {
            failures.push(format!(
                "worker capacity not restored: {alive_workers_at_exit}/{workers} alive at exit"
            ));
        }
    }
    if cfg.blackouts_requested() {
        if snapshot.breaker_opened == 0 {
            failures.push("blackouts requested but no breaker ever opened".into());
        }
        if snapshot.breaker_closed == 0 {
            failures.push("a breaker opened but never re-closed via half-open probes".into());
        }
    }
    if !recovered {
        failures.push(format!(
            "pool not healthy within the {:.1} s recovery bound: {alive_workers_at_exit}/{workers} \
             alive, breakers [{}]",
            cfg.recovery_bound.as_secs_f64(),
            breaker_states_at_exit.join(", ")
        ));
    }

    let pass = failures.is_empty();
    ChaosReport {
        seed: cfg.seed,
        workers,
        submitted,
        completed,
        failed,
        cancelled,
        deadline_missed,
        lost,
        checked,
        bit_mismatches,
        rejections_retried,
        sheds_retried,
        kills_scheduled: cfg.scheduled_kills.len(),
        blackouts_scheduled: cfg.scheduled_blackouts.len(),
        injector_faults_fired: injector.as_ref().map(|i| i.fired()).unwrap_or(0),
        wall_seconds: started.elapsed().as_secs_f64(),
        recovery_seconds,
        recovered,
        alive_workers_at_exit,
        breaker_states_at_exit,
        service: snapshot,
        durability: None,
        failures,
        pass,
    }
}

/// Append a deliberately torn frame (a header promising more body
/// bytes than follow) to the newest journal segment, simulating a
/// write cut short by the crash. Best-effort: an I/O error here only
/// means the drill exercises recovery without a torn tail.
fn tear_journal_tail(dir: &std::path::Path) -> bool {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return false;
    };
    let mut newest: Option<PathBuf> = None;
    for entry in entries.flatten() {
        let path = entry.path();
        let is_segment = path
            .file_name()
            .and_then(|n| n.to_str())
            .is_some_and(|n| n.starts_with("wal-") && n.ends_with(".log"));
        if is_segment && newest.as_ref().is_none_or(|best| path > *best) {
            newest = Some(path);
        }
    }
    let Some(path) = newest else {
        return false;
    };
    let Ok(mut file) = std::fs::OpenOptions::new().append(true).open(&path) else {
        return false;
    };
    // Length header claims 64 body bytes; only 4 follow.
    let mut torn = Vec::new();
    torn.extend_from_slice(&64u32.to_le_bytes());
    torn.extend_from_slice(&0u32.to_le_bytes());
    torn.extend_from_slice(b"torn");
    file.write_all(&torn).is_ok()
}

/// The process-level crash drill behind `plfr chaos --crash N`: journal
/// a deterministic job stream, hard-abort after `crash_at` admissions,
/// tear the journal tail, restart on the same directory, recover, and
/// resubmit the full stream under the original idempotency keys.
fn run_crash_drill(cfg: &ChaosConfig, make_backend: &ChaosBackendFactory) -> ChaosReport {
    let started = Instant::now();
    let wall_deadline = started + cfg.max_wall;
    let workers = cfg.workers.max(1);
    let crash_at = cfg.crash_at.unwrap_or(1).max(1);
    let jobs = cfg.jobs.max(crash_at);
    let retry = crate::queue::RetryPolicy::default();
    let mut failures: Vec<String> = Vec::new();

    let journal_dir = cfg.journal_dir.clone().unwrap_or_else(|| {
        std::env::temp_dir().join(format!("plfd-crash-drill-{}", cfg.seed))
    });
    // The drill owns its directory: start from a clean journal so the
    // recovery counts below are exact.
    let _ = std::fs::remove_dir_all(&journal_dir);

    let ds = plf_seqgen::generate(
        DatasetSpec::new(cfg.taxa.max(4), cfg.patterns.max(8)),
        cfg.seed,
    );
    let model = plf_seqgen::default_model();
    let taxa_names = ds.data.taxa().to_vec();
    let key_for = |i: usize| format!("chaos-{}-{i}", cfg.seed);

    let service_cfg = || ServiceConfig {
        journal: Some(JournalConfig::in_dir(&journal_dir)),
        ..ServiceConfig::default()
    };
    let build_backends = || -> Vec<Box<dyn PlfBackend>> {
        (0..workers).map(|_| make_backend(None)).collect()
    };

    let mut rejections_retried = 0usize;
    let mut sheds_retried = 0usize;

    // Phase 1: admit `crash_at` jobs (acknowledged = journaled), then
    // hard-abort mid-stream. Tickets are deliberately abandoned — the
    // crash forgets all in-memory state, exactly like `kill -9`.
    {
        let service = PlfService::new(service_cfg(), build_backends());
        let dataset = service.register_dataset(ds.data.clone());
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        'admit: for i in 0..crash_at {
            let tree = random_tree_for_taxa(&taxa_names, 0.1, &mut rng);
            let spec = JobSpec::new(format!("tenant-{}", i % 4), dataset, tree, model.clone())
                .with_idempotency_key(key_for(i));
            let mut attempt = 0u32;
            loop {
                match service.submit(spec.clone()) {
                    Ok(_) => break,
                    Err(err) if err.is_retryable() && retry.allows(attempt) => {
                        if matches!(err, SubmitError::QueueFull { .. }) {
                            rejections_retried += 1;
                        } else {
                            sheds_retried += 1;
                        }
                        std::thread::sleep(retry.backoff(attempt, err.retry_after()));
                        attempt += 1;
                    }
                    Err(err) => {
                        failures.push(format!("pre-crash submission {i} failed: {err}"));
                        break 'admit;
                    }
                }
            }
        }
        service.crash();
    }

    // Simulate the write the crash cut short.
    let tail_torn = tear_journal_tail(&journal_dir);
    if !tail_torn {
        failures.push("could not tear the journal tail for the drill".into());
    }

    // Phase 2: restart on the same journal, recover, and push the
    // whole stream — the first `crash_at` jobs under their original
    // keys (must dedup, never re-execute), the rest as fresh work.
    let service = PlfService::new(service_cfg(), build_backends());
    let dataset = service.register_dataset(ds.data.clone());
    let recovery = service.recover();

    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut tickets: Vec<(usize, JobTicket, Tree)> = Vec::new();
    'resubmit: for i in 0..jobs {
        let tree = random_tree_for_taxa(&taxa_names, 0.1, &mut rng);
        let spec = JobSpec::new(format!("tenant-{}", i % 4), dataset, tree.clone(), model.clone())
            .with_idempotency_key(key_for(i));
        let mut attempt = 0u32;
        let ticket = loop {
            match service.submit(spec.clone()) {
                Ok(t) => break t,
                Err(err) if err.is_retryable() && retry.allows(attempt) => {
                    if matches!(err, SubmitError::QueueFull { .. }) {
                        rejections_retried += 1;
                    } else {
                        sheds_retried += 1;
                    }
                    std::thread::sleep(retry.backoff(attempt, err.retry_after()));
                    attempt += 1;
                }
                Err(err) => {
                    failures.push(format!("post-crash submission {i} failed: {err}"));
                    break 'resubmit;
                }
            }
        };
        tickets.push((i, ticket, tree));
    }

    let mut outcomes: Vec<(usize, JobOutcome, Tree)> = Vec::new();
    let mut lost = 0usize;
    let mut lost_acknowledged = 0usize;
    for (i, ticket, tree) in tickets {
        let remaining = wall_deadline
            .saturating_duration_since(Instant::now())
            .max(Duration::from_millis(100));
        match ticket.wait_timeout(remaining) {
            Some(outcome) => outcomes.push((i, outcome, tree)),
            None => {
                lost += 1;
                if i < crash_at {
                    lost_acknowledged += 1;
                }
            }
        }
    }

    // Bit-identity: the serial scalar reference is the uncrashed
    // same-seed ground truth every surviving result must match.
    let mut checked = 0usize;
    let mut bit_mismatches = 0usize;
    let mut reference = ScalarBackend;
    for (_, outcome, tree) in &outcomes {
        let Some(lnl) = outcome.ln_likelihood() else {
            continue;
        };
        let serial = TreeLikelihood::new(tree, &ds.data, model.clone())
            .and_then(|mut eval| eval.log_likelihood(tree, &mut reference));
        checked += 1;
        match serial {
            Ok(expected) if expected.to_bits() == lnl.to_bits() => {}
            _ => bit_mismatches += 1,
        }
    }

    let mut completed = 0usize;
    let mut failed = 0usize;
    let mut cancelled = 0usize;
    let mut deadline_missed = 0usize;
    for (_, outcome, _) in &outcomes {
        match outcome {
            JobOutcome::Completed { .. } => completed += 1,
            JobOutcome::Failed { .. } => failed += 1,
            JobOutcome::Cancelled => cancelled += 1,
            JobOutcome::DeadlineMissed => deadline_missed += 1,
        }
    }

    let alive_workers_at_exit = service.alive_workers();
    let breaker_states_at_exit: Vec<String> = service
        .breaker_states()
        .iter()
        .map(|s| s.label().to_string())
        .collect();
    let snapshot = service.snapshot();
    service.shutdown();

    // Durability invariants.
    if lost_acknowledged > 0 {
        failures.push(format!(
            "{lost_acknowledged} acknowledged job(s) lost across the crash"
        ));
    }
    if lost > 0 {
        failures.push(format!("{lost} job(s) lost (no terminal outcome)"));
    }
    if snapshot.deduped_jobs != crash_at as u64 {
        failures.push(format!(
            "expected every pre-crash resubmission to dedup ({crash_at}), saw {}",
            snapshot.deduped_jobs
        ));
    }
    if tail_torn && recovery.truncated_records == 0 {
        failures.push("the torn journal tail was not truncated and counted".into());
    }
    if recovery.unrecoverable > 0 {
        failures.push(format!(
            "{} replayed job(s) were unrecoverable",
            recovery.unrecoverable
        ));
    }
    if bit_mismatches > 0 {
        failures.push(format!(
            "{bit_mismatches} result(s) diverged from the uncrashed reference across the crash"
        ));
    }

    let durability = CrashDurability {
        crashed_after: crash_at,
        recovery,
        resubmits_deduped: snapshot.deduped_jobs,
        lost_acknowledged,
        truncated_records: snapshot.truncated_records,
    };
    let pass = failures.is_empty();
    ChaosReport {
        seed: cfg.seed,
        workers,
        submitted: jobs,
        completed,
        failed,
        cancelled,
        deadline_missed,
        lost,
        checked,
        bit_mismatches,
        rejections_retried,
        sheds_retried,
        kills_scheduled: 0,
        blackouts_scheduled: 0,
        injector_faults_fired: 0,
        wall_seconds: started.elapsed().as_secs_f64(),
        recovery_seconds: 0.0,
        recovered: true,
        alive_workers_at_exit,
        breaker_states_at_exit,
        service: snapshot,
        durability: Some(durability),
        failures,
        pass,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quiet_soak_passes_without_faults() {
        let cfg = ChaosConfig {
            jobs: 24,
            workers: 2,
            concurrency: 8,
            scheduled_kills: Vec::new(),
            scheduled_blackouts: Vec::new(),
            cancel_fraction: 0.0,
            ..ChaosConfig::default()
        };
        let report = run_chaos(&cfg, &scalar_chaos_factory());
        assert!(report.pass, "failures: {:?}", report.failures);
        assert_eq!(report.submitted, 24);
        assert_eq!(report.lost, 0);
        assert_eq!(report.bit_mismatches, 0);
        assert_eq!(report.service.watchdog_respawns, 0);
    }

    #[test]
    fn kill_and_blackout_soak_recovers_and_passes() {
        let cfg = ChaosConfig {
            jobs: 80,
            workers: 2,
            concurrency: 16,
            scheduled_kills: vec![ScheduledKill {
                worker: 0,
                after_jobs: 10,
            }],
            scheduled_blackouts: vec![ScheduledBlackout {
                worker: 1,
                after_jobs: 30,
                failures: 5,
            }],
            ..ChaosConfig::default()
        };
        let report = run_chaos(&cfg, &scalar_chaos_factory());
        assert!(report.pass, "failures: {:?}", report.failures);
        assert_eq!(report.lost, 0);
        assert_eq!(report.bit_mismatches, 0);
        assert!(report.service.watchdog_respawns >= 1, "kill must respawn");
        assert!(report.service.breaker_opened >= 1, "blackout must trip");
        assert!(report.service.breaker_closed >= 1, "probe must re-close");
        assert_eq!(report.alive_workers_at_exit, 2);
        assert!(report
            .breaker_states_at_exit
            .iter()
            .all(|s| s == "closed"));
    }

    #[test]
    fn crash_drill_loses_nothing_and_dedups_every_resubmission() {
        let dir = std::env::temp_dir().join(format!(
            "plfd-chaos-crash-test-{}",
            std::process::id()
        ));
        let cfg = ChaosConfig {
            jobs: 24,
            workers: 2,
            seed: 31,
            crash_at: Some(12),
            journal_dir: Some(dir.clone()),
            ..ChaosConfig::default()
        };
        let report = run_chaos(&cfg, &scalar_chaos_factory());
        assert!(report.pass, "failures: {:?}", report.failures);
        assert_eq!(report.lost, 0);
        assert_eq!(report.bit_mismatches, 0);
        let durability = report.durability.expect("crash drill reports durability");
        assert_eq!(durability.crashed_after, 12);
        assert_eq!(durability.lost_acknowledged, 0);
        assert_eq!(durability.resubmits_deduped, 12);
        assert!(durability.truncated_records >= 1, "torn tail counted");
        assert_eq!(durability.recovery.unrecoverable, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn chaos_report_serializes() {
        let cfg = ChaosConfig {
            jobs: 4,
            workers: 1,
            concurrency: 4,
            scheduled_kills: Vec::new(),
            scheduled_blackouts: Vec::new(),
            cancel_fraction: 0.0,
            ..ChaosConfig::default()
        };
        let report = run_chaos(&cfg, &scalar_chaos_factory());
        let json = serde_json::to_string(&report).expect("serialize");
        assert!(json.contains("\"pass\""));
        assert!(json.contains("\"breaker_states_at_exit\""));
        assert!(json.contains("\"watchdog_respawns\""));
    }
}

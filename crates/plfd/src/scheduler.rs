//! The batching scheduler: coalesces compatible queued jobs into fused
//! batches and feeds them to the dispatcher.
//!
//! Jobs are compatible when they share a [`BatchKey`] — the same
//! registered alignment and model rate count, hence the same CLV
//! stride and device work-unit geometry. A fused batch is capped two
//! ways: by job count (`max_jobs`, the occupancy denominator) and by
//! fused work units (`max_units`, where one unit is
//! `PlfBackend::preferred_batch_patterns` patterns on the pool's
//! narrowest backend *for the job's own rate count* — LS-sized chunks
//! for the Cell, grid-sized slabs for the GPU, per-thread chunks for
//! the multicore pools).
//!
//! **Linger.** After the first job of a batching round arrives, the
//! scheduler waits up to `linger` for batchmates before dispatching.
//! One-at-a-time closed-loop submission therefore pays the full linger
//! per job, while concurrent submission amortizes it across the whole
//! batch — that amortization (plus dispatch-round-trip sharing) is
//! exactly what the `service` section of `BENCH_plf.json` measures as
//! batched-over-serial throughput. A full batch dispatches immediately
//! without waiting out the window.
//!
//! This file is in `plf-lint`'s L2 hot-path scope: no panicking calls.

use crate::dispatch::WorkerPool;
use crate::job::{BatchKey, Job};
use crate::queue::{BoundedQueue, PopResult};
use plf_phylo::metrics::ServiceCounters;
use std::collections::HashMap;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Batch-formation knobs.
#[derive(Debug, Clone)]
pub struct BatchPolicy {
    /// Maximum jobs fused into one batch (occupancy denominator).
    pub max_jobs: usize,
    /// Maximum fused work units per batch (unit = the worker pool's
    /// preferred pattern chunk).
    pub max_units: usize,
    /// How long to hold an underfull batch open for batchmates.
    pub linger: Duration,
}

impl Default for BatchPolicy {
    fn default() -> BatchPolicy {
        BatchPolicy {
            max_jobs: 32,
            max_units: 64,
            linger: Duration::from_millis(2),
        }
    }
}

/// One fused batch of compatible jobs, ready for dispatch.
#[derive(Debug)]
pub(crate) struct Batch {
    pub jobs: Vec<Job>,
    pub units: usize,
}

/// Work units one job contributes: its pattern count split into
/// `unit_patterns`-sized device chunks, at least one.
pub(crate) fn job_units(patterns: usize, unit_patterns: usize) -> usize {
    patterns.div_ceil(unit_patterns.max(1)).max(1)
}

/// Group `jobs` by compatibility key and cut batches at the policy
/// caps, preserving arrival order within each key. Pure function —
/// unit-tested without threads.
///
/// `unit_patterns_for` maps a job's rate-category count to the pool's
/// unit size for that geometry (more rates → wider patterns → smaller
/// chunks on memory-bound backends). A job's units are accounted at
/// their true value even past `max_units`: an oversized job opens a
/// solo over-cap batch that the `b.units + units <= max_units` guard
/// then keeps closed to batchmates. (Clamping to the cap instead used
/// to leave such batches looking underfull, so later jobs fused into
/// an already over-budget batch.)
pub(crate) fn form_batches(
    jobs: Vec<Job>,
    policy: &BatchPolicy,
    unit_patterns_for: &dyn Fn(usize) -> usize,
) -> Vec<Batch> {
    let max_jobs = policy.max_jobs.max(1);
    let max_units = policy.max_units.max(1);
    let mut out: Vec<Batch> = Vec::new();
    let mut open: HashMap<BatchKey, usize> = HashMap::new();
    for job in jobs {
        let key = job.batch_key();
        let units = job_units(
            job.data.n_patterns(),
            unit_patterns_for(job.model.n_rates()),
        );
        let target = open.get(&key).copied().filter(|&i| {
            let b = &out[i];
            b.jobs.len() < max_jobs && b.units + units <= max_units
        });
        match target {
            Some(i) => {
                out[i].units += units;
                out[i].jobs.push(job);
            }
            None => {
                open.insert(key, out.len());
                out.push(Batch {
                    jobs: vec![job],
                    units,
                });
            }
        }
    }
    out
}

/// Pause gate: tests hold the scheduler closed so queued jobs stay
/// visible to admission-control assertions, then release it.
#[derive(Debug)]
pub(crate) struct Gate {
    open: Mutex<bool>,
    changed: Condvar,
}

impl Gate {
    pub(crate) fn new(open: bool) -> Arc<Gate> {
        Arc::new(Gate {
            open: Mutex::new(open),
            changed: Condvar::new(),
        })
    }

    pub(crate) fn open(&self) {
        let mut open = self.open.lock().unwrap_or_else(|p| p.into_inner());
        *open = true;
        self.changed.notify_all();
    }

    fn wait_open(&self) {
        let mut open = self.open.lock().unwrap_or_else(|p| p.into_inner());
        while !*open {
            open = self.changed.wait(open).unwrap_or_else(|p| p.into_inner());
        }
    }
}

/// How long a pop blocks before re-checking for shutdown.
const POP_TIMEOUT: Duration = Duration::from_millis(50);
/// Nap length while lingering for batchmates.
const LINGER_NAP: Duration = Duration::from_micros(200);

/// The scheduler loop: runs on its own thread, owns the worker pool,
/// and drains the queue into fused batches until the queue closes.
/// On close it flushes the backlog (no linger) and shuts the pool
/// down, so every admitted job still resolves.
pub(crate) fn run_scheduler(
    queue: Arc<BoundedQueue>,
    pool: WorkerPool,
    policy: BatchPolicy,
    gate: Arc<Gate>,
    counters: Arc<ServiceCounters>,
) {
    loop {
        gate.wait_open();
        let first = match queue.pop_wait(POP_TIMEOUT) {
            PopResult::Job(job) => *job,
            PopResult::Empty => continue,
            PopResult::Closed => break,
        };
        let mut jobs = vec![first];
        let linger_until = Instant::now() + policy.linger;
        loop {
            jobs.extend(queue.drain(policy.max_jobs.saturating_sub(jobs.len())));
            if jobs.len() >= policy.max_jobs {
                break;
            }
            // Drain fast-path: once the queue is closed no batchmate
            // can ever arrive, so napping out the linger would only
            // add tail latency to the last jobs of a drain.
            if queue.is_closed() {
                break;
            }
            let now = Instant::now();
            if now >= linger_until {
                break;
            }
            std::thread::sleep(LINGER_NAP.min(linger_until - now));
        }
        dispatch_all(jobs, &policy, &pool, &counters);
    }
    // Shutdown flush: everything still queued gets dispatched so the
    // pool resolves it (possibly as cancelled/deadline-missed).
    loop {
        let backlog = queue.drain(usize::MAX);
        if backlog.is_empty() {
            break;
        }
        dispatch_all(backlog, &policy, &pool, &counters);
    }
    pool.shutdown();
}

fn dispatch_all(
    jobs: Vec<Job>,
    policy: &BatchPolicy,
    pool: &WorkerPool,
    counters: &ServiceCounters,
) {
    for batch in form_batches(jobs, policy, &|r| pool.unit_patterns_for(r)) {
        counters.record_batch(batch.jobs.len() as u64, policy.max_jobs.max(1) as u64);
        pool.dispatch(batch);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::{DatasetId, JobCell, JobId, Priority};
    use plf_phylo::model::SiteModel;
    use std::sync::atomic::AtomicBool;

    fn job_with(id: u64, dataset: u64, n_rates: usize, patterns: usize) -> Job {
        let ds = plf_seqgen::generate(plf_seqgen::DatasetSpec::new(4, patterns), 11);
        let model = SiteModel::new(plf_phylo::model::GtrParams::jc69(), 0.5, n_rates)
            .expect("valid model");
        Job {
            id: JobId(id),
            tenant: "t".into(),
            priority: Priority::Normal,
            dataset: DatasetId(dataset),
            data: Arc::new(ds.data),
            tree: ds.tree,
            model,
            submitted_at: Instant::now(),
            deadline: None,
            cancelled: Arc::new(AtomicBool::new(false)),
            cell: JobCell::new(),
            resolved: AtomicBool::new(false),
            redirected: AtomicBool::new(false),
            journal: None,
        }
    }

    #[test]
    fn units_round_up_and_never_zero() {
        assert_eq!(job_units(1000, 512), 2);
        assert_eq!(job_units(512, 512), 1);
        assert_eq!(job_units(1, 512), 1);
        assert_eq!(job_units(0, 512), 1);
        // Degenerate unit size clamps to one pattern per unit.
        assert_eq!(job_units(100, 0), 100);
    }

    #[test]
    fn incompatible_jobs_never_fuse() {
        let jobs = vec![
            job_with(0, 0, 4, 64),
            job_with(1, 1, 4, 64), // different dataset
            job_with(2, 0, 2, 64), // different rate count
            job_with(3, 0, 4, 64), // fuses with job 0
        ];
        let batches = form_batches(jobs, &BatchPolicy::default(), &|_| 512);
        assert_eq!(batches.len(), 3);
        let ids: Vec<Vec<u64>> = batches
            .iter()
            .map(|b| b.jobs.iter().map(|j| j.id.0).collect())
            .collect();
        assert_eq!(ids, vec![vec![0, 3], vec![1], vec![2]]);
    }

    #[test]
    fn max_jobs_cap_cuts_batches() {
        let jobs: Vec<Job> = (0..5).map(|i| job_with(i, 0, 4, 64)).collect();
        let policy = BatchPolicy {
            max_jobs: 2,
            ..BatchPolicy::default()
        };
        let batches = form_batches(jobs, &policy, &|_| 512);
        assert_eq!(
            batches.iter().map(|b| b.jobs.len()).collect::<Vec<_>>(),
            vec![2, 2, 1]
        );
    }

    #[test]
    fn max_units_cap_cuts_batches_and_accounts_units() {
        // 64 patterns at 32-pattern units = 2 units per job.
        let jobs: Vec<Job> = (0..3).map(|i| job_with(i, 0, 4, 64)).collect();
        let policy = BatchPolicy {
            max_jobs: 32,
            max_units: 4,
            ..BatchPolicy::default()
        };
        let batches = form_batches(jobs, &policy, &|_| 32);
        assert_eq!(
            batches.iter().map(|b| (b.jobs.len(), b.units)).collect::<Vec<_>>(),
            vec![(2, 4), (1, 2)]
        );
    }

    #[test]
    fn oversized_job_still_gets_a_batch() {
        // A single job larger than max_units must not be starved.
        let jobs = vec![job_with(0, 0, 4, 64)];
        let policy = BatchPolicy {
            max_units: 1,
            ..BatchPolicy::default()
        };
        let batches = form_batches(jobs, &policy, &|_| 16);
        assert_eq!(batches.len(), 1);
        // True units, not clamped to the cap: the batch must read as
        // over budget so nothing else fuses into it.
        assert_eq!(batches[0].units, 4);
    }

    #[test]
    fn oversized_job_does_not_accept_batchmates() {
        // Regression: clamping an oversized job's units to max_units
        // made its batch look underfull, so a compatible follow-up job
        // fused into an over-cap batch. The oversized job must ride
        // alone and the small job must open its own batch.
        let jobs = vec![job_with(0, 0, 4, 64), job_with(1, 0, 4, 16)];
        let policy = BatchPolicy {
            max_units: 2,
            ..BatchPolicy::default()
        };
        let batches = form_batches(jobs, &policy, &|_| 16);
        assert_eq!(
            batches.iter().map(|b| (b.jobs.len(), b.units)).collect::<Vec<_>>(),
            vec![(1, 4), (1, 1)]
        );
    }

    #[test]
    fn unit_size_tracks_rate_count() {
        // A pool reports smaller unit chunks for wider (more-rate)
        // geometries; the same pattern count must then cost more units.
        let jobs = vec![job_with(0, 0, 4, 64), job_with(1, 0, 8, 64)];
        let policy = BatchPolicy {
            max_units: 64,
            ..BatchPolicy::default()
        };
        let per_rate = |r: usize| if r > 4 { 16 } else { 32 };
        let batches = form_batches(jobs, &policy, &per_rate);
        // Different rate counts never share a key, so two batches.
        assert_eq!(
            batches.iter().map(|b| b.units).collect::<Vec<_>>(),
            vec![2, 4]
        );
    }

    #[test]
    fn gate_blocks_until_opened() {
        let gate = Gate::new(false);
        let opened = {
            let gate = Arc::clone(&gate);
            std::thread::spawn(move || {
                gate.wait_open();
                true
            })
        };
        std::thread::sleep(Duration::from_millis(5));
        assert!(!opened.is_finished());
        gate.open();
        assert!(opened.join().expect("join"));
    }
}

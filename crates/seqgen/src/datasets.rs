//! The paper's benchmark data sets.
//!
//! §4 of the paper: trees with 10, 20, 50 and 100 leaves; for every tree,
//! sub-alignments with exactly 1,000 / 5,000 / 20,000 / 50,000 *distinct*
//! column patterns extracted from long simulated alignments under GTR+Γ;
//! plus one real-world phylogenomic set of 20 mammals with 8,543 distinct
//! patterns. Data sets are denoted `taxa_columns` (e.g. `50_20K`).
//!
//! We reproduce the same pipeline: simulate long alignments with
//! [`crate::evolve`], then keep exactly the requested number of distinct
//! patterns with their observed multiplicities.

use crate::evolve::evolve_alignment;
use crate::yule::random_unrooted_tree;
use plf_phylo::alignment::PatternAlignment;
use plf_phylo::dna::StateMask;
use plf_phylo::model::{GtrParams, SiteModel};
use plf_phylo::tree::Tree;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashMap;

/// Shape of one benchmark input: number of taxa (leaves) and number of
/// distinct column patterns.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DatasetSpec {
    /// Number of taxa (tree leaves); drives the number of PLF calls.
    pub taxa: usize,
    /// Number of distinct site patterns; drives the parallel loop length.
    pub patterns: usize,
}

impl DatasetSpec {
    /// New spec.
    pub const fn new(taxa: usize, patterns: usize) -> DatasetSpec {
        DatasetSpec { taxa, patterns }
    }

    /// The paper's `taxa_columns` label, e.g. `10_1K`, `100_50K`, `20_8543`.
    pub fn label(&self) -> String {
        let cols = if self.patterns.is_multiple_of(1000) {
            format!("{}K", self.patterns / 1000)
        } else {
            format!("{}", self.patterns)
        };
        format!("{}_{}", self.taxa, cols)
    }
}

impl std::fmt::Display for DatasetSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.label())
    }
}

/// The 4×4 grid of §4: {10,20,50,100} taxa × {1K,5K,20K,50K} patterns,
/// ordered exactly as the x-axes of Figures 9–11.
pub fn paper_grid() -> Vec<DatasetSpec> {
    let mut out = Vec::with_capacity(16);
    for &patterns in &[1_000usize, 5_000, 20_000, 50_000] {
        for &taxa in &[10usize, 20, 50, 100] {
            out.push(DatasetSpec::new(taxa, patterns));
        }
    }
    out
}

/// The real-world mammalian set's shape: 20 organisms, 8,543 distinct
/// patterns (out of 28,740 columns).
pub fn real_world() -> DatasetSpec {
    DatasetSpec::new(20, 8_543)
}

/// Default simulation model: a GTR+Γ(4) parameterization typical of
/// empirical DNA studies (unequal frequencies, transition bias, α=0.5).
pub fn default_model() -> SiteModel {
    SiteModel::gtr_gamma4(
        GtrParams::gtr([1.2, 3.9, 0.9, 1.1, 4.5, 1.0], [0.30, 0.21, 0.24, 0.25]),
        0.5,
    )
    .expect("default parameters are valid")
}

/// A generated benchmark input: the guide tree plus the compressed data.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// Shape it was generated for.
    pub spec: DatasetSpec,
    /// The tree the sequences evolved on (also the MCMC starting tree).
    pub tree: Tree,
    /// Pattern-compressed alignment with exactly `spec.patterns` patterns.
    pub data: PatternAlignment,
}

/// Generate a dataset deterministically from `seed`.
///
/// Sequences are evolved in batches until the requested number of
/// distinct patterns has been observed; the first `spec.patterns`
/// distinct patterns are kept with their accumulated multiplicities —
/// the same "extract a sub-alignment with N distinct columns" procedure
/// as the paper's perl script.
///
/// # Panics
/// Panics if the requested pattern diversity is unreachable within a
/// generous site budget (only possible for degenerate specs, e.g. more
/// patterns than `4^taxa`).
pub fn generate(spec: DatasetSpec, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let tree = random_unrooted_tree(spec.taxa, 0.25, &mut rng);
    let model = default_model();

    let n_taxa = spec.taxa;
    let mut index: HashMap<Vec<u8>, usize> = HashMap::new();
    let mut patterns: Vec<Vec<StateMask>> = vec![Vec::new(); n_taxa];
    let mut weights: Vec<u32> = Vec::new();

    // The paper evolved 500,000-column alignments; we stop as soon as the
    // requested diversity is reached, with the same order of magnitude as
    // an upper bound.
    let max_sites = (spec.patterns * 200).max(1_000_000);
    let mut sites_done = 0usize;
    let mut key = Vec::with_capacity(n_taxa);
    while weights.len() < spec.patterns {
        assert!(
            sites_done < max_sites,
            "could not reach {} distinct patterns for {} taxa within {} sites",
            spec.patterns,
            n_taxa,
            max_sites
        );
        let batch = (spec.patterns - weights.len()).max(512) * 2;
        let batch = batch.min(max_sites - sites_done);
        let aln = evolve_alignment(&tree, &model, batch, &mut rng);
        sites_done += batch;
        for site in 0..aln.n_sites() {
            key.clear();
            key.extend((0..n_taxa).map(|t| aln.row(t)[site].bits()));
            if let Some(&p) = index.get(&key) {
                weights[p] += 1;
            } else if weights.len() < spec.patterns {
                index.insert(key.clone(), weights.len());
                for (t, col) in patterns.iter_mut().enumerate() {
                    col.push(aln.row(t)[site]);
                }
                weights.push(1);
            }
        }
    }

    let taxa = tree
        .leaves()
        .iter()
        .map(|&l| tree.node(l).name.clone().expect("leaves named"))
        .collect();
    Dataset {
        spec,
        tree,
        data: PatternAlignment::from_patterns(taxa, patterns, weights),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_matches_paper() {
        let grid = paper_grid();
        assert_eq!(grid.len(), 16);
        assert_eq!(grid[0].label(), "10_1K");
        assert_eq!(grid[3].label(), "100_1K");
        assert_eq!(grid[15].label(), "100_50K");
    }

    #[test]
    fn real_world_label() {
        assert_eq!(real_world().label(), "20_8543");
    }

    #[test]
    fn generate_exact_pattern_count() {
        let d = generate(DatasetSpec::new(6, 150), 7);
        assert_eq!(d.data.n_patterns(), 150);
        assert_eq!(d.data.n_taxa(), 6);
        assert_eq!(d.tree.n_leaves(), 6);
        assert!(d.data.n_sites() >= 150);
    }

    #[test]
    fn generated_patterns_are_distinct() {
        let d = generate(DatasetSpec::new(5, 100), 11);
        // Re-compress the decompressed alignment; pattern count must not shrink.
        let re = d.data.decompress().compress();
        assert_eq!(re.n_patterns(), 100);
    }

    #[test]
    fn deterministic_by_seed() {
        let a = generate(DatasetSpec::new(5, 60), 3);
        let b = generate(DatasetSpec::new(5, 60), 3);
        assert_eq!(a.tree.to_newick(), b.tree.to_newick());
        assert_eq!(a.data.weights(), b.data.weights());
        let c = generate(DatasetSpec::new(5, 60), 4);
        assert_ne!(a.tree.to_newick(), c.tree.to_newick());
    }

    #[test]
    fn taxa_names_match_tree_leaves() {
        let d = generate(DatasetSpec::new(7, 40), 5);
        let mut from_tree: Vec<String> = d
            .tree
            .leaves()
            .iter()
            .map(|&l| d.tree.node(l).name.clone().unwrap())
            .collect();
        let mut from_data = d.data.taxa().to_vec();
        from_tree.sort();
        from_data.sort();
        assert_eq!(from_tree, from_data);
    }

    #[test]
    #[ignore = "full-scale grid cell; run with --ignored in release"]
    fn full_scale_grid_cell_generates() {
        // The paper's largest cell: 100 taxa x 50K distinct patterns.
        let d = generate(DatasetSpec::new(100, 50_000), 1);
        assert_eq!(d.data.n_patterns(), 50_000);
        assert_eq!(d.data.n_taxa(), 100);
    }

    #[test]
    fn labels_for_non_round_sizes() {
        assert_eq!(DatasetSpec::new(20, 8543).label(), "20_8543");
        assert_eq!(DatasetSpec::new(50, 20000).label(), "50_20K");
    }
}

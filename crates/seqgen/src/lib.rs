//! # plf-seqgen — synthetic data generation (Seq-Gen substitute)
//!
//! The paper generates its inputs with Seq-Gen v1.3.2: artificial DNA
//! alignments evolved under GTR+Γ along trees of 10–100 leaves, from
//! which sub-alignments with fixed numbers of *distinct column patterns*
//! are extracted (§4). This crate reimplements that pipeline:
//!
//! * [`yule`] — random unrooted binary tree generation,
//! * [`evolve`] — Monte-Carlo sequence evolution along a tree,
//! * [`datasets`] — the paper's 16-cell benchmark grid plus the
//!   real-world 20-taxon/8,543-pattern shape, generated deterministically
//!   from seeds.

#![warn(missing_docs)]

pub mod datasets;
pub mod evolve;
pub mod yule;

pub use datasets::{default_model, generate, paper_grid, real_world, Dataset, DatasetSpec};
pub use evolve::evolve_alignment;
pub use yule::{random_tree_for_taxa, random_unrooted_tree};

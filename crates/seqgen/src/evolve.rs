//! Monte-Carlo simulation of DNA evolution along a tree — the Seq-Gen
//! substitute (Rambaut & Grassly 1997).
//!
//! Each site draws a root state from the stationary distribution and a
//! discrete-Γ rate category, then mutates down every branch according to
//! `P(t · r)` in double precision. Leaves collect into an [`Alignment`].

use plf_phylo::alignment::Alignment;
use plf_phylo::dna::{Nucleotide, StateMask};
use plf_phylo::model::SiteModel;
use plf_phylo::tree::Tree;
use rand::Rng;

/// Sample an index from a (not necessarily exactly normalized) discrete
/// distribution.
fn sample_discrete<R: Rng>(probs: &[f64; 4], rng: &mut R) -> usize {
    let total: f64 = probs.iter().sum();
    let mut u = rng.gen_range(0.0..total);
    for (i, &p) in probs.iter().enumerate() {
        if u < p {
            return i;
        }
        u -= p;
    }
    3
}

/// Simulate `n_sites` columns of sequence evolution on `tree` under
/// `model`, returning the leaf alignment (taxa in the tree's leaf order).
pub fn evolve_alignment<R: Rng>(
    tree: &Tree,
    model: &SiteModel,
    n_sites: usize,
    rng: &mut R,
) -> Alignment {
    assert!(n_sites > 0);
    let n_rates = model.n_rates();
    let freqs = model.freqs();
    let order = {
        // Preorder: parents before children, so states propagate down.
        let mut post = tree.postorder();
        post.reverse();
        post
    };
    // Per-branch transition matrices for every rate category, f64.
    let mut branch_mats: Vec<Option<Vec<[[f64; 4]; 4]>>> = vec![None; tree.n_nodes()];
    for id in tree.node_ids() {
        if id != tree.root() {
            let t = tree.node(id).branch;
            branch_mats[id.0] =
                Some((0..n_rates).map(|k| model.transition_matrix_f64(t, k)).collect());
        }
    }

    let leaves = tree.leaves();
    let leaf_slot: Vec<Option<usize>> = {
        let mut v = vec![None; tree.n_nodes()];
        for (slot, &l) in leaves.iter().enumerate() {
            v[l.0] = Some(slot);
        }
        v
    };
    let mut seqs: Vec<Vec<StateMask>> = vec![Vec::with_capacity(n_sites); leaves.len()];
    let mut state: Vec<u8> = vec![0; tree.n_nodes()];

    for _site in 0..n_sites {
        let category = rng.gen_range(0..n_rates);
        for &id in &order {
            let s = match tree.node(id).parent {
                None => sample_discrete(&freqs, rng),
                Some(parent) => {
                    let mats = branch_mats[id.0].as_ref().expect("non-root branch");
                    let row = &mats[category][state[parent.0] as usize];
                    sample_discrete(row, rng)
                }
            };
            state[id.0] = s as u8;
            if let Some(slot) = leaf_slot[id.0] {
                seqs[slot].push(StateMask::of(Nucleotide::from_index(s)));
            }
        }
    }

    let taxa = leaves
        .iter()
        .map(|&l| tree.node(l).name.clone().expect("leaves are named"))
        .collect();
    Alignment::new(taxa, seqs).expect("simulated alignment is rectangular")
}

/// Sampled base-frequency summary of an alignment (for statistical tests).
pub fn empirical_frequencies(aln: &Alignment) -> [f64; 4] {
    let mut counts = [0u64; 4];
    let mut total = 0u64;
    for t in 0..aln.n_taxa() {
        for &m in aln.row(t) {
            if let Some(n) = m.as_nucleotide() {
                counts[n.index()] += 1;
                total += 1;
            }
        }
    }
    std::array::from_fn(|i| counts[i] as f64 / total.max(1) as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::yule::random_unrooted_tree;
    use plf_phylo::model::GtrParams;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn alignment_shape() {
        let mut rng = StdRng::seed_from_u64(1);
        let tree = random_unrooted_tree(8, 0.1, &mut rng);
        let model = SiteModel::gtr_gamma4(GtrParams::jc69(), 0.5).unwrap();
        let aln = evolve_alignment(&tree, &model, 100, &mut rng);
        assert_eq!(aln.n_taxa(), 8);
        assert_eq!(aln.n_sites(), 100);
    }

    #[test]
    fn zero_branch_lengths_give_identical_sequences() {
        let tree = plf_phylo::tree::Tree::from_newick("(a:0.0,b:0.0,c:0.0);").unwrap();
        let model = SiteModel::jc69();
        let mut rng = StdRng::seed_from_u64(2);
        let aln = evolve_alignment(&tree, &model, 50, &mut rng);
        assert_eq!(aln.row(0), aln.row(1));
        assert_eq!(aln.row(1), aln.row(2));
    }

    #[test]
    fn long_branches_decorrelate_sequences() {
        let tree = plf_phylo::tree::Tree::from_newick("(a:50.0,b:50.0,c:50.0);").unwrap();
        let model = SiteModel::jc69();
        let mut rng = StdRng::seed_from_u64(3);
        let aln = evolve_alignment(&tree, &model, 2000, &mut rng);
        let matches = aln
            .row(0)
            .iter()
            .zip(aln.row(1))
            .filter(|(x, y)| x == y)
            .count();
        // Saturated: expect ~25% identity.
        let frac = matches as f64 / 2000.0;
        assert!((frac - 0.25).abs() < 0.05, "identity fraction {frac}");
    }

    #[test]
    fn stationary_frequencies_recovered() {
        let mut rng = StdRng::seed_from_u64(4);
        let tree = random_unrooted_tree(10, 0.2, &mut rng);
        let freqs = [0.4, 0.3, 0.2, 0.1];
        let model = SiteModel::gtr_gamma4(GtrParams::hky85(2.0, freqs), 1.0).unwrap();
        let aln = evolve_alignment(&tree, &model, 5000, &mut rng);
        let emp = empirical_frequencies(&aln);
        for s in 0..4 {
            assert!((emp[s] - freqs[s]).abs() < 0.03, "state {s}: {} vs {}", emp[s], freqs[s]);
        }
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let tree = random_unrooted_tree(6, 0.1, &mut StdRng::seed_from_u64(5));
        let model = SiteModel::jc69();
        let a = evolve_alignment(&tree, &model, 30, &mut StdRng::seed_from_u64(9));
        let b = evolve_alignment(&tree, &model, 30, &mut StdRng::seed_from_u64(9));
        for t in 0..a.n_taxa() {
            assert_eq!(a.row(t), b.row(t));
        }
    }
}

//! Random phylogeny generation.
//!
//! The paper obtains its input trees "from analyses of real data sets";
//! lacking those, we grow random unrooted binary trees by stochastic
//! leaf attachment (a Yule-type process) with exponentially distributed
//! branch lengths — the standard way simulation studies produce
//! realistic topologies.

use plf_phylo::tree::{Node, NodeId, Tree};
use rand::Rng;

/// Grow a random unrooted binary tree over `n_leaves` taxa named
/// `t0..t{n-1}`, with i.i.d. Exp(mean = `branch_mean`) branch lengths.
///
/// Starts from the 3-leaf star and repeatedly splits a uniformly chosen
/// branch to attach the next leaf, so every unrooted topology is
/// reachable.
///
/// # Panics
/// Panics if `n_leaves < 3` (unrooted trees need at least three tips) or
/// `branch_mean <= 0`.
pub fn random_unrooted_tree<R: Rng>(n_leaves: usize, branch_mean: f64, rng: &mut R) -> Tree {
    assert!(n_leaves >= 3, "unrooted binary trees need >= 3 leaves");
    assert!(branch_mean > 0.0);
    let draw = |rng: &mut R| -> f64 {
        // Inverse-CDF exponential; clamp away from exact zero.
        let u: f64 = rng.gen_range(1e-12..1.0);
        (-u.ln() * branch_mean).max(1e-6)
    };

    // Node arena; root is node 0 with three leaf children.
    let mut nodes = vec![Node {
        parent: None,
        children: Vec::new(),
        branch: 0.0,
        name: None,
    }];
    let root = NodeId(0);
    for i in 0..3 {
        let id = NodeId(nodes.len());
        nodes.push(Node {
            parent: Some(root),
            children: Vec::new(),
            branch: draw(rng),
            name: Some(format!("t{i}")),
        });
        nodes[root.0].children.push(id);
    }

    for i in 3..n_leaves {
        // Choose a uniform random branch = a uniform random non-root node.
        let target = NodeId(rng.gen_range(1..nodes.len()));
        let parent = nodes[target.0].parent.expect("non-root has parent");
        // Split the branch with a new internal node.
        let split = NodeId(nodes.len());
        let old_len = nodes[target.0].branch;
        let cut: f64 = rng.gen_range(0.05..0.95);
        nodes.push(Node {
            parent: Some(parent),
            children: vec![target],
            branch: (old_len * cut).max(1e-6),
            name: None,
        });
        let slot = nodes[parent.0]
            .children
            .iter()
            .position(|&c| c == target)
            .expect("target is registered under its parent");
        nodes[parent.0].children[slot] = split;
        nodes[target.0].parent = Some(split);
        nodes[target.0].branch = (old_len * (1.0 - cut)).max(1e-6);
        // Attach the new leaf to the split node.
        let leaf = NodeId(nodes.len());
        nodes.push(Node {
            parent: Some(split),
            children: Vec::new(),
            branch: draw(rng),
            name: Some(format!("t{i}")),
        });
        nodes[split.0].children.push(leaf);
    }

    Tree::from_parts(nodes, root).expect("construction preserves invariants")
}

/// Grow a random unrooted binary tree whose leaves carry the given
/// taxon names (for starting an analysis from an alignment without a
/// user-supplied tree).
///
/// # Panics
/// Panics if fewer than 3 names are given or names repeat.
pub fn random_tree_for_taxa<R: Rng>(names: &[String], branch_mean: f64, rng: &mut R) -> Tree {
    assert!(names.len() >= 3, "need at least 3 taxa");
    let unique: std::collections::HashSet<&String> = names.iter().collect();
    assert_eq!(unique.len(), names.len(), "duplicate taxon names");
    let mut tree = random_unrooted_tree(names.len(), branch_mean, rng);
    // Leaves are named t0..tN in creation order; remap positionally.
    let leaves = tree.leaves();
    let mut order: Vec<(usize, NodeId)> = leaves
        .iter()
        .map(|&l| {
            let n = tree.node(l).name.as_deref().unwrap();
            (n[1..].parse::<usize>().expect("generated leaf name"), l)
        })
        .collect();
    order.sort();
    for ((_, leaf), name) in order.into_iter().zip(names) {
        tree.node_mut(leaf).name = Some(name.clone());
    }
    debug_assert!(tree.validate().is_ok());
    tree
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn sizes_are_correct() {
        let mut rng = StdRng::seed_from_u64(1);
        for n in [3usize, 4, 10, 50, 100] {
            let t = random_unrooted_tree(n, 0.1, &mut rng);
            assert_eq!(t.n_leaves(), n);
            // Unrooted binary: n leaves, n-2 internal nodes.
            assert_eq!(t.n_nodes(), 2 * n - 2);
            assert!(t.validate().is_ok());
        }
    }

    #[test]
    fn leaf_names_unique_and_complete() {
        let mut rng = StdRng::seed_from_u64(2);
        let t = random_unrooted_tree(20, 0.1, &mut rng);
        let mut names: Vec<String> = t
            .leaves()
            .iter()
            .map(|&l| t.node(l).name.clone().unwrap())
            .collect();
        names.sort();
        let mut expect: Vec<String> = (0..20).map(|i| format!("t{i}")).collect();
        expect.sort();
        assert_eq!(names, expect);
    }

    #[test]
    fn branch_lengths_positive() {
        let mut rng = StdRng::seed_from_u64(3);
        let t = random_unrooted_tree(30, 0.2, &mut rng);
        for id in t.branches() {
            assert!(t.node(id).branch > 0.0);
        }
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let t1 = random_unrooted_tree(15, 0.1, &mut StdRng::seed_from_u64(42));
        let t2 = random_unrooted_tree(15, 0.1, &mut StdRng::seed_from_u64(42));
        assert_eq!(t1.to_newick(), t2.to_newick());
    }

    #[test]
    fn different_seeds_differ() {
        let t1 = random_unrooted_tree(15, 0.1, &mut StdRng::seed_from_u64(1));
        let t2 = random_unrooted_tree(15, 0.1, &mut StdRng::seed_from_u64(2));
        assert_ne!(t1.to_newick(), t2.to_newick());
    }

    #[test]
    fn named_tree_carries_exact_taxa() {
        let names: Vec<String> = ["ape", "bat", "cow", "dog", "elk"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let mut rng = StdRng::seed_from_u64(4);
        let t = random_tree_for_taxa(&names, 0.1, &mut rng);
        assert!(t.validate().is_ok());
        let mut got: Vec<String> = t
            .leaves()
            .iter()
            .map(|&l| t.node(l).name.clone().unwrap())
            .collect();
        got.sort();
        let mut want = names.clone();
        want.sort();
        assert_eq!(got, want);
    }

    #[test]
    #[should_panic(expected = "duplicate taxon names")]
    fn named_tree_rejects_duplicates() {
        let names = vec!["a".to_string(), "a".to_string(), "b".to_string()];
        random_tree_for_taxa(&names, 0.1, &mut StdRng::seed_from_u64(1));
    }

    #[test]
    fn mean_branch_length_tracks_parameter() {
        let mut rng = StdRng::seed_from_u64(7);
        let t = random_unrooted_tree(200, 0.5, &mut rng);
        // Leaf branches are untouched Exp(0.5) draws; internal branches
        // get split, so test the leaves only.
        let leaf_mean: f64 = t
            .leaves()
            .iter()
            .map(|&l| t.node(l).branch)
            .sum::<f64>()
            / t.n_leaves() as f64;
        assert!((leaf_mean - 0.5).abs() < 0.15, "mean {leaf_mean}");
    }
}

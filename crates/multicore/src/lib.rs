//! # plf-multicore — general-purpose multi-core backend (OpenMP analogue)
//!
//! Implements §3.2 of the paper: outermost-loop parallelization of the
//! three PLF kernels, here with rayon instead of OpenMP, plus the
//! analytic timing model of the three Figure 9 systems (2×Xeon(4),
//! 4×Opteron(4), 8×Opteron(2)).

#![warn(missing_docs)]

pub mod backend;
pub mod model;
pub mod persistent;

pub use backend::RayonBackend;
pub use model::MultiCoreModel;
pub use persistent::PersistentPoolBackend;

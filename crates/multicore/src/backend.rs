//! Rayon-based parallel PLF backend — the OpenMP analogue.
//!
//! §3.2 of the paper: "parallelize the outermost loop, thus reducing the
//! parallelization overheads", with one static chunk per core. We do the
//! same: the pattern loop is split into `n_threads` contiguous chunks,
//! each processed by the scalar/SIMD range kernels, with rayon's
//! fork-join standing in for `#pragma omp parallel for`.

use plf_phylo::clv::{Clv, TransitionMatrices};
use plf_phylo::dna::N_STATES;
use plf_phylo::kernels::{scalar, simd4, FusedDown, FusedRoot, FusedScale, PlfBackend, SimdSchedule};
use plf_phylo::metrics::{Kernel, KernelTimer, PlfCounters};
use plf_phylo::resilience::{FaultInjector, FaultSite, PlfError};
use rayon::prelude::*;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Parallel host backend over a dedicated rayon pool.
pub struct RayonBackend {
    pool: rayon::ThreadPool,
    n_threads: usize,
    schedule: Option<SimdSchedule>,
    injector: Option<Arc<FaultInjector>>,
    metrics: Option<Arc<PlfCounters>>,
}

impl RayonBackend {
    /// Build a backend with `n_threads` worker threads using the
    /// column-wise SIMD kernels (bitwise-identical to the scalar
    /// reference).
    pub fn new(n_threads: usize) -> Result<RayonBackend, PlfError> {
        RayonBackend::with_kernel(n_threads, Some(SimdSchedule::ColWise))
    }

    /// Choose the kernel: `None` = scalar reference, `Some(schedule)` =
    /// 4-wide SIMD.
    pub fn with_kernel(
        n_threads: usize,
        schedule: Option<SimdSchedule>,
    ) -> Result<RayonBackend, PlfError> {
        if n_threads == 0 {
            return Err(PlfError::Config(
                "rayon backend needs at least one thread".into(),
            ));
        }
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(n_threads)
            .build()
            .map_err(|e| PlfError::Config(format!("thread pool construction: {e}")))?;
        Ok(RayonBackend {
            pool,
            n_threads,
            schedule,
            injector: None,
            metrics: None,
        })
    }

    /// Attach a fault injector (worker panics, output corruption).
    pub fn with_fault_injector(mut self, injector: Arc<FaultInjector>) -> RayonBackend {
        self.injector = Some(injector);
        self
    }

    /// Attach shared observability counters (per-kernel invocations,
    /// patterns, wall time, rescale events).
    pub fn with_metrics(mut self, counters: Arc<PlfCounters>) -> RayonBackend {
        self.metrics = Some(counters);
        self
    }

    /// Number of worker threads.
    pub fn n_threads(&self) -> usize {
        self.n_threads
    }

    /// Floats per chunk for `m` patterns of stride `stride`: one
    /// contiguous chunk per thread (OpenMP static schedule).
    fn chunk_len(&self, m: usize, stride: usize) -> usize {
        m.div_ceil(self.n_threads).max(1) * stride
    }

    /// Roll the worker-panic fault *before* entering the pool; the hit
    /// is delivered inside worker chunk 0 so the panic genuinely crosses
    /// the fork-join boundary.
    fn worker_fault_armed(&self) -> bool {
        self.injector
            .as_ref()
            .is_some_and(|inj| inj.fire(FaultSite::Worker))
    }

    /// Roll and apply output corruption after the parallel section.
    fn maybe_corrupt(&self, out: &mut [f32]) {
        if let Some(inj) = &self.injector {
            if let Some(kind) = inj.fire_corruption() {
                inj.corrupt(out, kind);
            }
        }
    }
}

impl PlfBackend for RayonBackend {
    fn name(&self) -> String {
        format!("rayon-{}", self.n_threads)
    }

    fn begin_evaluation(&mut self) {
        if let Some(m) = &self.metrics {
            m.record_evaluation();
        }
    }

    fn preferred_batch_patterns(&self, n_rates: usize) -> usize {
        let _ = n_rates;
        // One cache-friendly 256-pattern chunk per worker thread, so a
        // fused work unit keeps the whole pool busy.
        256 * self.n_threads
    }

    fn cond_like_down(
        &mut self,
        left: &Clv,
        p_left: &TransitionMatrices,
        right: &Clv,
        p_right: &TransitionMatrices,
        out: &mut Clv,
    ) -> Result<(), PlfError> {
        let _timer = KernelTimer::start(self.metrics.as_ref(), Kernel::Down, out.n_patterns());
        let n_rates = out.n_rates();
        let stride = n_rates * N_STATES;
        let chunk = self.chunk_len(out.n_patterns(), stride);
        let schedule = self.schedule;
        let panic_armed = self.worker_fault_armed();
        let (l, r) = (left.as_slice(), right.as_slice());
        self.pool.install(|| {
            out.as_mut_slice()
                .par_chunks_mut(chunk)
                .enumerate()
                .for_each(|(ci, o)| {
                    if panic_armed && ci == 0 {
                        panic!("injected fault: rayon worker panic");
                    }
                    let start = ci * chunk;
                    let (lc, rc) = (&l[start..start + o.len()], &r[start..start + o.len()]);
                    match schedule {
                        None => scalar::cond_like_down_range(lc, p_left, rc, p_right, o, n_rates),
                        Some(s) => {
                            simd4::cond_like_down_range(s, lc, p_left, rc, p_right, o, n_rates)
                        }
                    }
                });
        });
        self.maybe_corrupt(out.as_mut_slice());
        Ok(())
    }

    fn cond_like_root(
        &mut self,
        a: &Clv,
        p_a: &TransitionMatrices,
        b: &Clv,
        p_b: &TransitionMatrices,
        c: Option<(&Clv, &TransitionMatrices)>,
        out: &mut Clv,
    ) -> Result<(), PlfError> {
        let _timer = KernelTimer::start(self.metrics.as_ref(), Kernel::Root, out.n_patterns());
        let n_rates = out.n_rates();
        let stride = n_rates * N_STATES;
        let chunk = self.chunk_len(out.n_patterns(), stride);
        let schedule = self.schedule;
        let panic_armed = self.worker_fault_armed();
        let (sa, sb) = (a.as_slice(), b.as_slice());
        let sc = c.map(|(clv, p)| (clv.as_slice(), p));
        self.pool.install(|| {
            out.as_mut_slice()
                .par_chunks_mut(chunk)
                .enumerate()
                .for_each(|(ci, o)| {
                    if panic_armed && ci == 0 {
                        panic!("injected fault: rayon worker panic");
                    }
                    let start = ci * chunk;
                    let range = start..start + o.len();
                    let ca = &sa[range.clone()];
                    let cb = &sb[range.clone()];
                    let cc = sc.map(|(s, p)| (&s[range.clone()], p));
                    match schedule {
                        None => scalar::cond_like_root_range(ca, p_a, cb, p_b, cc, o, n_rates),
                        Some(s) => {
                            simd4::cond_like_root_range(s, ca, p_a, cb, p_b, cc, o, n_rates)
                        }
                    }
                });
        });
        self.maybe_corrupt(out.as_mut_slice());
        Ok(())
    }

    fn cond_like_scaler(&mut self, clv: &mut Clv, ln_scalers: &mut [f32]) -> Result<(), PlfError> {
        let _timer = KernelTimer::start(self.metrics.as_ref(), Kernel::Scale, clv.n_patterns());
        let n_rates = clv.n_rates();
        let stride = n_rates * N_STATES;
        let m = clv.n_patterns();
        let chunk = self.chunk_len(m, stride);
        let chunk_patterns = chunk / stride;
        let schedule = self.schedule;
        let panic_armed = self.worker_fault_armed();
        let rescaled = AtomicU64::new(0);
        self.pool.install(|| {
            clv.as_mut_slice()
                .par_chunks_mut(chunk)
                .zip(ln_scalers.par_chunks_mut(chunk_patterns))
                .enumerate()
                .for_each(|(ci, (c, s))| {
                    if panic_armed && ci == 0 {
                        panic!("injected fault: rayon worker panic");
                    }
                    let n = match schedule {
                        None => scalar::cond_like_scaler_range(c, s, n_rates),
                        Some(_) => simd4::cond_like_scaler_range(c, s, n_rates),
                    };
                    rescaled.fetch_add(n, Ordering::Relaxed);
                });
        });
        if let Some(counters) = &self.metrics {
            counters.record_rescaled(rescaled.into_inner());
        }
        if let Some(inj) = &self.injector {
            if let Some(kind) = inj.fire_corruption() {
                inj.corrupt(ln_scalers, kind);
            }
        }
        Ok(())
    }

    // Fused overrides: the per-job loop would fork-join the pool once
    // per op per job; instead all jobs' current ops are flattened into
    // one chunk-task list and executed under a single `install`, so the
    // whole batch pays one fork-join per tree level. Chunks never span
    // ops and patterns are independent, so results are bitwise
    // identical to the per-op path.

    fn cond_like_down_fused(&mut self, ops: &mut [FusedDown<'_>]) -> Result<(), PlfError> {
        let total_m: usize = ops.iter().map(|op| op.out.n_patterns()).sum();
        let _timer = KernelTimer::start(self.metrics.as_ref(), Kernel::Down, total_m);
        let chunk_patterns = total_m.div_ceil(self.n_threads).max(1);
        let schedule = self.schedule;
        let panic_armed = self.worker_fault_armed();
        type DownTask<'t> = (
            usize,
            &'t [f32],
            &'t TransitionMatrices,
            &'t [f32],
            &'t TransitionMatrices,
            &'t mut [f32],
        );
        let mut tasks: Vec<DownTask<'_>> = Vec::new();
        for op in ops.iter_mut() {
            let n_rates = op.out.n_rates();
            let chunk = chunk_patterns * n_rates * N_STATES;
            let (l, r) = (op.left.as_slice(), op.right.as_slice());
            for (ci, o) in op.out.as_mut_slice().chunks_mut(chunk).enumerate() {
                let start = ci * chunk;
                tasks.push((
                    n_rates,
                    &l[start..start + o.len()],
                    op.p_left,
                    &r[start..start + o.len()],
                    op.p_right,
                    o,
                ));
            }
        }
        self.pool.install(|| {
            tasks
                .into_par_iter()
                .enumerate()
                .for_each(|(ti, (n_rates, lc, p_l, rc, p_r, o))| {
                    if panic_armed && ti == 0 {
                        panic!("injected fault: rayon worker panic");
                    }
                    match schedule {
                        None => scalar::cond_like_down_range(lc, p_l, rc, p_r, o, n_rates),
                        Some(s) => simd4::cond_like_down_range(s, lc, p_l, rc, p_r, o, n_rates),
                    }
                });
        });
        for op in ops.iter_mut() {
            self.maybe_corrupt(op.out.as_mut_slice());
        }
        Ok(())
    }

    fn cond_like_root_fused(&mut self, ops: &mut [FusedRoot<'_>]) -> Result<(), PlfError> {
        let total_m: usize = ops.iter().map(|op| op.out.n_patterns()).sum();
        let _timer = KernelTimer::start(self.metrics.as_ref(), Kernel::Root, total_m);
        let chunk_patterns = total_m.div_ceil(self.n_threads).max(1);
        let schedule = self.schedule;
        let panic_armed = self.worker_fault_armed();
        type RootTask<'t> = (
            usize,
            &'t [f32],
            &'t TransitionMatrices,
            &'t [f32],
            &'t TransitionMatrices,
            Option<(&'t [f32], &'t TransitionMatrices)>,
            &'t mut [f32],
        );
        let mut tasks: Vec<RootTask<'_>> = Vec::new();
        for op in ops.iter_mut() {
            let n_rates = op.out.n_rates();
            let chunk = chunk_patterns * n_rates * N_STATES;
            let (sa, sb) = (op.a.as_slice(), op.b.as_slice());
            let sc = op.c.map(|(clv, p)| (clv.as_slice(), p));
            for (ci, o) in op.out.as_mut_slice().chunks_mut(chunk).enumerate() {
                let start = ci * chunk;
                let range = start..start + o.len();
                tasks.push((
                    n_rates,
                    &sa[range.clone()],
                    op.p_a,
                    &sb[range.clone()],
                    op.p_b,
                    sc.map(|(s, p)| (&s[range.clone()], p)),
                    o,
                ));
            }
        }
        self.pool.install(|| {
            tasks
                .into_par_iter()
                .enumerate()
                .for_each(|(ti, (n_rates, ca, p_a, cb, p_b, cc, o))| {
                    if panic_armed && ti == 0 {
                        panic!("injected fault: rayon worker panic");
                    }
                    match schedule {
                        None => scalar::cond_like_root_range(ca, p_a, cb, p_b, cc, o, n_rates),
                        Some(s) => simd4::cond_like_root_range(s, ca, p_a, cb, p_b, cc, o, n_rates),
                    }
                });
        });
        for op in ops.iter_mut() {
            self.maybe_corrupt(op.out.as_mut_slice());
        }
        Ok(())
    }

    fn cond_like_scaler_fused(&mut self, ops: &mut [FusedScale<'_>]) -> Result<(), PlfError> {
        let total_m: usize = ops.iter().map(|op| op.clv.n_patterns()).sum();
        let _timer = KernelTimer::start(self.metrics.as_ref(), Kernel::Scale, total_m);
        let chunk_patterns = total_m.div_ceil(self.n_threads).max(1);
        let schedule = self.schedule;
        let panic_armed = self.worker_fault_armed();
        let rescaled = AtomicU64::new(0);
        let mut tasks: Vec<(usize, &mut [f32], &mut [f32])> = Vec::new();
        for op in ops.iter_mut() {
            let n_rates = op.clv.n_rates();
            let chunk = chunk_patterns * n_rates * N_STATES;
            for (c, s) in op
                .clv
                .as_mut_slice()
                .chunks_mut(chunk)
                .zip(op.ln_scalers.chunks_mut(chunk_patterns))
            {
                tasks.push((n_rates, c, s));
            }
        }
        self.pool.install(|| {
            tasks
                .into_par_iter()
                .enumerate()
                .for_each(|(ti, (n_rates, c, s))| {
                    if panic_armed && ti == 0 {
                        panic!("injected fault: rayon worker panic");
                    }
                    let n = match schedule {
                        None => scalar::cond_like_scaler_range(c, s, n_rates),
                        Some(_) => simd4::cond_like_scaler_range(c, s, n_rates),
                    };
                    rescaled.fetch_add(n, Ordering::Relaxed);
                });
        });
        if let Some(counters) = &self.metrics {
            counters.record_rescaled(rescaled.into_inner());
        }
        for op in ops.iter_mut() {
            if let Some(inj) = &self.injector {
                if let Some(kind) = inj.fire_corruption() {
                    inj.corrupt(op.ln_scalers, kind);
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use plf_phylo::alignment::Alignment;
    use plf_phylo::resilience::CorruptionKind;
    use plf_phylo::kernels::ScalarBackend;
    use plf_phylo::likelihood::TreeLikelihood;
    use plf_phylo::model::{GtrParams, SiteModel};
    use plf_phylo::tree::Tree;

    fn toy() -> (Tree, plf_phylo::alignment::PatternAlignment) {
        let tree = Tree::from_newick(
            "(((a:0.1,b:0.15):0.1,(c:0.2,d:0.1):0.05):0.1,(e:0.1,f:0.3):0.1,g:0.2);",
        )
        .unwrap();
        let aln = Alignment::from_strings(&[
            ("a", "ACGTACGTAAGGCCTTAGCAACGTACGTAAGGCCTTAGCA"),
            ("b", "ACGTACGTACGGCCTTAGCAACGTACCTAAGGCCATAGCA"),
            ("c", "ACGAACGTTAGGCCTAAGCAACGTACGTAAGGCCTTAGTA"),
            ("d", "ACTTACGTAAGGCGTTAGCAACGTACGAAAGGCCTTAGCA"),
            ("e", "ACGTACGTAAGGCCTTAGCATCGTACGTAAGGCCTTAGCA"),
            ("f", "ACGTTCGTAAGGCCTTAGCAACGTACGTAAGCCCTTAGCA"),
            ("g", "AGGTACGTAAGGCCTTAGCAACGTACGTAAGGCCTTAGCG"),
        ])
        .unwrap()
        .compress();
        (tree, aln)
    }

    #[test]
    fn matches_scalar_bitwise_any_thread_count() {
        let (tree, aln) = toy();
        let model = SiteModel::gtr_gamma4(GtrParams::hky85(2.0, [0.3, 0.2, 0.2, 0.3]), 0.6).unwrap();
        let mut ref_eval = TreeLikelihood::new(&tree, &aln, model.clone()).unwrap();
        let expect = ref_eval.log_likelihood(&tree, &mut ScalarBackend).unwrap();
        for threads in [1usize, 2, 3, 8] {
            let mut backend = RayonBackend::new(threads).unwrap();
            let mut eval = TreeLikelihood::new(&tree, &aln, model.clone()).unwrap();
            let got = eval.log_likelihood(&tree, &mut backend).unwrap();
            assert_eq!(got, expect, "{} threads", threads);
        }
    }

    #[test]
    fn scalar_kernel_variant_matches_too() {
        let (tree, aln) = toy();
        let model = SiteModel::gtr_gamma4(GtrParams::jc69(), 0.5).unwrap();
        let mut ref_eval = TreeLikelihood::new(&tree, &aln, model.clone()).unwrap();
        let expect = ref_eval.log_likelihood(&tree, &mut ScalarBackend).unwrap();
        let mut backend = RayonBackend::with_kernel(4, None).unwrap();
        let mut eval = TreeLikelihood::new(&tree, &aln, model).unwrap();
        assert_eq!(eval.log_likelihood(&tree, &mut backend).unwrap(), expect);
    }

    #[test]
    fn more_threads_than_patterns_is_safe() {
        let (tree, _) = toy();
        let aln = Alignment::from_strings(&[
            ("a", "AC"),
            ("b", "AC"),
            ("c", "AG"),
            ("d", "AT"),
            ("e", "CC"),
            ("f", "AC"),
            ("g", "AA"),
        ])
        .unwrap()
        .compress();
        let model = SiteModel::jc69();
        let mut backend = RayonBackend::new(16).unwrap();
        let mut eval = TreeLikelihood::new(&tree, &aln, model).unwrap();
        let lnl = eval.log_likelihood(&tree, &mut backend).unwrap();
        assert!(lnl.is_finite());
    }

    #[test]
    fn name_reflects_threads() {
        assert_eq!(RayonBackend::new(5).unwrap().name(), "rayon-5");
    }

    #[test]
    fn zero_threads_is_a_config_error() {
        assert!(matches!(
            RayonBackend::new(0),
            Err(PlfError::Config(_))
        ));
    }

    #[test]
    fn injected_corruption_poisons_output() {
        let (tree, aln) = toy();
        let model = SiteModel::jc69();
        let inj = Arc::new(FaultInjector::new(11).schedule_corruption(1, CorruptionKind::Nan));
        let mut backend = RayonBackend::new(2).unwrap().with_fault_injector(inj);
        let mut eval = TreeLikelihood::new(&tree, &aln, model).unwrap();
        let lnl = eval.log_likelihood(&tree, &mut backend).unwrap();
        assert!(lnl.is_nan(), "NaN corruption must reach the root, got {lnl}");
    }
}

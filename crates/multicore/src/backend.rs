//! Rayon-based parallel PLF backend — the OpenMP analogue.
//!
//! §3.2 of the paper: "parallelize the outermost loop, thus reducing the
//! parallelization overheads", with one static chunk per core. We do the
//! same: the pattern loop is split into `n_threads` contiguous chunks,
//! each processed by the scalar/SIMD range kernels, with rayon's
//! fork-join standing in for `#pragma omp parallel for`.

use plf_phylo::clv::{Clv, TransitionMatrices};
use plf_phylo::dna::N_STATES;
use plf_phylo::kernels::{scalar, simd4, PlfBackend, SimdSchedule};
use rayon::prelude::*;

/// Parallel host backend over a dedicated rayon pool.
pub struct RayonBackend {
    pool: rayon::ThreadPool,
    n_threads: usize,
    schedule: Option<SimdSchedule>,
}

impl RayonBackend {
    /// Build a backend with `n_threads` worker threads using the
    /// column-wise SIMD kernels (bitwise-identical to the scalar
    /// reference).
    pub fn new(n_threads: usize) -> RayonBackend {
        RayonBackend::with_kernel(n_threads, Some(SimdSchedule::ColWise))
    }

    /// Choose the kernel: `None` = scalar reference, `Some(schedule)` =
    /// 4-wide SIMD.
    pub fn with_kernel(n_threads: usize, schedule: Option<SimdSchedule>) -> RayonBackend {
        assert!(n_threads >= 1);
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(n_threads)
            .build()
            .expect("thread pool construction");
        RayonBackend {
            pool,
            n_threads,
            schedule,
        }
    }

    /// Number of worker threads.
    pub fn n_threads(&self) -> usize {
        self.n_threads
    }

    /// Floats per chunk for `m` patterns of stride `stride`: one
    /// contiguous chunk per thread (OpenMP static schedule).
    fn chunk_len(&self, m: usize, stride: usize) -> usize {
        m.div_ceil(self.n_threads).max(1) * stride
    }
}

impl PlfBackend for RayonBackend {
    fn name(&self) -> String {
        format!("rayon-{}", self.n_threads)
    }

    fn cond_like_down(
        &mut self,
        left: &Clv,
        p_left: &TransitionMatrices,
        right: &Clv,
        p_right: &TransitionMatrices,
        out: &mut Clv,
    ) {
        let n_rates = out.n_rates();
        let stride = n_rates * N_STATES;
        let chunk = self.chunk_len(out.n_patterns(), stride);
        let schedule = self.schedule;
        let (l, r) = (left.as_slice(), right.as_slice());
        self.pool.install(|| {
            out.as_mut_slice()
                .par_chunks_mut(chunk)
                .enumerate()
                .for_each(|(ci, o)| {
                    let start = ci * chunk;
                    let (lc, rc) = (&l[start..start + o.len()], &r[start..start + o.len()]);
                    match schedule {
                        None => scalar::cond_like_down_range(lc, p_left, rc, p_right, o, n_rates),
                        Some(s) => {
                            simd4::cond_like_down_range(s, lc, p_left, rc, p_right, o, n_rates)
                        }
                    }
                });
        });
    }

    fn cond_like_root(
        &mut self,
        a: &Clv,
        p_a: &TransitionMatrices,
        b: &Clv,
        p_b: &TransitionMatrices,
        c: Option<(&Clv, &TransitionMatrices)>,
        out: &mut Clv,
    ) {
        let n_rates = out.n_rates();
        let stride = n_rates * N_STATES;
        let chunk = self.chunk_len(out.n_patterns(), stride);
        let schedule = self.schedule;
        let (sa, sb) = (a.as_slice(), b.as_slice());
        let sc = c.map(|(clv, p)| (clv.as_slice(), p));
        self.pool.install(|| {
            out.as_mut_slice()
                .par_chunks_mut(chunk)
                .enumerate()
                .for_each(|(ci, o)| {
                    let start = ci * chunk;
                    let range = start..start + o.len();
                    let ca = &sa[range.clone()];
                    let cb = &sb[range.clone()];
                    let cc = sc.map(|(s, p)| (&s[range.clone()], p));
                    match schedule {
                        None => scalar::cond_like_root_range(ca, p_a, cb, p_b, cc, o, n_rates),
                        Some(s) => {
                            simd4::cond_like_root_range(s, ca, p_a, cb, p_b, cc, o, n_rates)
                        }
                    }
                });
        });
    }

    fn cond_like_scaler(&mut self, clv: &mut Clv, ln_scalers: &mut [f32]) {
        let n_rates = clv.n_rates();
        let stride = n_rates * N_STATES;
        let m = clv.n_patterns();
        let chunk = self.chunk_len(m, stride);
        let chunk_patterns = chunk / stride;
        let schedule = self.schedule;
        self.pool.install(|| {
            clv.as_mut_slice()
                .par_chunks_mut(chunk)
                .zip(ln_scalers.par_chunks_mut(chunk_patterns))
                .for_each(|(c, s)| match schedule {
                    None => scalar::cond_like_scaler_range(c, s, n_rates),
                    Some(_) => simd4::cond_like_scaler_range(c, s, n_rates),
                });
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use plf_phylo::alignment::Alignment;
    use plf_phylo::kernels::ScalarBackend;
    use plf_phylo::likelihood::TreeLikelihood;
    use plf_phylo::model::{GtrParams, SiteModel};
    use plf_phylo::tree::Tree;

    fn toy() -> (Tree, plf_phylo::alignment::PatternAlignment) {
        let tree = Tree::from_newick(
            "(((a:0.1,b:0.15):0.1,(c:0.2,d:0.1):0.05):0.1,(e:0.1,f:0.3):0.1,g:0.2);",
        )
        .unwrap();
        let aln = Alignment::from_strings(&[
            ("a", "ACGTACGTAAGGCCTTAGCAACGTACGTAAGGCCTTAGCA"),
            ("b", "ACGTACGTACGGCCTTAGCAACGTACCTAAGGCCATAGCA"),
            ("c", "ACGAACGTTAGGCCTAAGCAACGTACGTAAGGCCTTAGTA"),
            ("d", "ACTTACGTAAGGCGTTAGCAACGTACGAAAGGCCTTAGCA"),
            ("e", "ACGTACGTAAGGCCTTAGCATCGTACGTAAGGCCTTAGCA"),
            ("f", "ACGTTCGTAAGGCCTTAGCAACGTACGTAAGCCCTTAGCA"),
            ("g", "AGGTACGTAAGGCCTTAGCAACGTACGTAAGGCCTTAGCG"),
        ])
        .unwrap()
        .compress();
        (tree, aln)
    }

    #[test]
    fn matches_scalar_bitwise_any_thread_count() {
        let (tree, aln) = toy();
        let model = SiteModel::gtr_gamma4(GtrParams::hky85(2.0, [0.3, 0.2, 0.2, 0.3]), 0.6).unwrap();
        let mut ref_eval = TreeLikelihood::new(&tree, &aln, model.clone()).unwrap();
        let expect = ref_eval.log_likelihood(&tree, &mut ScalarBackend).unwrap();
        for threads in [1usize, 2, 3, 8] {
            let mut backend = RayonBackend::new(threads);
            let mut eval = TreeLikelihood::new(&tree, &aln, model.clone()).unwrap();
            let got = eval.log_likelihood(&tree, &mut backend).unwrap();
            assert_eq!(got, expect, "{} threads", threads);
        }
    }

    #[test]
    fn scalar_kernel_variant_matches_too() {
        let (tree, aln) = toy();
        let model = SiteModel::gtr_gamma4(GtrParams::jc69(), 0.5).unwrap();
        let mut ref_eval = TreeLikelihood::new(&tree, &aln, model.clone()).unwrap();
        let expect = ref_eval.log_likelihood(&tree, &mut ScalarBackend).unwrap();
        let mut backend = RayonBackend::with_kernel(4, None);
        let mut eval = TreeLikelihood::new(&tree, &aln, model).unwrap();
        assert_eq!(eval.log_likelihood(&tree, &mut backend).unwrap(), expect);
    }

    #[test]
    fn more_threads_than_patterns_is_safe() {
        let (tree, _) = toy();
        let aln = Alignment::from_strings(&[
            ("a", "AC"),
            ("b", "AC"),
            ("c", "AG"),
            ("d", "AT"),
            ("e", "CC"),
            ("f", "AC"),
            ("g", "AA"),
        ])
        .unwrap()
        .compress();
        let model = SiteModel::jc69();
        let mut backend = RayonBackend::new(16);
        let mut eval = TreeLikelihood::new(&tree, &aln, model).unwrap();
        let lnl = eval.log_likelihood(&tree, &mut backend).unwrap();
        assert!(lnl.is_finite());
    }

    #[test]
    fn name_reflects_threads() {
        assert_eq!(RayonBackend::new(5).name(), "rayon-5");
    }
}

//! Persistent-worker backend — the paper's TFlux suggestion.
//!
//! §4.1.1 observes that OpenMP's per-region spawn/join overhead limits
//! fine-grain scalability and suggests exploring "implementations that
//! are more efficient (e.g. the TFlux model, which has minimal
//! synchronization and runtime overheads)". This backend implements
//! that idea: worker threads are spawned **once** and live for the
//! backend's lifetime; each PLF call publishes a job epoch, workers
//! self-schedule pattern chunks off a single atomic counter, and the
//! caller participates in the work and spin-waits for the last chunk —
//! no thread creation, no parked-thread wakeup on the critical path
//! beyond one condvar broadcast.

use plf_phylo::clv::{Clv, TransitionMatrices};
use plf_phylo::dna::N_STATES;
use plf_phylo::kernels::{simd4, FusedDown, FusedRoot, FusedScale, PlfBackend, SimdSchedule};
use plf_phylo::metrics::{Kernel, KernelTimer, PlfCounters};
use plf_phylo::resilience::PlfError;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};

/// Patterns per self-scheduled chunk. Small enough to balance load,
/// large enough that the atomic fetch-add is negligible.
const CHUNK_PATTERNS: usize = 256;

type Task = Box<dyn Fn(usize) + Send + Sync>;

struct PoolState {
    epoch: u64,
    task: Option<Arc<Task>>,
    shutdown: bool,
}

struct PoolShared {
    state: Mutex<PoolState>,
    job_ready: Condvar,
    next_chunk: AtomicUsize,
    chunks_done: AtomicUsize,
    n_chunks: AtomicUsize,
}

impl PoolShared {
    /// Claim and run chunks until the current job is exhausted.
    fn drain(&self, task: &Task) {
        let n = self.n_chunks.load(Ordering::Acquire);
        loop {
            let i = self.next_chunk.fetch_add(1, Ordering::Relaxed);
            if i >= n {
                break;
            }
            task(i);
            self.chunks_done.fetch_add(1, Ordering::Release);
        }
    }
}

/// A pointer that may cross threads; safety is established by the job
/// construction (each chunk index owns a disjoint output region).
#[derive(Clone, Copy)]
struct SendPtr(*mut f32);
// SAFETY: these impls promise nothing about the pointee on their own —
// SendPtr is a plain address. Soundness is discharged at every deref
// site (the `from_raw_parts_mut` calls below), which must uphold:
// (1) disjointness — chunk `i` derives a slice covering only its own
//     `[lo, hi)` region, and the fetch-add chunk counter hands each
//     index to exactly one worker per job, so no two live `&mut [f32]`
//     overlap;
// (2) lifetime — the pointee buffer is borrowed by the caller of
//     `run_job`, which blocks until `chunks_done == n_chunks` (with an
//     Acquire load pairing against each worker's Release increment),
//     so every derived slice is dead — and its writes visible — before
//     the borrow ends.
unsafe impl Send for SendPtr {}
unsafe impl Sync for SendPtr {}

impl SendPtr {
    /// Taking `self` forces closures to capture the whole wrapper (2021
    /// edition precise capture would otherwise grab the raw field and
    /// lose the Send/Sync impls).
    fn get(self) -> *mut f32 {
        self.0
    }
}

/// Persistent-thread-pool PLF backend with TFlux-style self-scheduling.
pub struct PersistentPoolBackend {
    shared: Arc<PoolShared>,
    workers: Vec<std::thread::JoinHandle<()>>,
    n_threads: usize,
    schedule: SimdSchedule,
    metrics: Option<Arc<PlfCounters>>,
}

impl PersistentPoolBackend {
    /// Spawn `n_threads` workers (including the caller, so `n_threads-1`
    /// OS threads) using the column-wise SIMD kernels.
    pub fn new(n_threads: usize) -> PersistentPoolBackend {
        assert!(n_threads >= 1);
        let shared = Arc::new(PoolShared {
            state: Mutex::new(PoolState {
                epoch: 0,
                task: None,
                shutdown: false,
            }),
            job_ready: Condvar::new(),
            next_chunk: AtomicUsize::new(0),
            chunks_done: AtomicUsize::new(0),
            n_chunks: AtomicUsize::new(0),
        });
        let workers = (1..n_threads)
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || {
                    let mut seen_epoch = 0u64;
                    loop {
                        // Wait for a new job epoch (or shutdown).
                        let task = {
                            let mut st = shared.state.lock().unwrap_or_else(|p| p.into_inner());
                            loop {
                                if st.shutdown {
                                    return;
                                }
                                if st.epoch != seen_epoch {
                                    seen_epoch = st.epoch;
                                    // `run_job` publishes the task and
                                    // bumps the epoch under this same
                                    // lock, so a fresh epoch always
                                    // carries one; should that
                                    // invariant ever break, waiting
                                    // again is safe — the caller
                                    // drains its own job regardless.
                                    if let Some(task) = st.task.clone() {
                                        break task;
                                    }
                                }
                                st = shared
                                    .job_ready
                                    .wait(st)
                                    .unwrap_or_else(|p| p.into_inner());
                            }
                        };
                        shared.drain(&task);
                    }
                })
            })
            .collect();
        PersistentPoolBackend {
            shared,
            workers,
            n_threads,
            schedule: SimdSchedule::ColWise,
            metrics: None,
        }
    }

    /// Attach shared observability counters (per-kernel invocations,
    /// patterns, wall time, rescale events).
    pub fn with_metrics(mut self, counters: Arc<PlfCounters>) -> PersistentPoolBackend {
        self.metrics = Some(counters);
        self
    }

    /// Number of threads participating in each call.
    pub fn n_threads(&self) -> usize {
        self.n_threads
    }

    /// Publish a job of `n_chunks` chunks, work on it, and wait for the
    /// last chunk to finish.
    fn run_job(&self, n_chunks: usize, task: Task) {
        if n_chunks == 0 {
            return;
        }
        let task: Arc<Task> = Arc::new(task);
        self.shared.next_chunk.store(0, Ordering::Relaxed);
        self.shared.chunks_done.store(0, Ordering::Relaxed);
        self.shared.n_chunks.store(n_chunks, Ordering::Release);
        {
            let mut st = self.shared.state.lock().unwrap_or_else(|p| p.into_inner());
            st.epoch += 1;
            st.task = Some(Arc::clone(&task));
        }
        self.shared.job_ready.notify_all();
        // The caller is worker 0.
        self.shared.drain(&task);
        // Spin for the stragglers (chunks are tiny; parking would cost
        // more than it saves — the TFlux premise).
        while self.shared.chunks_done.load(Ordering::Acquire) < n_chunks {
            std::hint::spin_loop();
        }
    }

    fn n_chunks(m: usize) -> usize {
        m.div_ceil(CHUNK_PATTERNS)
    }
}

impl Drop for PersistentPoolBackend {
    fn drop(&mut self) {
        {
            let mut st = self.shared.state.lock().unwrap_or_else(|p| p.into_inner());
            st.shutdown = true;
        }
        self.shared.job_ready.notify_all();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

impl PlfBackend for PersistentPoolBackend {
    fn name(&self) -> String {
        format!("persistent-{}", self.n_threads)
    }

    fn begin_evaluation(&mut self) {
        if let Some(m) = &self.metrics {
            m.record_evaluation();
        }
    }

    fn preferred_batch_patterns(&self, n_rates: usize) -> usize {
        let _ = n_rates;
        // The pool hands out fixed CHUNK_PATTERNS-sized chunks; a fused
        // unit of one chunk per worker saturates it.
        CHUNK_PATTERNS * self.n_threads
    }

    fn cond_like_down(
        &mut self,
        left: &Clv,
        p_left: &TransitionMatrices,
        right: &Clv,
        p_right: &TransitionMatrices,
        out: &mut Clv,
    ) -> Result<(), PlfError> {
        let _timer = KernelTimer::start(self.metrics.as_ref(), Kernel::Down, out.n_patterns());
        let m = out.n_patterns();
        let n_rates = out.n_rates();
        let stride = n_rates * N_STATES;
        let schedule = self.schedule;
        // SAFETY: each worker writes a disjoint chunk region of `out`
        // (chunk indices are claimed exactly once) and `run_job` joins
        // all chunks before `out` can be touched again.
        let out_ptr = SendPtr(out.as_mut_slice().as_mut_ptr());
        let left = left.as_slice().to_vec();
        let right = right.as_slice().to_vec();
        let p_left = p_left.clone();
        let p_right = p_right.clone();
        let task: Task = Box::new(move |chunk| {
            let start = chunk * CHUNK_PATTERNS;
            let end = (start + CHUNK_PATTERNS).min(m);
            let lo = start * stride;
            let hi = end * stride;
            // SAFETY: each chunk index owns the disjoint region
            // [lo, hi) of the output; the buffer outlives the job
            // because run_job joins all chunks before returning.
            let out_chunk =
                unsafe { std::slice::from_raw_parts_mut(out_ptr.get().add(lo), hi - lo) };
            simd4::cond_like_down_range(
                schedule,
                &left[lo..hi],
                &p_left,
                &right[lo..hi],
                &p_right,
                out_chunk,
                n_rates,
            );
        });
        self.run_job(Self::n_chunks(m), task);
        Ok(())
    }

    fn cond_like_root(
        &mut self,
        a: &Clv,
        p_a: &TransitionMatrices,
        b: &Clv,
        p_b: &TransitionMatrices,
        c: Option<(&Clv, &TransitionMatrices)>,
        out: &mut Clv,
    ) -> Result<(), PlfError> {
        let _timer = KernelTimer::start(self.metrics.as_ref(), Kernel::Root, out.n_patterns());
        let m = out.n_patterns();
        let n_rates = out.n_rates();
        let stride = n_rates * N_STATES;
        let schedule = self.schedule;
        // SAFETY: each worker writes a disjoint chunk region of `out`
        // (chunk indices are claimed exactly once) and `run_job` joins
        // all chunks before `out` can be touched again.
        let out_ptr = SendPtr(out.as_mut_slice().as_mut_ptr());
        let a = a.as_slice().to_vec();
        let b = b.as_slice().to_vec();
        let c = c.map(|(clv, p)| (clv.as_slice().to_vec(), p.clone()));
        let p_a = p_a.clone();
        let p_b = p_b.clone();
        let task: Task = Box::new(move |chunk| {
            let start = chunk * CHUNK_PATTERNS;
            let end = (start + CHUNK_PATTERNS).min(m);
            let lo = start * stride;
            let hi = end * stride;
            // SAFETY: as in cond_like_down — disjoint chunk regions.
            let out_chunk =
                unsafe { std::slice::from_raw_parts_mut(out_ptr.get().add(lo), hi - lo) };
            let cc = c.as_ref().map(|(clv, p)| (&clv[lo..hi], p));
            simd4::cond_like_root_range(
                schedule,
                &a[lo..hi],
                &p_a,
                &b[lo..hi],
                &p_b,
                cc,
                out_chunk,
                n_rates,
            );
        });
        self.run_job(Self::n_chunks(m), task);
        Ok(())
    }

    fn cond_like_scaler(&mut self, clv: &mut Clv, ln_scalers: &mut [f32]) -> Result<(), PlfError> {
        let _timer = KernelTimer::start(self.metrics.as_ref(), Kernel::Scale, clv.n_patterns());
        let m = clv.n_patterns();
        let n_rates = clv.n_rates();
        let stride = n_rates * N_STATES;
        // SAFETY: workers scale disjoint pattern ranges of the CLV and
        // write disjoint entries of `ln_scalers`; run_job joins before
        // either buffer is read.
        let clv_ptr = SendPtr(clv.as_mut_slice().as_mut_ptr());
        let sc_ptr = SendPtr(ln_scalers.as_mut_ptr());
        let rescaled = Arc::new(AtomicU64::new(0));
        let task_rescaled = Arc::clone(&rescaled);
        let task: Task = Box::new(move |chunk| {
            let start = chunk * CHUNK_PATTERNS;
            let end = (start + CHUNK_PATTERNS).min(m);
            // SAFETY: chunk `chunk` is claimed by exactly one worker,
            // and this slice covers only its pattern range scaled by
            // `stride`; the CLV buffer outlives the job because
            // `run_job` joins all chunks before returning.
            let clv_chunk = unsafe {
                std::slice::from_raw_parts_mut(clv_ptr.get().add(start * stride), (end - start) * stride)
            };
            // SAFETY: same disjointness/lifetime argument for the
            // per-pattern scaler array (one f32 per pattern, so the
            // chunk owns `[start, end)` of it exclusively).
            let sc_chunk =
                unsafe { std::slice::from_raw_parts_mut(sc_ptr.get().add(start), end - start) };
            let n = simd4::cond_like_scaler_range(clv_chunk, sc_chunk, n_rates);
            task_rescaled.fetch_add(n, Ordering::Relaxed);
        });
        self.run_job(Self::n_chunks(m), task);
        if let Some(counters) = &self.metrics {
            counters.record_rescaled(rescaled.load(Ordering::Relaxed));
        }
        Ok(())
    }

    // Fused overrides: one `run_job` (one epoch publish + one
    // completion barrier) per tree level for the whole batch, instead
    // of one per op per job. A prefix-sum chunk table maps each global
    // chunk index to (op, local chunk); chunks never span ops, so the
    // per-pattern arithmetic — and therefore the result bits — are
    // exactly those of the per-op path.

    fn cond_like_down_fused(&mut self, ops: &mut [FusedDown<'_>]) -> Result<(), PlfError> {
        let total_m: usize = ops.iter().map(|op| op.out.n_patterns()).sum();
        let _timer = KernelTimer::start(self.metrics.as_ref(), Kernel::Down, total_m);
        let schedule = self.schedule;
        struct OpJob {
            chunk_base: usize,
            m: usize,
            n_rates: usize,
            left: Vec<f32>,
            right: Vec<f32>,
            p_left: TransitionMatrices,
            p_right: TransitionMatrices,
            out: SendPtr,
        }
        let mut table: Vec<OpJob> = Vec::with_capacity(ops.len());
        let mut n_chunks = 0usize;
        for op in ops.iter_mut() {
            let m = op.out.n_patterns();
            table.push(OpJob {
                chunk_base: n_chunks,
                m,
                n_rates: op.out.n_rates(),
                left: op.left.as_slice().to_vec(),
                right: op.right.as_slice().to_vec(),
                p_left: op.p_left.clone(),
                p_right: op.p_right.clone(),
                // SAFETY: global chunk indices map to disjoint regions
                // of exactly one op's `out`; run_job joins before ops
                // are reused.
                out: SendPtr(op.out.as_mut_slice().as_mut_ptr()),
            });
            n_chunks += Self::n_chunks(m);
        }
        let task: Task = Box::new(move |chunk| {
            let idx = table.partition_point(|j| j.chunk_base <= chunk).saturating_sub(1);
            let job = &table[idx];
            let stride = job.n_rates * N_STATES;
            let start = (chunk - job.chunk_base) * CHUNK_PATTERNS;
            let end = (start + CHUNK_PATTERNS).min(job.m);
            let lo = start * stride;
            let hi = end * stride;
            // SAFETY: the table assigns each global chunk index to one
            // op and one [lo, hi) region of that op's output; regions
            // of distinct chunks are disjoint and every output buffer
            // outlives the job because run_job joins all chunks before
            // returning.
            let out_chunk =
                unsafe { std::slice::from_raw_parts_mut(job.out.get().add(lo), hi - lo) };
            simd4::cond_like_down_range(
                schedule,
                &job.left[lo..hi],
                &job.p_left,
                &job.right[lo..hi],
                &job.p_right,
                out_chunk,
                job.n_rates,
            );
        });
        self.run_job(n_chunks, task);
        Ok(())
    }

    fn cond_like_root_fused(&mut self, ops: &mut [FusedRoot<'_>]) -> Result<(), PlfError> {
        let total_m: usize = ops.iter().map(|op| op.out.n_patterns()).sum();
        let _timer = KernelTimer::start(self.metrics.as_ref(), Kernel::Root, total_m);
        let schedule = self.schedule;
        struct OpJob {
            chunk_base: usize,
            m: usize,
            n_rates: usize,
            a: Vec<f32>,
            b: Vec<f32>,
            c: Option<(Vec<f32>, TransitionMatrices)>,
            p_a: TransitionMatrices,
            p_b: TransitionMatrices,
            out: SendPtr,
        }
        let mut table: Vec<OpJob> = Vec::with_capacity(ops.len());
        let mut n_chunks = 0usize;
        for op in ops.iter_mut() {
            let m = op.out.n_patterns();
            table.push(OpJob {
                chunk_base: n_chunks,
                m,
                n_rates: op.out.n_rates(),
                a: op.a.as_slice().to_vec(),
                b: op.b.as_slice().to_vec(),
                c: op.c.map(|(clv, p)| (clv.as_slice().to_vec(), p.clone())),
                p_a: op.p_a.clone(),
                p_b: op.p_b.clone(),
                // SAFETY: global chunk indices map to disjoint regions
                // of exactly one op's `out`; run_job joins before ops
                // are reused.
                out: SendPtr(op.out.as_mut_slice().as_mut_ptr()),
            });
            n_chunks += Self::n_chunks(m);
        }
        let task: Task = Box::new(move |chunk| {
            let idx = table.partition_point(|j| j.chunk_base <= chunk).saturating_sub(1);
            let job = &table[idx];
            let stride = job.n_rates * N_STATES;
            let start = (chunk - job.chunk_base) * CHUNK_PATTERNS;
            let end = (start + CHUNK_PATTERNS).min(job.m);
            let lo = start * stride;
            let hi = end * stride;
            // SAFETY: as in cond_like_down_fused — one op and one
            // disjoint region per global chunk index, buffers alive
            // until run_job's barrier.
            let out_chunk =
                unsafe { std::slice::from_raw_parts_mut(job.out.get().add(lo), hi - lo) };
            let cc = job.c.as_ref().map(|(clv, p)| (&clv[lo..hi], p));
            simd4::cond_like_root_range(
                schedule,
                &job.a[lo..hi],
                &job.p_a,
                &job.b[lo..hi],
                &job.p_b,
                cc,
                out_chunk,
                job.n_rates,
            );
        });
        self.run_job(n_chunks, task);
        Ok(())
    }

    fn cond_like_scaler_fused(&mut self, ops: &mut [FusedScale<'_>]) -> Result<(), PlfError> {
        let total_m: usize = ops.iter().map(|op| op.clv.n_patterns()).sum();
        let _timer = KernelTimer::start(self.metrics.as_ref(), Kernel::Scale, total_m);
        struct OpJob {
            chunk_base: usize,
            m: usize,
            n_rates: usize,
            clv: SendPtr,
            scalers: SendPtr,
        }
        let mut table: Vec<OpJob> = Vec::with_capacity(ops.len());
        let mut n_chunks = 0usize;
        for op in ops.iter_mut() {
            let m = op.clv.n_patterns();
            table.push(OpJob {
                chunk_base: n_chunks,
                m,
                n_rates: op.clv.n_rates(),
                // SAFETY: global chunk indices map to disjoint pattern
                // ranges of exactly one op's CLV and scaler buffers;
                // run_job joins before the ops are reused.
                clv: SendPtr(op.clv.as_mut_slice().as_mut_ptr()),
                scalers: SendPtr(op.ln_scalers.as_mut_ptr()),
            });
            n_chunks += Self::n_chunks(m);
        }
        let rescaled = Arc::new(AtomicU64::new(0));
        let task_rescaled = Arc::clone(&rescaled);
        let task: Task = Box::new(move |chunk| {
            let idx = table.partition_point(|j| j.chunk_base <= chunk).saturating_sub(1);
            let job = &table[idx];
            let stride = job.n_rates * N_STATES;
            let start = (chunk - job.chunk_base) * CHUNK_PATTERNS;
            let end = (start + CHUNK_PATTERNS).min(job.m);
            // SAFETY: one op and one disjoint pattern range per global
            // chunk index, for both the CLV region (scaled by `stride`)
            // and the per-pattern scaler region; both buffers outlive
            // the job because run_job joins all chunks first.
            let clv_chunk = unsafe {
                std::slice::from_raw_parts_mut(
                    job.clv.get().add(start * stride),
                    (end - start) * stride,
                )
            };
            // SAFETY: same argument for the scaler array (one f32 per
            // pattern; the chunk owns [start, end) exclusively).
            let sc_chunk = unsafe {
                std::slice::from_raw_parts_mut(job.scalers.get().add(start), end - start)
            };
            let n = simd4::cond_like_scaler_range(clv_chunk, sc_chunk, job.n_rates);
            task_rescaled.fetch_add(n, Ordering::Relaxed);
        });
        self.run_job(n_chunks, task);
        if let Some(counters) = &self.metrics {
            counters.record_rescaled(rescaled.load(Ordering::Relaxed));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use plf_phylo::alignment::Alignment;
    use plf_phylo::kernels::ScalarBackend;
    use plf_phylo::likelihood::TreeLikelihood;
    use plf_phylo::model::{GtrParams, SiteModel};
    use plf_phylo::tree::Tree;

    fn toy() -> (Tree, plf_phylo::alignment::PatternAlignment, SiteModel) {
        let tree = Tree::from_newick(
            "(((a:0.1,b:0.15):0.1,(c:0.2,d:0.1):0.05):0.1,(e:0.1,f:0.3):0.1,g:0.2);",
        )
        .unwrap();
        // > CHUNK_PATTERNS distinct patterns so multiple chunks exist.
        let mut rows = vec![String::new(); 7];
        let bases = ['A', 'C', 'G', 'T'];
        let mut h: u64 = 0x243F6A8885A308D3;
        for _ in 0..600usize {
            for row in rows.iter_mut() {
                h = h.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                row.push(bases[(h >> 33) as usize % 4]);
            }
        }
        let named: Vec<(&str, &str)> = ["a", "b", "c", "d", "e", "f", "g"]
            .iter()
            .zip(rows.iter())
            .map(|(n, r)| (*n, r.as_str()))
            .collect();
        let aln = Alignment::from_strings(&named).unwrap().compress();
        let model = SiteModel::gtr_gamma4(GtrParams::hky85(2.0, [0.3, 0.2, 0.2, 0.3]), 0.6).unwrap();
        (tree, aln, model)
    }

    #[test]
    fn matches_scalar_bitwise() {
        let (tree, aln, model) = toy();
        assert!(aln.n_patterns() > CHUNK_PATTERNS, "need multiple chunks");
        let mut ref_eval = TreeLikelihood::new(&tree, &aln, model.clone()).unwrap();
        let expect = ref_eval.log_likelihood(&tree, &mut ScalarBackend).unwrap();
        for threads in [1usize, 2, 4] {
            let mut backend = PersistentPoolBackend::new(threads);
            let mut eval = TreeLikelihood::new(&tree, &aln, model.clone()).unwrap();
            let got = eval.log_likelihood(&tree, &mut backend).unwrap();
            assert_eq!(got, expect, "{threads} threads");
        }
    }

    #[test]
    fn repeated_evaluations_stay_consistent() {
        let (tree, aln, model) = toy();
        let mut backend = PersistentPoolBackend::new(3);
        let mut eval = TreeLikelihood::new(&tree, &aln, model).unwrap();
        let first = eval.log_likelihood(&tree, &mut backend).unwrap();
        for _ in 0..10 {
            assert_eq!(eval.log_likelihood(&tree, &mut backend).unwrap(), first);
        }
    }

    #[test]
    fn send_ptr_disjoint_chunk_writes_are_exact() {
        // Drives run_job/SendPtr directly (no kernels): every chunk
        // adds its 1-based index to its own disjoint region, repeated
        // for several rounds. If a chunk ever ran twice, never ran, or
        // ran after run_job returned, the accumulated values would be
        // off; if two workers overlapped, Miri/TSan-style failures or
        // torn sums would show. Also exercises the completion barrier:
        // round N reads what round N-1 wrote.
        const CHUNK_LEN: usize = 512;
        const N_CHUNKS: usize = 64;
        const ROUNDS: usize = 8;
        let pool = PersistentPoolBackend::new(4);
        let mut buf = vec![0.0f32; N_CHUNKS * CHUNK_LEN];
        for _ in 0..ROUNDS {
            let ptr = SendPtr(buf.as_mut_ptr());
            let task: Task = Box::new(move |chunk| {
                // SAFETY: each chunk index is claimed exactly once per
                // job and this slice covers only its own CHUNK_LEN
                // region; `buf` outlives the job because run_job
                // blocks until all chunks are done.
                let region = unsafe {
                    std::slice::from_raw_parts_mut(ptr.get().add(chunk * CHUNK_LEN), CHUNK_LEN)
                };
                for x in region.iter_mut() {
                    *x += (chunk + 1) as f32;
                }
            });
            pool.run_job(N_CHUNKS, task);
        }
        for (i, &x) in buf.iter().enumerate() {
            let chunk = i / CHUNK_LEN;
            assert_eq!(x, (ROUNDS * (chunk + 1)) as f32, "element {i}");
        }
    }

    #[test]
    fn drop_joins_workers() {
        // Constructing and dropping many pools must not leak or hang.
        for _ in 0..20 {
            let backend = PersistentPoolBackend::new(4);
            drop(backend);
        }
    }

    #[test]
    fn single_thread_pool_has_no_workers() {
        let backend = PersistentPoolBackend::new(1);
        assert_eq!(backend.workers.len(), 0);
        assert_eq!(backend.n_threads(), 1);
    }

    #[test]
    fn tiny_inputs_single_chunk() {
        let tree = Tree::from_newick("((a:0.1,b:0.2):0.05,c:0.3,d:0.4);").unwrap();
        let aln = Alignment::from_strings(&[
            ("a", "ACGT"),
            ("b", "ACGA"),
            ("c", "ACGT"),
            ("d", "ATGT"),
        ])
        .unwrap()
        .compress();
        let model = SiteModel::jc69();
        let mut ref_eval = TreeLikelihood::new(&tree, &aln, model.clone()).unwrap();
        let expect = ref_eval.log_likelihood(&tree, &mut ScalarBackend).unwrap();
        let mut backend = PersistentPoolBackend::new(8);
        let mut eval = TreeLikelihood::new(&tree, &aln, model).unwrap();
        assert_eq!(eval.log_likelihood(&tree, &mut backend).unwrap(), expect);
    }
}

//! Analytic timing model of the general-purpose multi-core systems.
//!
//! Reproduces Figure 9's scalability behaviour from first principles
//! plus a small number of calibrated constants:
//!
//! * **compute** — the scalar MrBayes PLF loop sustains ≈1 flop/cycle
//!   (it is latency-bound, not vectorized by the 2009 compilers);
//! * **memory** — CLV streams hit the socket memory interfaces; traffic
//!   is discounted when the working set of a call fits in the on-chip
//!   caches, and NUMA crossings degrade effective bandwidth;
//! * **fork/join** — every `#pragma omp parallel for` pays a spawn +
//!   barrier cost that grows with the number of dies and sockets the
//!   team spans (§4.1.1's central observation: the Xeon's two dies per
//!   package and the 8-socket Opteron pay more than the single-die
//!   quad Opteron);
//! * **straggler exponent** — an empirical `units^eff` law capturing
//!   scheduling imbalance, calibrated to the paper's ≈71% average
//!   multi-core efficiency;
//! * **leaf penalty & jitter** — the measured penalty for
//!   computation-intensive runs (many short parallel regions) and the
//!   "low and unstable" 1K-column measurements, reproduced with a
//!   deterministic per-data-set jitter.

use plf_simcore::machine::{ArchClass, MachineConfig, BASELINE, OPTERON_4X4, OPTERON_8X2, XEON_2X4};
use plf_simcore::model::{deterministic_jitter, MachineModel};
use plf_simcore::workload::PlfWorkload;

/// Calibrated model of one multi-core system.
#[derive(Debug, Clone)]
pub struct MultiCoreModel {
    cfg: MachineConfig,
    /// Sustained flops/cycle of the compiled scalar PLF loop.
    ipc_flops: f64,
    /// Per-socket memory bandwidth, bytes/s.
    socket_bw: f64,
    /// Total last-level cache with all cores active, bytes.
    cache_bytes: f64,
    /// Traffic multiplier when a call's working set fits in cache.
    cache_factor: f64,
    /// Fork/join base cost, seconds per parallel region.
    fork_base: f64,
    /// Additional cost per extra die spanned.
    fork_die: f64,
    /// Additional cost per extra socket spanned.
    fork_socket: f64,
    /// Straggler exponent: effective units = units^eff.
    eff_exp: f64,
    /// Leaf-count penalty coefficient on the fork/join cost.
    leaf_coeff: f64,
    /// NUMA bandwidth degradation per extra socket.
    numa_coeff: f64,
    /// Amplitude of the small-data-set jitter.
    jitter_amp: f64,
    /// Serial-code cycle factor vs the baseline core.
    serial_factor: f64,
}

impl MultiCoreModel {
    /// The baseline single-core E8400.
    pub fn baseline() -> MultiCoreModel {
        MultiCoreModel {
            cfg: BASELINE,
            ipc_flops: 1.0,
            socket_bw: 8.5e9,
            cache_bytes: 6.0e6,
            cache_factor: 0.25,
            fork_base: 0.0,
            fork_die: 0.0,
            fork_socket: 0.0,
            eff_exp: 1.0,
            leaf_coeff: 0.0,
            numa_coeff: 0.0,
            jitter_amp: 0.0,
            serial_factor: 1.0,
        }
    }

    /// Two-way quad-core Xeon E5320 (two dual-core dies per package,
    /// FSB-attached memory).
    pub fn xeon_2x4() -> MultiCoreModel {
        MultiCoreModel {
            cfg: XEON_2X4,
            ipc_flops: 1.0,
            socket_bw: 8.0e9,
            cache_bytes: 8.0e6,
            cache_factor: 0.25,
            fork_base: 1.0e-6,
            fork_die: 1.0e-6,
            fork_socket: 2.0e-6,
            eff_exp: 0.94,
            leaf_coeff: 0.35,
            numa_coeff: 0.0,
            jitter_amp: 0.10,
            serial_factor: 0.95,
        }
    }

    /// Four-way quad-core Opteron 8354 (single die, shared L3).
    pub fn opteron_4x4() -> MultiCoreModel {
        MultiCoreModel {
            cfg: OPTERON_4X4,
            ipc_flops: 1.0,
            socket_bw: 6.4e9,
            cache_bytes: 16.0e6,
            cache_factor: 0.25,
            fork_base: 1.0e-6,
            fork_die: 0.5e-6,
            fork_socket: 1.0e-6,
            eff_exp: 0.93,
            leaf_coeff: 0.15,
            numa_coeff: 0.10,
            jitter_amp: 0.25,
            serial_factor: 0.90,
        }
    }

    /// Eight-way dual-core Opteron 8218 (K8, per-core L2).
    pub fn opteron_8x2() -> MultiCoreModel {
        MultiCoreModel {
            cfg: OPTERON_8X2,
            ipc_flops: 0.9,
            socket_bw: 6.4e9,
            cache_bytes: 16.0e6,
            cache_factor: 0.5,
            fork_base: 1.0e-6,
            fork_die: 0.3e-6,
            fork_socket: 0.6e-6,
            eff_exp: 0.93,
            leaf_coeff: 0.50,
            numa_coeff: 0.25,
            jitter_amp: 0.10,
            serial_factor: 1.0,
        }
    }

    /// The three Figure 9 systems, in the figure's legend order.
    pub fn figure9_systems() -> Vec<MultiCoreModel> {
        vec![
            MultiCoreModel::xeon_2x4(),
            MultiCoreModel::opteron_4x4(),
            MultiCoreModel::opteron_8x2(),
        ]
    }

    fn topology(&self) -> (usize, usize, usize) {
        match self.cfg.arch {
            ArchClass::MultiCore {
                sockets,
                dies_per_socket,
                cores_per_die,
                ..
            } => (sockets, dies_per_socket, cores_per_die),
            _ => unreachable!("MultiCoreModel wraps multi-core configs only"),
        }
    }

    /// Fork/join cost per parallel region for a team of `units` threads.
    fn fork_join(&self, units: usize, n_leaves: usize) -> f64 {
        if units <= 1 {
            return 0.0;
        }
        let (_, dies_per_socket, cores_per_die) = self.topology();
        let cores_per_socket = dies_per_socket * cores_per_die;
        let sockets_used = units.div_ceil(cores_per_socket);
        let dies_used = units.div_ceil(cores_per_die);
        let base = self.fork_base
            + self.fork_die * (dies_used - 1) as f64
            + self.fork_socket * (sockets_used - 1) as f64;
        // Empirical leaf penalty: many short, dependent parallel regions
        // (large trees) keep threads bouncing between sleep and work.
        let leaf_factor = 1.0 + self.leaf_coeff * ((n_leaves as f64 / 10.0).ln()).max(0.0);
        base * leaf_factor
    }

    /// Relative speedup of `units` cores vs 1 core — Figure 9's y-axis.
    pub fn speedup(&self, w: &PlfWorkload, units: usize) -> f64 {
        self.plf_time(w, 1) / self.plf_time(w, units)
    }
}

impl MachineModel for MultiCoreModel {
    fn config(&self) -> &MachineConfig {
        &self.cfg
    }

    fn max_units(&self) -> usize {
        self.cfg.cores
    }

    fn plf_time(&self, w: &PlfWorkload, units: usize) -> f64 {
        assert!(units >= 1 && units <= self.cfg.cores, "units {units}");
        let (_, dies_per_socket, cores_per_die) = self.topology();
        let cores_per_socket = dies_per_socket * cores_per_die;
        let sockets_used = units.div_ceil(cores_per_socket);

        let freq = self.cfg.freq_ghz * 1e9;
        let eff_units = (units as f64).powf(self.eff_exp);
        let compute = w.total_flops() / (self.ipc_flops * freq * eff_units);

        // Memory traffic, discounted if a call's working set is cache
        // resident in the caches the active sockets bring.
        let active_cache = self.cache_bytes * sockets_used as f64
            / self.topology().0 as f64;
        let per_call_ws = 3.0 * w.clv_bytes() as f64;
        let traffic_factor = if per_call_ws <= active_cache {
            self.cache_factor
        } else {
            1.0
        };
        let bw = self.socket_bw * sockets_used as f64
            / (1.0 + self.numa_coeff * (sockets_used - 1) as f64);
        let mem = w.total_bytes() * traffic_factor / bw;

        let ovh = self.fork_join(units, w.n_leaves) * w.calls() as f64;

        // Small data sets measure noisily (§4.1.1: "low and unstable").
        let amp = self.jitter_amp * (1.0 - w.n_patterns as f64 / 8000.0).clamp(0.0, 1.0);
        let jitter = deterministic_jitter(
            &format!("{}|{}|{}", self.cfg.name, w.label(), units),
            amp,
        );

        (compute.max(mem) + ovh) * jitter
    }

    fn serial_cycle_factor(&self) -> f64 {
        self.serial_factor
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn w(leaves: usize, patterns: usize) -> PlfWorkload {
        PlfWorkload::for_run(leaves, patterns, 4, 100, 1)
    }

    #[test]
    fn single_core_speedup_is_one() {
        for m in MultiCoreModel::figure9_systems() {
            let s = m.speedup(&w(20, 5000), 1);
            assert!((s - 1.0).abs() < 1e-9, "{}", m.cfg.name);
        }
    }

    #[test]
    fn speedup_below_core_count() {
        for m in MultiCoreModel::figure9_systems() {
            for &leaves in &[10usize, 100] {
                for &pats in &[1000usize, 50000] {
                    let s = m.speedup(&w(leaves, pats), m.max_units());
                    assert!(
                        s > 1.0 && s < m.max_units() as f64,
                        "{} {}x{}: {s}",
                        m.cfg.name,
                        leaves,
                        pats
                    );
                }
            }
        }
    }

    #[test]
    fn larger_data_sets_scale_better() {
        for m in MultiCoreModel::figure9_systems() {
            let small = m.speedup(&w(10, 1000), m.max_units());
            let large = m.speedup(&w(10, 50000), m.max_units());
            assert!(large > small, "{}: {small} !< {large}", m.cfg.name);
        }
    }

    #[test]
    fn leaf_penalty_reduces_speedup() {
        // §4.1.1: increasing computation (leaves → more calls) penalizes
        // the multi-core speedup.
        for m in MultiCoreModel::figure9_systems() {
            let few = m.speedup(&w(10, 1000), m.max_units());
            let many = m.speedup(&w(100, 1000), m.max_units());
            assert!(many < few, "{}: {many} !< {few}", m.cfg.name);
        }
    }

    #[test]
    fn leaf_penalty_most_severe_on_eight_sockets() {
        // §4.1.1: "this becomes more severe with the increasing number of
        // [chips]".
        let rel = |m: &MultiCoreModel| {
            m.speedup(&w(100, 1000), m.max_units()) / m.speedup(&w(10, 1000), m.max_units())
        };
        let xeon = rel(&MultiCoreModel::xeon_2x4());
        let opt4 = rel(&MultiCoreModel::opteron_4x4());
        let opt8 = rel(&MultiCoreModel::opteron_8x2());
        assert!(opt8 < xeon, "opt8 {opt8} vs xeon {xeon}");
        assert!(opt4 > opt8, "opt4 {opt4} vs opt8 {opt8}");
    }

    #[test]
    fn paper_magnitudes() {
        // Xeon peaks ≈6–8 on 8 cores; 16-core systems peak ≈11–15.
        let xeon = MultiCoreModel::xeon_2x4().speedup(&w(10, 50000), 8);
        assert!((5.5..8.0).contains(&xeon), "xeon {xeon}");
        let opt4 = MultiCoreModel::opteron_4x4().speedup(&w(10, 50000), 16);
        assert!((10.0..16.0).contains(&opt4), "opt4 {opt4}");
        let opt8 = MultiCoreModel::opteron_8x2().speedup(&w(10, 50000), 16);
        assert!((9.0..15.0).contains(&opt8), "opt8 {opt8}");
    }

    #[test]
    fn opteron4_unstable_at_1k() {
        // Jitter varies across the 1K data sets but not at 20K+.
        let m = MultiCoreModel::opteron_4x4();
        let s10 = m.speedup(&w(10, 1000), 16);
        let s20 = m.speedup(&w(20, 1000), 16);
        assert!((s10 - s20).abs() > 1e-6);
        let t1 = m.plf_time(&w(10, 20000), 16);
        let t2 = m.plf_time(&w(10, 20000), 16);
        assert_eq!(t1, t2);
    }

    #[test]
    fn plf_time_decreases_with_units() {
        let m = MultiCoreModel::opteron_4x4();
        let wl = w(50, 20000);
        let mut prev = f64::INFINITY;
        for units in [1usize, 2, 4, 8, 16] {
            let t = m.plf_time(&wl, units);
            assert!(t < prev, "units {units}: {t} !< {prev}");
            prev = t;
        }
    }

    #[test]
    fn breakdown_frequency_scaling() {
        use plf_simcore::model::MachineModel as _;
        let m = MultiCoreModel::xeon_2x4();
        let b = m.breakdown(&w(20, 8543), 5.0);
        assert!(b.plf_s > 0.0);
        assert!((b.remaining_s - 5.0 * 0.95).abs() < 1e-12);
        assert_eq!(b.transfer_s, 0.0);
    }
}

//! Markov-chain state: tree, branch lengths, and model parameters.

use plf_phylo::model::GtrParams;
use plf_phylo::tree::Tree;

/// The full parameter state of one chain.
#[derive(Debug, Clone)]
pub struct ChainState {
    /// Current topology and branch lengths.
    pub tree: Tree,
    /// Current GTR exchangeabilities and base frequencies.
    pub params: GtrParams,
    /// Current Γ shape parameter α.
    pub shape: f64,
    /// Current proportion of invariable sites (`+I`; 0 disables it).
    pub pinvar: f64,
    /// Log-likelihood of the current state (kept in sync by the chain).
    pub ln_likelihood: f64,
}

impl ChainState {
    /// Initial state with an unevaluated likelihood.
    pub fn new(tree: Tree, params: GtrParams, shape: f64) -> ChainState {
        ChainState {
            tree,
            params,
            shape,
            pinvar: 0.0,
            ln_likelihood: f64::NEG_INFINITY,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clone_is_independent() {
        let tree = Tree::from_newick("((a:0.1,b:0.2):0.05,c:0.3,d:0.4);").unwrap();
        let s = ChainState::new(tree, GtrParams::jc69(), 0.5);
        let mut c = s.clone();
        let branch = c.tree.branches()[0];
        c.tree.node_mut(branch).branch = 9.0;
        c.shape = 2.0;
        assert_eq!(s.shape, 0.5);
        assert!((s.tree.tree_length() - 1.05).abs() < 1e-12);
    }
}

//! Metropolis-coupled MCMC (MC³) — the flagship algorithm of MrBayes 3.
//!
//! Several chains run simultaneously: one *cold* chain samples the true
//! posterior while heated chains (`β_i = 1 / (1 + i·ΔT)`) explore a
//! flattened landscape; periodic state-swap moves let the cold chain
//! teleport across likelihood valleys. Chains are independent between
//! swaps, so MC³ is also the natural *coarse-grain* parallelism of
//! Bayesian phylogenetics — the complement to the paper's fine-grain
//! PLF parallelism (PBPI's "multi-grain" combines both; see §5). This
//! driver can run its chains on host threads, each with its own
//! [`PlfBackend`].

use crate::chain::{Chain, ChainError, ChainOptions, RunAccum, Sample};
use crate::priors::Priors;
use crate::trace::TraceRecord;
use plf_phylo::alignment::PatternAlignment;
use plf_phylo::kernels::PlfBackend;
use plf_phylo::likelihood::LikelihoodError;
use plf_phylo::model::GtrParams;
use plf_phylo::resilience::panic_message;
use plf_phylo::tree::Tree;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::{Duration, Instant};

/// MC³ configuration.
#[derive(Debug, Clone)]
pub struct Mc3Options {
    /// Number of coupled chains (MrBayes default: 4).
    pub n_chains: usize,
    /// Temperature increment ΔT (MrBayes default: 0.1).
    pub heat: f64,
    /// Generations between swap attempts.
    pub swap_every: usize,
    /// Run the chains of each block on separate host threads.
    pub parallel: bool,
    /// Per-chain options; `generations` is the total run length and
    /// `seed` seeds chain 0 (chain `i` uses `seed + i`).
    pub chain: ChainOptions,
}

impl Default for Mc3Options {
    fn default() -> Mc3Options {
        Mc3Options {
            n_chains: 4,
            heat: 0.1,
            swap_every: 10,
            parallel: false,
            chain: ChainOptions::default(),
        }
    }
}

/// Results of an MC³ run.
#[derive(Debug, Clone)]
pub struct Mc3Stats {
    /// Posterior samples from the cold chain.
    pub cold_samples: Vec<Sample>,
    /// Full trace records from the cold chain (if enabled).
    pub cold_trace: Vec<TraceRecord>,
    /// Swap attempts.
    pub swaps_proposed: u64,
    /// Accepted swaps.
    pub swaps_accepted: u64,
    /// `(β, accumulators)` per chain slot.
    pub per_chain: Vec<(f64, RunAccum)>,
    /// Final cold-chain log-likelihood.
    pub final_cold_ln_likelihood: f64,
    /// Wall time of the whole run.
    pub total_time: Duration,
}

impl Mc3Stats {
    /// Fraction of accepted swaps.
    pub fn swap_acceptance(&self) -> f64 {
        if self.swaps_proposed == 0 {
            0.0
        } else {
            self.swaps_accepted as f64 / self.swaps_proposed as f64
        }
    }

    /// Total PLF kernel calls across all chains.
    pub fn total_plf_calls(&self) -> u64 {
        self.per_chain.iter().map(|(_, a)| a.plf_calls).sum()
    }
}

/// A Metropolis-coupled ensemble over one data set.
pub struct Mc3 {
    chains: Vec<Chain>,
    rng: StdRng,
    options: Mc3Options,
}

impl Mc3 {
    /// Build `n_chains` coupled chains, all starting from the same tree
    /// and model but with distinct RNG streams and temperatures.
    pub fn new(
        tree: Tree,
        data: &PatternAlignment,
        params: GtrParams,
        shape: f64,
        priors: Priors,
        options: Mc3Options,
    ) -> Result<Mc3, LikelihoodError> {
        assert!(options.n_chains >= 1);
        assert!(options.heat >= 0.0);
        assert!(options.swap_every >= 1);
        let mut chains = Vec::with_capacity(options.n_chains);
        for i in 0..options.n_chains {
            let chain_opts = ChainOptions {
                seed: options.chain.seed + i as u64,
                ..options.chain.clone()
            };
            let mut chain = Chain::new(
                tree.clone(),
                data,
                params.clone(),
                shape,
                priors.clone(),
                chain_opts,
            )?;
            chain.set_temperature(1.0 / (1.0 + i as f64 * options.heat));
            chains.push(chain);
        }
        Ok(Mc3 {
            chains,
            rng: StdRng::seed_from_u64(options.chain.seed ^ 0x4d43_3333),
            options,
        })
    }

    /// The chains (for inspection).
    pub fn chains(&self) -> &[Chain] {
        &self.chains
    }

    /// Run a block of `steps` generations on every chain, optionally in
    /// parallel (one thread per chain). A PLF failure or worker panic
    /// in any chain aborts the block and surfaces as a [`ChainError`];
    /// sibling chains still finish their block first, so every chain
    /// is left in a consistent (pre- or post-block) state.
    fn run_block(
        &mut self,
        backends: &mut [Box<dyn PlfBackend>],
        steps: usize,
    ) -> Result<(), ChainError> {
        if self.options.parallel && self.chains.len() > 1 {
            let results: Vec<Result<(), ChainError>> = std::thread::scope(|scope| {
                let handles: Vec<_> = self
                    .chains
                    .iter_mut()
                    .zip(backends.iter_mut())
                    .map(|(chain, backend)| {
                        scope.spawn(move || -> Result<(), ChainError> {
                            chain.initialize(backend.as_mut())?;
                            for _ in 0..steps {
                                chain.step(backend.as_mut())?;
                            }
                            Ok(())
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| {
                        h.join().unwrap_or_else(|payload| {
                            Err(ChainError::Panic(panic_message(payload.as_ref())))
                        })
                    })
                    .collect()
            });
            results.into_iter().collect()
        } else {
            for (chain, backend) in self.chains.iter_mut().zip(backends.iter_mut()) {
                chain.initialize(backend.as_mut())?;
                for _ in 0..steps {
                    chain.step(backend.as_mut())?;
                }
            }
            Ok(())
        }
    }

    /// Run to completion. `backends` must provide one backend per chain.
    pub fn run(
        &mut self,
        backends: &mut [Box<dyn PlfBackend>],
    ) -> Result<Mc3Stats, ChainError> {
        assert_eq!(
            backends.len(),
            self.chains.len(),
            "need one backend per chain"
        );
        let start = Instant::now();
        let total = self.options.chain.generations;
        let swap_every = self.options.swap_every;
        let sample_every = self.options.chain.sample_every;
        let mut cold_samples = Vec::new();
        let mut cold_trace = Vec::new();
        let mut swaps_proposed = 0u64;
        let mut swaps_accepted = 0u64;

        let mut done = 0usize;
        while done < total {
            let steps = swap_every.min(total - done);
            self.run_block(backends, steps)?;
            done += steps;

            // Swap attempt between a random adjacent pair.
            if self.chains.len() > 1 {
                swaps_proposed += 1;
                let i = self.rng.gen_range(0..self.chains.len() - 1);
                let (beta_i, beta_j) = (
                    self.chains[i].temperature(),
                    self.chains[i + 1].temperature(),
                );
                let (lp_i, lp_j) = (
                    self.chains[i].ln_posterior(),
                    self.chains[i + 1].ln_posterior(),
                );
                let ln_accept = (beta_i - beta_j) * (lp_j - lp_i);
                let u: f64 = self.rng.gen_range(f64::MIN_POSITIVE..1.0);
                if u.ln() < ln_accept {
                    let (a, b) = self.chains.split_at_mut(i + 1);
                    Chain::swap_payload(&mut a[i], &mut b[0]);
                    swaps_accepted += 1;
                }
            }

            // Cold-chain sampling at block boundaries.
            if sample_every > 0 && done.is_multiple_of(sample_every) {
                let cold = &self.chains[0];
                cold_samples.push(Sample {
                    generation: done,
                    ln_likelihood: cold.state().ln_likelihood,
                    tree_length: cold.state().tree.tree_length(),
                    shape: cold.state().shape,
                });
                if self.options.chain.record_trace {
                    cold_trace.push(TraceRecord {
                        generation: done,
                        ln_likelihood: cold.state().ln_likelihood,
                        tree_length: cold.state().tree.tree_length(),
                        shape: cold.state().shape,
                        pinvar: cold.state().pinvar,
                        freqs: cold.state().params.freqs,
                        rates: cold.state().params.rates,
                        newick: cold.state().tree.to_newick(),
                    });
                }
            }
        }

        Ok(Mc3Stats {
            cold_samples,
            cold_trace,
            swaps_proposed,
            swaps_accepted,
            per_chain: self
                .chains
                .iter()
                .map(|c| (c.temperature(), c.accum().clone()))
                .collect(),
            final_cold_ln_likelihood: self.chains[0].state().ln_likelihood,
            total_time: start.elapsed(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use plf_phylo::alignment::Alignment;
    use plf_phylo::kernels::ScalarBackend;

    fn toy_data() -> (Tree, PatternAlignment) {
        let tree = Tree::from_newick(
            "(((a:0.1,b:0.1):0.1,(c:0.1,d:0.1):0.1):0.1,(e:0.1,f:0.1):0.1,g:0.2);",
        )
        .unwrap();
        let aln = Alignment::from_strings(&[
            ("a", "ACGTACGTAAGGCCTTAGCAACGTAGGA"),
            ("b", "ACGTACGTACGGCCTTAGCAACGTAGGA"),
            ("c", "ACGAACGTTAGGCCTAAGCAACGAAGGA"),
            ("d", "ACTTACGTAAGGCGTTAGCAACGTAGGT"),
            ("e", "ACGTACGTAAGGCCTTAGCCACGTAGGA"),
            ("f", "ACGTTCGTAAGGCCTTAGCAACGTCGGA"),
            ("g", "AGGTACGTAAGGCCTTAGCAACGTAGGA"),
        ])
        .unwrap()
        .compress();
        (tree, aln)
    }

    fn backends(n: usize) -> Vec<Box<dyn PlfBackend>> {
        (0..n)
            .map(|_| Box::new(ScalarBackend) as Box<dyn PlfBackend>)
            .collect()
    }

    fn mc3_with(n_chains: usize, parallel: bool, generations: usize) -> Mc3 {
        let (tree, aln) = toy_data();
        Mc3::new(
            tree,
            &aln,
            GtrParams::jc69(),
            0.5,
            Priors::default(),
            Mc3Options {
                n_chains,
                parallel,
                swap_every: 10,
                chain: ChainOptions {
                    generations,
                    seed: 5,
                    sample_every: 50,
                    ..ChainOptions::default()
                },
                ..Mc3Options::default()
            },
        )
        .unwrap()
    }

    #[test]
    fn single_chain_mc3_equals_plain_chain() {
        let (tree, aln) = toy_data();
        let mut plain = Chain::new(
            tree,
            &aln,
            GtrParams::jc69(),
            0.5,
            Priors::default(),
            ChainOptions {
                generations: 200,
                seed: 5,
                sample_every: 50,
                ..ChainOptions::default()
            },
        )
        .unwrap();
        let plain_stats = plain.run(&mut ScalarBackend).unwrap();
        let mut mc3 = mc3_with(1, false, 200);
        let stats = mc3.run(&mut backends(1)).unwrap();
        assert_eq!(stats.final_cold_ln_likelihood, plain_stats.final_ln_likelihood);
        assert_eq!(stats.swaps_proposed, 0);
    }

    #[test]
    fn swaps_happen_and_are_bounded() {
        let mut mc3 = mc3_with(4, false, 400);
        let stats = mc3.run(&mut backends(4)).unwrap();
        assert_eq!(stats.swaps_proposed, 40);
        assert!(stats.swaps_accepted <= stats.swaps_proposed);
        assert!(stats.swaps_accepted > 0, "no swap ever accepted");
        assert_eq!(stats.per_chain.len(), 4);
        // Temperatures form the MrBayes ladder.
        for (i, (beta, _)) in stats.per_chain.iter().enumerate() {
            assert!((beta - 1.0 / (1.0 + 0.1 * i as f64)).abs() < 1e-12);
        }
    }

    #[test]
    fn strong_heating_raises_acceptance() {
        // Identical chains (same seed, same proposals) at β = 1 vs a
        // strongly heated β = 0.1: the flattened posterior must accept
        // at least as many moves, and strictly more over a long run.
        let (tree, aln) = toy_data();
        let rate_at = |beta: f64| {
            let mut chain = Chain::new(
                tree.clone(),
                &aln,
                GtrParams::jc69(),
                0.5,
                Priors::default(),
                ChainOptions {
                    generations: 800,
                    seed: 9,
                    sample_every: 0,
                    ..ChainOptions::default()
                },
            )
            .unwrap();
            chain.set_temperature(beta);
            let stats = chain.run(&mut ScalarBackend).unwrap();
            let (p, a) = stats
                .proposals
                .iter()
                .fold((0u64, 0u64), |(p, a), (_, s)| (p + s.proposed, a + s.accepted));
            a as f64 / p as f64
        };
        let cold = rate_at(1.0);
        let hot = rate_at(0.1);
        assert!(
            hot > cold,
            "heated chain should accept more: cold {cold:.3} vs hot {hot:.3}"
        );
    }

    #[test]
    fn parallel_and_serial_agree() {
        let serial = mc3_with(3, false, 300).run(&mut backends(3)).unwrap();
        let parallel = mc3_with(3, true, 300).run(&mut backends(3)).unwrap();
        assert_eq!(
            serial.final_cold_ln_likelihood,
            parallel.final_cold_ln_likelihood
        );
        assert_eq!(serial.swaps_accepted, parallel.swaps_accepted);
    }

    #[test]
    fn cold_samples_recorded() {
        let mut mc3 = mc3_with(2, false, 200);
        let stats = mc3.run(&mut backends(2)).unwrap();
        assert_eq!(stats.cold_samples.len(), 4);
        assert!(stats.total_plf_calls() > 0);
    }
}

//! # plf-mcmc — MrBayes-like Bayesian phylogenetic inference
//!
//! A Metropolis–Hastings MCMC driver over GTR+Γ tree space, reproducing
//! the application structure the paper parallelizes: a serial chain
//! ("Remaining" time in Figure 12) that calls the Phylogenetic
//! Likelihood Function — through any [`plf_phylo::kernels::PlfBackend`] —
//! for every proposal. Chains run with fixed seeds and fixed generation
//! counts, as in §4 of the paper.

#![warn(missing_docs)]
// Fixed-size 4-state matrix math reads clearest with explicit indices;
// iterator adaptors would obscure the correspondence with the paper's
// formulas.
#![allow(clippy::needless_range_loop)]

pub mod chain;
pub mod checkpoint;
pub mod consensus;
pub mod mc3;
pub mod priors;
pub mod proposals;
pub mod rng;
pub mod state;
pub mod trace;

pub use chain::{Chain, ChainError, ChainOptions, ChainStats, ProposalStats, RunAccum, Sample};
pub use checkpoint::{ChainCheckpoint, CHECKPOINT_FORMAT_VERSION};
pub use consensus::{consensus_from_newicks, majority_consensus, robinson_foulds, Consensus};
pub use mc3::{Mc3, Mc3Options, Mc3Stats};
pub use priors::Priors;
pub use proposals::{ProposalKind, Tuning, ALL_PROPOSALS};
pub use state::ChainState;
pub use trace::{p_file, summarize, t_file, ThroughputRecord, TraceRecord, TraceSummary};

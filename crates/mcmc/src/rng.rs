//! Random-variate sampling used by the MCMC proposals.
//!
//! The offline `rand` crate provides uniform sampling only, so the
//! gamma/normal/Dirichlet variates the proposals need are implemented
//! here with standard algorithms (Box–Muller, Marsaglia–Tsang).

use rand::Rng;

/// Standard normal variate (Box–Muller).
pub fn normal<R: Rng>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Gamma(shape, scale 1) variate (Marsaglia & Tsang 2000, with the
/// shape<1 boost).
pub fn gamma<R: Rng>(shape: f64, rng: &mut R) -> f64 {
    assert!(shape > 0.0 && shape.is_finite());
    if shape < 1.0 {
        // Boost: G(a) = G(a+1) * U^{1/a}.
        let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        return gamma(shape + 1.0, rng) * u.powf(1.0 / shape);
    }
    let d = shape - 1.0 / 3.0;
    let c = 1.0 / (9.0 * d).sqrt();
    loop {
        let x = normal(rng);
        let v = 1.0 + c * x;
        if v <= 0.0 {
            continue;
        }
        let v = v * v * v;
        let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        if u.ln() < 0.5 * x * x + d - d * v + d * v.ln() {
            return d * v;
        }
    }
}

/// Dirichlet(alphas) variate via normalized gammas.
pub fn dirichlet<R: Rng, const N: usize>(alphas: &[f64; N], rng: &mut R) -> [f64; N] {
    let mut draws = [0.0f64; N];
    let mut sum = 0.0;
    for (d, &a) in draws.iter_mut().zip(alphas.iter()) {
        *d = gamma(a, rng).max(1e-300);
        sum += *d;
    }
    for d in &mut draws {
        *d /= sum;
    }
    draws
}

/// Log density of Dirichlet(alphas) at `x` (x on the simplex).
pub fn ln_dirichlet_pdf<const N: usize>(alphas: &[f64; N], x: &[f64; N]) -> f64 {
    use plf_phylo::model::ln_gamma;
    let a0: f64 = alphas.iter().sum();
    let mut ln = ln_gamma(a0);
    for i in 0..N {
        ln -= ln_gamma(alphas[i]);
        ln += (alphas[i] - 1.0) * x[i].ln();
    }
    ln
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn normal_moments() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 20_000;
        let draws: Vec<f64> = (0..n).map(|_| normal(&mut rng)).collect();
        let mean = draws.iter().sum::<f64>() / n as f64;
        let var = draws.iter().map(|d| (d - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.03, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn gamma_moments() {
        let mut rng = StdRng::seed_from_u64(2);
        for &shape in &[0.5f64, 1.0, 2.0, 8.0] {
            let n = 20_000;
            let draws: Vec<f64> = (0..n).map(|_| gamma(shape, &mut rng)).collect();
            let mean = draws.iter().sum::<f64>() / n as f64;
            let var = draws.iter().map(|d| (d - mean).powi(2)).sum::<f64>() / n as f64;
            assert!((mean - shape).abs() < 0.1 * shape.max(1.0), "shape {shape} mean {mean}");
            assert!((var - shape).abs() < 0.2 * shape.max(1.0), "shape {shape} var {var}");
        }
    }

    #[test]
    fn gamma_positive() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            assert!(gamma(0.3, &mut rng) > 0.0);
        }
    }

    #[test]
    fn dirichlet_on_simplex() {
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..100 {
            let d = dirichlet(&[2.0, 3.0, 4.0, 1.0], &mut rng);
            assert!((d.iter().sum::<f64>() - 1.0).abs() < 1e-12);
            assert!(d.iter().all(|&x| x > 0.0));
        }
    }

    #[test]
    fn dirichlet_mean() {
        let mut rng = StdRng::seed_from_u64(5);
        let alphas = [4.0, 2.0, 1.0, 1.0];
        let n = 10_000;
        let mut acc = [0.0f64; 4];
        for _ in 0..n {
            let d = dirichlet(&alphas, &mut rng);
            for i in 0..4 {
                acc[i] += d[i];
            }
        }
        let a0: f64 = alphas.iter().sum();
        for i in 0..4 {
            let mean = acc[i] / n as f64;
            assert!((mean - alphas[i] / a0).abs() < 0.02, "component {i}: {mean}");
        }
    }

    #[test]
    fn dirichlet_pdf_uniform_case() {
        // Dirichlet(1,1,1,1) density is Γ(4) = 6 everywhere: ln = ln 6.
        let ln = ln_dirichlet_pdf(&[1.0; 4], &[0.25; 4]);
        assert!((ln - 6.0f64.ln()).abs() < 1e-10);
    }
}

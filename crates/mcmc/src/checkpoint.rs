//! Chain checkpoint/restore — crash-consistent MCMC state snapshots.
//!
//! A [`ChainCheckpoint`] captures everything a chain needs to continue
//! *bitwise-identically* after a crash: the tree (topology + branch
//! lengths), model parameters, the xoshiro256++ RNG state, the
//! generation counter, run accumulators, and the samples/trace recorded
//! so far. All `f64` values are stored as raw IEEE-754 bit patterns
//! (`u64`), never as decimal text, so a round-trip through JSON cannot
//! perturb the trajectory by even one ULP. On restore the chain
//! re-evaluates the likelihood from the restored state and refuses to
//! continue unless it reproduces the checkpointed value bit-for-bit —
//! a torn or hand-edited checkpoint is detected, not silently resumed.

use crate::chain::{ChainError, ChainOptions, ProposalStats, RunAccum, Sample};
use crate::proposals::ALL_PROPOSALS;
use crate::trace::TraceRecord;
use plf_phylo::tree::{Node, NodeId, Tree};
use serde::{Number, Value};
use std::time::Duration;

/// On-disk format version; bumped on incompatible layout changes.
pub const CHECKPOINT_FORMAT_VERSION: u64 = 1;

/// One tree node in serializable form.
#[derive(Debug, Clone, PartialEq)]
pub struct CheckpointNode {
    /// Parent index (`None` for the root).
    pub parent: Option<usize>,
    /// Child indices.
    pub children: Vec<usize>,
    /// Branch length to the parent.
    pub branch: f64,
    /// Taxon name (leaves only).
    pub name: Option<String>,
}

/// Serializable snapshot of [`RunAccum`].
#[derive(Debug, Clone, PartialEq)]
pub struct AccumSnapshot {
    /// Proposal counts in [`ALL_PROPOSALS`] order.
    pub proposed: [u64; 7],
    /// Acceptance counts in [`ALL_PROPOSALS`] order.
    pub accepted: [u64; 7],
    /// Likelihood evaluations performed.
    pub n_evaluations: u64,
    /// Kernel invocations.
    pub plf_calls: u64,
    /// Wall nanoseconds inside the PLF.
    pub plf_time_nanos: u64,
}

impl AccumSnapshot {
    /// Capture a [`RunAccum`].
    pub fn from_accum(accum: &RunAccum) -> AccumSnapshot {
        AccumSnapshot {
            proposed: std::array::from_fn(|i| accum.proposals[i].1.proposed),
            accepted: std::array::from_fn(|i| accum.proposals[i].1.accepted),
            n_evaluations: accum.n_evaluations,
            plf_calls: accum.plf_calls,
            plf_time_nanos: accum.plf_time.as_nanos() as u64,
        }
    }

    /// Rebuild the [`RunAccum`].
    pub fn to_accum(&self) -> RunAccum {
        RunAccum {
            proposals: std::array::from_fn(|i| {
                (
                    ALL_PROPOSALS[i],
                    ProposalStats {
                        proposed: self.proposed[i],
                        accepted: self.accepted[i],
                    },
                )
            }),
            n_evaluations: self.n_evaluations,
            plf_calls: self.plf_calls,
            plf_time: Duration::from_nanos(self.plf_time_nanos),
        }
    }
}

/// A complete, self-describing chain snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct ChainCheckpoint {
    /// Format version ([`CHECKPOINT_FORMAT_VERSION`]).
    pub format_version: u64,
    /// RNG seed of the original run (fingerprint field).
    pub seed: u64,
    /// Total generations of the original run (fingerprint field).
    pub generations: usize,
    /// Sampling period (fingerprint field).
    pub sample_every: usize,
    /// Scaler period (fingerprint field).
    pub scale_every: usize,
    /// Γ categories (fingerprint field).
    pub n_rates: usize,
    /// Incremental-evaluator flag (fingerprint field).
    pub incremental: bool,
    /// Generations already executed.
    pub generation: usize,
    /// MC³ inverse temperature.
    pub beta: f64,
    /// xoshiro256++ internal state.
    pub rng_state: [u64; 4],
    /// Log prior of the current state.
    pub cur_prior: f64,
    /// GTR exchangeabilities.
    pub rates: [f64; 6],
    /// Stationary frequencies.
    pub freqs: [f64; 4],
    /// Γ shape α.
    pub shape: f64,
    /// Proportion of invariable sites.
    pub pinvar: f64,
    /// Log-likelihood of the current state (verified on restore).
    pub ln_likelihood: f64,
    /// Tree node arena.
    pub tree_nodes: Vec<CheckpointNode>,
    /// Root index.
    pub tree_root: usize,
    /// Run accumulators.
    pub accum: AccumSnapshot,
    /// Samples recorded so far.
    pub samples: Vec<Sample>,
    /// Trace records recorded so far.
    pub trace: Vec<TraceRecord>,
}

impl ChainCheckpoint {
    /// Snapshot a tree into serializable nodes.
    pub fn snapshot_tree(tree: &Tree) -> (Vec<CheckpointNode>, usize) {
        let nodes = tree
            .node_ids()
            .map(|id| {
                let n = tree.node(id);
                CheckpointNode {
                    parent: n.parent.map(|p| p.0),
                    children: n.children.iter().map(|c| c.0).collect(),
                    branch: n.branch,
                    name: n.name.clone(),
                }
            })
            .collect();
        (nodes, tree.root().0)
    }

    /// Rebuild the tree, preserving every `NodeId`.
    pub fn restore_tree(&self) -> Result<Tree, ChainError> {
        let nodes = self
            .tree_nodes
            .iter()
            .map(|n| Node {
                parent: n.parent.map(NodeId),
                children: n.children.iter().map(|&c| NodeId(c)).collect(),
                branch: n.branch,
                name: n.name.clone(),
            })
            .collect();
        Tree::from_parts(nodes, NodeId(self.tree_root))
            .map_err(|e| ChainError::Checkpoint(format!("invalid tree in checkpoint: {e}")))
    }

    /// Verify this checkpoint belongs to a run configured by `options`.
    pub fn check_compatible(&self, options: &ChainOptions) -> Result<(), ChainError> {
        if self.format_version != CHECKPOINT_FORMAT_VERSION {
            return Err(ChainError::Checkpoint(format!(
                "checkpoint format v{} (expected v{CHECKPOINT_FORMAT_VERSION})",
                self.format_version
            )));
        }
        let mismatches: Vec<String> = [
            ("seed", self.seed != options.seed),
            ("generations", self.generations != options.generations),
            ("sample_every", self.sample_every != options.sample_every),
            ("scale_every", self.scale_every != options.scale_every),
            ("n_rates", self.n_rates != options.n_rates),
            ("incremental", self.incremental != options.incremental),
        ]
        .iter()
        .filter(|(_, bad)| *bad)
        .map(|(name, _)| name.to_string())
        .collect();
        if mismatches.is_empty() {
            Ok(())
        } else {
            Err(ChainError::Checkpoint(format!(
                "checkpoint does not match the chain options: {}",
                mismatches.join(", ")
            )))
        }
    }

    /// Serialize to pretty JSON. Floats are emitted as `u64` bit
    /// patterns, so the text round-trips bit-exactly.
    pub fn to_json(&self) -> String {
        let mut obj: Vec<(String, Value)> = Vec::new();
        let mut put = |k: &str, v: Value| obj.push((k.to_string(), v));
        put("format_version", uint(self.format_version));
        put("seed", uint(self.seed));
        put("generations", uint(self.generations as u64));
        put("sample_every", uint(self.sample_every as u64));
        put("scale_every", uint(self.scale_every as u64));
        put("n_rates", uint(self.n_rates as u64));
        put("incremental", Value::Bool(self.incremental));
        put("generation", uint(self.generation as u64));
        put("beta", bits(self.beta));
        put(
            "rng_state",
            Value::Array(self.rng_state.iter().map(|&s| uint(s)).collect()),
        );
        put("cur_prior", bits(self.cur_prior));
        put(
            "rates",
            Value::Array(self.rates.iter().map(|&r| bits(r)).collect()),
        );
        put(
            "freqs",
            Value::Array(self.freqs.iter().map(|&f| bits(f)).collect()),
        );
        put("shape", bits(self.shape));
        put("pinvar", bits(self.pinvar));
        put("ln_likelihood", bits(self.ln_likelihood));
        put(
            "tree_nodes",
            Value::Array(
                self.tree_nodes
                    .iter()
                    .map(|n| {
                        Value::Object(vec![
                            (
                                "parent".to_string(),
                                n.parent.map_or(Value::Null, |p| uint(p as u64)),
                            ),
                            (
                                "children".to_string(),
                                Value::Array(
                                    n.children.iter().map(|&c| uint(c as u64)).collect(),
                                ),
                            ),
                            ("branch".to_string(), bits(n.branch)),
                            (
                                "name".to_string(),
                                n.name
                                    .as_ref()
                                    .map_or(Value::Null, |s| Value::String(s.clone())),
                            ),
                        ])
                    })
                    .collect(),
            ),
        );
        put("tree_root", uint(self.tree_root as u64));
        put(
            "accum",
            Value::Object(vec![
                (
                    "proposed".to_string(),
                    Value::Array(self.accum.proposed.iter().map(|&v| uint(v)).collect()),
                ),
                (
                    "accepted".to_string(),
                    Value::Array(self.accum.accepted.iter().map(|&v| uint(v)).collect()),
                ),
                ("n_evaluations".to_string(), uint(self.accum.n_evaluations)),
                ("plf_calls".to_string(), uint(self.accum.plf_calls)),
                ("plf_time_nanos".to_string(), uint(self.accum.plf_time_nanos)),
            ]),
        );
        put(
            "samples",
            Value::Array(
                self.samples
                    .iter()
                    .map(|s| {
                        Value::Object(vec![
                            ("generation".to_string(), uint(s.generation as u64)),
                            ("ln_likelihood".to_string(), bits(s.ln_likelihood)),
                            ("tree_length".to_string(), bits(s.tree_length)),
                            ("shape".to_string(), bits(s.shape)),
                        ])
                    })
                    .collect(),
            ),
        );
        put(
            "trace",
            Value::Array(
                self.trace
                    .iter()
                    .map(|t| {
                        Value::Object(vec![
                            ("generation".to_string(), uint(t.generation as u64)),
                            ("ln_likelihood".to_string(), bits(t.ln_likelihood)),
                            ("tree_length".to_string(), bits(t.tree_length)),
                            ("shape".to_string(), bits(t.shape)),
                            ("pinvar".to_string(), bits(t.pinvar)),
                            (
                                "freqs".to_string(),
                                Value::Array(t.freqs.iter().map(|&f| bits(f)).collect()),
                            ),
                            (
                                "rates".to_string(),
                                Value::Array(t.rates.iter().map(|&r| bits(r)).collect()),
                            ),
                            ("newick".to_string(), Value::String(t.newick.clone())),
                        ])
                    })
                    .collect(),
            ),
        );
        serde_json::to_string_pretty(&Value::Object(obj))
            .expect("in-memory JSON serialization is infallible")
    }

    /// Parse a checkpoint back from JSON text.
    pub fn from_json(text: &str) -> Result<ChainCheckpoint, ChainError> {
        let root = serde_json::from_str(text)
            .map_err(|e| ChainError::Checkpoint(format!("checkpoint parse: {e}")))?;
        let ckpt = ChainCheckpoint {
            format_version: get_u64(&root, "format_version")?,
            seed: get_u64(&root, "seed")?,
            generations: get_u64(&root, "generations")? as usize,
            sample_every: get_u64(&root, "sample_every")? as usize,
            scale_every: get_u64(&root, "scale_every")? as usize,
            n_rates: get_u64(&root, "n_rates")? as usize,
            incremental: get_bool(&root, "incremental")?,
            generation: get_u64(&root, "generation")? as usize,
            beta: get_bits(&root, "beta")?,
            rng_state: {
                let arr = get_u64_array(&root, "rng_state")?;
                arr.try_into().map_err(|_| {
                    ChainError::Checkpoint("rng_state must have 4 words".into())
                })?
            },
            cur_prior: get_bits(&root, "cur_prior")?,
            rates: fixed(get_bits_array(&root, "rates")?, "rates")?,
            freqs: fixed(get_bits_array(&root, "freqs")?, "freqs")?,
            shape: get_bits(&root, "shape")?,
            pinvar: get_bits(&root, "pinvar")?,
            ln_likelihood: get_bits(&root, "ln_likelihood")?,
            tree_nodes: field(&root, "tree_nodes")?
                .as_array()
                .ok_or_else(|| ChainError::Checkpoint("tree_nodes must be an array".into()))?
                .iter()
                .map(parse_node)
                .collect::<Result<Vec<_>, _>>()?,
            tree_root: get_u64(&root, "tree_root")? as usize,
            accum: {
                let a = field(&root, "accum")?;
                AccumSnapshot {
                    proposed: fixed_u64(get_u64_array(a, "proposed")?, "proposed")?,
                    accepted: fixed_u64(get_u64_array(a, "accepted")?, "accepted")?,
                    n_evaluations: get_u64(a, "n_evaluations")?,
                    plf_calls: get_u64(a, "plf_calls")?,
                    plf_time_nanos: get_u64(a, "plf_time_nanos")?,
                }
            },
            samples: field(&root, "samples")?
                .as_array()
                .ok_or_else(|| ChainError::Checkpoint("samples must be an array".into()))?
                .iter()
                .map(|s| {
                    Ok(Sample {
                        generation: get_u64(s, "generation")? as usize,
                        ln_likelihood: get_bits(s, "ln_likelihood")?,
                        tree_length: get_bits(s, "tree_length")?,
                        shape: get_bits(s, "shape")?,
                    })
                })
                .collect::<Result<Vec<_>, ChainError>>()?,
            trace: field(&root, "trace")?
                .as_array()
                .ok_or_else(|| ChainError::Checkpoint("trace must be an array".into()))?
                .iter()
                .map(|t| {
                    Ok(TraceRecord {
                        generation: get_u64(t, "generation")? as usize,
                        ln_likelihood: get_bits(t, "ln_likelihood")?,
                        tree_length: get_bits(t, "tree_length")?,
                        shape: get_bits(t, "shape")?,
                        pinvar: get_bits(t, "pinvar")?,
                        freqs: fixed(get_bits_array(t, "freqs")?, "trace freqs")?,
                        rates: fixed(get_bits_array(t, "rates")?, "trace rates")?,
                        newick: field(t, "newick")?
                            .as_str()
                            .ok_or_else(|| {
                                ChainError::Checkpoint("newick must be a string".into())
                            })?
                            .to_string(),
                    })
                })
                .collect::<Result<Vec<_>, ChainError>>()?,
        };
        Ok(ckpt)
    }
}

fn bits(v: f64) -> Value {
    Value::Number(Number::PosInt(v.to_bits()))
}

fn uint(v: u64) -> Value {
    Value::Number(Number::PosInt(v))
}

fn field<'a>(obj: &'a Value, key: &str) -> Result<&'a Value, ChainError> {
    obj.get(key)
        .ok_or_else(|| ChainError::Checkpoint(format!("missing checkpoint field `{key}`")))
}

fn get_u64(obj: &Value, key: &str) -> Result<u64, ChainError> {
    field(obj, key)?
        .as_u64()
        .ok_or_else(|| ChainError::Checkpoint(format!("field `{key}` must be a u64")))
}

fn get_bool(obj: &Value, key: &str) -> Result<bool, ChainError> {
    field(obj, key)?
        .as_bool()
        .ok_or_else(|| ChainError::Checkpoint(format!("field `{key}` must be a bool")))
}

fn get_bits(obj: &Value, key: &str) -> Result<f64, ChainError> {
    get_u64(obj, key).map(f64::from_bits)
}

fn get_u64_array(obj: &Value, key: &str) -> Result<Vec<u64>, ChainError> {
    field(obj, key)?
        .as_array()
        .ok_or_else(|| ChainError::Checkpoint(format!("field `{key}` must be an array")))?
        .iter()
        .map(|v| {
            v.as_u64()
                .ok_or_else(|| ChainError::Checkpoint(format!("`{key}` entries must be u64")))
        })
        .collect()
}

fn get_bits_array(obj: &Value, key: &str) -> Result<Vec<f64>, ChainError> {
    Ok(get_u64_array(obj, key)?.into_iter().map(f64::from_bits).collect())
}

fn fixed<const N: usize>(v: Vec<f64>, what: &str) -> Result<[f64; N], ChainError> {
    v.try_into()
        .map_err(|_| ChainError::Checkpoint(format!("`{what}` must have {N} entries")))
}

fn fixed_u64<const N: usize>(v: Vec<u64>, what: &str) -> Result<[u64; N], ChainError> {
    v.try_into()
        .map_err(|_| ChainError::Checkpoint(format!("`{what}` must have {N} entries")))
}

fn parse_node(v: &Value) -> Result<CheckpointNode, ChainError> {
    let parent = match field(v, "parent")? {
        Value::Null => None,
        other => Some(other.as_u64().ok_or_else(|| {
            ChainError::Checkpoint("node parent must be null or u64".into())
        })? as usize),
    };
    let name = match field(v, "name")? {
        Value::Null => None,
        other => Some(
            other
                .as_str()
                .ok_or_else(|| ChainError::Checkpoint("node name must be null or string".into()))?
                .to_string(),
        ),
    };
    Ok(CheckpointNode {
        parent,
        children: get_u64_array(v, "children")?
            .into_iter()
            .map(|c| c as usize)
            .collect(),
        branch: get_bits(v, "branch")?,
        name,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_checkpoint() -> ChainCheckpoint {
        let tree = Tree::from_newick("((a:0.1,b:0.2):0.05,c:0.3,d:0.4);").unwrap();
        let (tree_nodes, tree_root) = ChainCheckpoint::snapshot_tree(&tree);
        ChainCheckpoint {
            format_version: CHECKPOINT_FORMAT_VERSION,
            seed: 42,
            generations: 1000,
            sample_every: 100,
            scale_every: 1,
            n_rates: 4,
            incremental: true,
            generation: 250,
            beta: 1.0,
            rng_state: [1, u64::MAX, 3, 0x0123_4567_89ab_cdef],
            cur_prior: -3.215,
            rates: [1.0, 2.0, 1.0, 1.0, 2.0, 1.0],
            freqs: [0.3, 0.2, 0.2, 0.3],
            shape: 0.5731,
            pinvar: 0.05,
            ln_likelihood: -1_234.567_890_123,
            tree_nodes,
            tree_root,
            accum: AccumSnapshot {
                proposed: [10, 20, 30, 40, 50, 60, 70],
                accepted: [1, 2, 3, 4, 5, 6, 7],
                n_evaluations: 251,
                plf_calls: 999,
                plf_time_nanos: 123_456_789,
            },
            samples: vec![Sample {
                generation: 100,
                ln_likelihood: -1250.25,
                tree_length: 1.05,
                shape: 0.5,
            }],
            trace: vec![TraceRecord {
                generation: 100,
                ln_likelihood: -1250.25,
                tree_length: 1.05,
                shape: 0.5,
                pinvar: 0.0,
                freqs: [0.25; 4],
                rates: [1.0; 6],
                newick: "((a:0.1,b:0.2):0.05,c:0.3,d:0.4);".into(),
            }],
        }
    }

    #[test]
    fn json_round_trip_is_exact() {
        let ckpt = toy_checkpoint();
        let text = ckpt.to_json();
        let back = ChainCheckpoint::from_json(&text).unwrap();
        assert_eq!(ckpt, back);
    }

    #[test]
    fn nonfinite_floats_survive_round_trip() {
        let mut ckpt = toy_checkpoint();
        ckpt.cur_prior = f64::NEG_INFINITY;
        ckpt.ln_likelihood = f64::from_bits(0x7ff8_dead_beef_0001); // NaN payload
        let back = ChainCheckpoint::from_json(&ckpt.to_json()).unwrap();
        assert_eq!(back.cur_prior, f64::NEG_INFINITY);
        assert_eq!(
            back.ln_likelihood.to_bits(),
            ckpt.ln_likelihood.to_bits(),
            "NaN payload must be preserved"
        );
    }

    #[test]
    fn tree_round_trip_preserves_node_ids() {
        let ckpt = toy_checkpoint();
        let tree = ckpt.restore_tree().unwrap();
        assert_eq!(tree.root().0, ckpt.tree_root);
        assert_eq!(tree.n_nodes(), ckpt.tree_nodes.len());
        let (nodes2, root2) = ChainCheckpoint::snapshot_tree(&tree);
        assert_eq!(nodes2, ckpt.tree_nodes);
        assert_eq!(root2, ckpt.tree_root);
    }

    #[test]
    fn fingerprint_mismatch_is_rejected() {
        let ckpt = toy_checkpoint();
        let mut opts = ChainOptions {
            generations: 1000,
            seed: 42,
            sample_every: 100,
            incremental: true,
            ..ChainOptions::default()
        };
        assert!(ckpt.check_compatible(&opts).is_ok());
        opts.seed = 43;
        let err = ckpt.check_compatible(&opts).unwrap_err();
        assert!(matches!(err, ChainError::Checkpoint(ref m) if m.contains("seed")));
    }

    #[test]
    fn version_mismatch_is_rejected() {
        let mut ckpt = toy_checkpoint();
        ckpt.format_version = 99;
        let opts = ChainOptions::default();
        assert!(matches!(
            ckpt.check_compatible(&opts),
            Err(ChainError::Checkpoint(_))
        ));
    }

    #[test]
    fn truncated_json_is_an_error() {
        let text = toy_checkpoint().to_json();
        let torn = &text[..text.len() / 2];
        assert!(ChainCheckpoint::from_json(torn).is_err());
    }

    #[test]
    fn missing_field_is_an_error() {
        let text = toy_checkpoint().to_json().replace("\"rng_state\"", "\"rng_st8\"");
        let err = ChainCheckpoint::from_json(&text).unwrap_err();
        assert!(matches!(err, ChainError::Checkpoint(ref m) if m.contains("rng_state")));
    }

    #[test]
    fn accum_snapshot_round_trips() {
        let snap = toy_checkpoint().accum;
        let accum = snap.to_accum();
        assert_eq!(AccumSnapshot::from_accum(&accum), snap);
        assert_eq!(accum.plf_time, Duration::from_nanos(123_456_789));
    }
}

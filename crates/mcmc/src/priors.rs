//! Prior densities — the MrBayes 3.1.2 defaults.
//!
//! Branch lengths: i.i.d. Exponential(10); base frequencies and
//! exchangeabilities: flat Dirichlet; Γ shape: Uniform(0, max).

use crate::state::ChainState;

/// Prior hyper-parameters.
#[derive(Debug, Clone)]
pub struct Priors {
    /// Rate of the exponential branch-length prior (MrBayes default 10).
    pub branch_rate: f64,
    /// Upper bound of the uniform prior on the Γ shape.
    pub shape_max: f64,
}

impl Default for Priors {
    fn default() -> Priors {
        Priors {
            branch_rate: 10.0,
            shape_max: 200.0,
        }
    }
}

impl Priors {
    /// Joint log prior density of a state. Flat Dirichlet terms are
    /// constants and therefore omitted (they cancel in MH ratios).
    pub fn ln_prior(&self, state: &ChainState) -> f64 {
        if !(state.shape > 0.0 && state.shape <= self.shape_max) {
            return f64::NEG_INFINITY;
        }
        if !(0.0..1.0).contains(&state.pinvar) {
            return f64::NEG_INFINITY;
        }
        let mut ln = -self.shape_max.ln();
        for id in state.tree.branches() {
            let b = state.tree.node(id).branch;
            if b < 0.0 {
                return f64::NEG_INFINITY;
            }
            ln += self.branch_rate.ln() - self.branch_rate * b;
        }
        ln
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use plf_phylo::model::GtrParams;
    use plf_phylo::tree::Tree;

    fn state(shape: f64) -> ChainState {
        let tree = Tree::from_newick("((a:0.1,b:0.2):0.05,c:0.3,d:0.4);").unwrap();
        ChainState::new(tree, GtrParams::jc69(), shape)
    }

    #[test]
    fn shorter_trees_are_more_probable() {
        let p = Priors::default();
        let s_short = state(1.0);
        let mut s_long = s_short.clone();
        for id in s_long.tree.branches() {
            s_long.tree.node_mut(id).branch *= 10.0;
        }
        assert!(p.ln_prior(&s_short) > p.ln_prior(&s_long));
    }

    #[test]
    fn out_of_range_shape_is_impossible() {
        let p = Priors::default();
        assert_eq!(p.ln_prior(&state(0.0)), f64::NEG_INFINITY);
        assert_eq!(p.ln_prior(&state(1e9)), f64::NEG_INFINITY);
        assert!(p.ln_prior(&state(0.5)).is_finite());
    }

    #[test]
    fn exponential_prior_value() {
        // 5 branches summing to 1.05 with rate 10:
        // ln = -ln(200) + 5 ln 10 - 10*1.05
        let p = Priors::default();
        let expect = -(200.0f64).ln() + 5.0 * 10.0f64.ln() - 10.0 * 1.05;
        assert!((p.ln_prior(&state(1.0)) - expect).abs() < 1e-10);
    }
}

//! Majority-rule consensus trees — how Bayesian phylogenetics actually
//! summarizes a posterior sample of topologies (MrBayes's `sumt`).
//!
//! Every sampled tree is decomposed into its non-trivial bipartitions
//! (splits of the taxon set induced by internal edges, orientation-
//! normalized for unrooted trees); splits occurring in more than half
//! the samples are mutually compatible and assemble into the consensus
//! topology, annotated with posterior support.

use plf_phylo::tree::Tree;
use std::collections::{BTreeSet, HashMap};

/// A bipartition as the set of taxon indices on one side, normalized to
/// exclude taxon 0 (the unrooted-tree orientation convention).
pub type Split = BTreeSet<usize>;

/// One consensus split with its posterior support.
#[derive(Debug, Clone, PartialEq)]
pub struct SupportedSplit {
    /// Taxon names on the minority side of the split.
    pub taxa: Vec<String>,
    /// Fraction of samples containing the split.
    pub support: f64,
}

/// A majority-rule consensus summary.
#[derive(Debug, Clone)]
pub struct Consensus {
    /// Canonical taxon ordering used for indices.
    pub taxa: Vec<String>,
    /// Majority splits with supports, largest support first.
    pub splits: Vec<SupportedSplit>,
    /// Newick rendering with support values as internal labels.
    pub newick: String,
}

/// Canonical (sorted) taxon list of a tree.
pub fn taxa_of(tree: &Tree) -> Vec<String> {
    let mut taxa: Vec<String> = tree
        .leaves()
        .iter()
        .map(|&l| tree.node(l).name.clone().expect("leaves are named"))
        .collect();
    taxa.sort();
    taxa
}

/// Non-trivial bipartitions of `tree` relative to `taxa` (which must be
/// the tree's sorted taxon list).
pub fn bipartitions(tree: &Tree, taxa: &[String]) -> Vec<Split> {
    let index: HashMap<&str, usize> = taxa.iter().enumerate().map(|(i, t)| (t.as_str(), i)).collect();
    // Leafsets bottom-up.
    let mut leafset: Vec<BTreeSet<usize>> = vec![BTreeSet::new(); tree.n_nodes()];
    for id in tree.postorder() {
        let node = tree.node(id);
        if node.is_leaf() {
            let name = node.name.as_deref().expect("leaf named");
            leafset[id.0].insert(index[name]);
        } else {
            let mut acc = BTreeSet::new();
            for &c in &node.children {
                acc.extend(leafset[c.0].iter().copied());
            }
            leafset[id.0] = acc;
        }
    }
    let n = taxa.len();
    let mut out = Vec::new();
    for id in tree.node_ids() {
        let node = tree.node(id);
        if node.is_leaf() || node.parent.is_none() {
            continue; // trivial splits and the root
        }
        let mut side = leafset[id.0].clone();
        // Orientation: the side not containing taxon 0.
        if side.contains(&0) {
            side = (0..n).filter(|i| !side.contains(i)).collect();
        }
        // Non-trivial: at least 2 taxa on each side.
        if side.len() >= 2 && side.len() <= n - 2 {
            out.push(side);
        }
    }
    out.sort();
    out.dedup();
    out
}

/// Build the majority-rule consensus of `trees` (all over the same
/// taxon set). `threshold` is the inclusion fraction — 0.5 for the
/// classic majority rule (values below 0.5 can produce incompatible
/// splits and are rejected).
///
/// ```
/// use plf_phylo::tree::Tree;
/// use plf_mcmc::consensus::majority_consensus;
/// let trees: Vec<Tree> = (0..3)
///     .map(|_| Tree::from_newick("((a:1,b:1):1,c:1,d:1);").unwrap())
///     .collect();
/// let c = majority_consensus(&trees, 0.5);
/// assert_eq!(c.splits.len(), 1);
/// assert_eq!(c.splits[0].support, 1.0);
/// ```
pub fn majority_consensus(trees: &[Tree], threshold: f64) -> Consensus {
    assert!(!trees.is_empty(), "need at least one tree");
    assert!((0.5..=1.0).contains(&threshold), "threshold must be in [0.5, 1]");
    let taxa = taxa_of(&trees[0]);
    for t in trees {
        assert_eq!(taxa_of(t), taxa, "trees over different taxon sets");
    }
    let mut counts: HashMap<Split, usize> = HashMap::new();
    for t in trees {
        for split in bipartitions(t, &taxa) {
            *counts.entry(split).or_insert(0) += 1;
        }
    }
    let n_trees = trees.len() as f64;
    let mut kept: Vec<(Split, f64)> = counts
        .into_iter()
        .map(|(s, c)| (s, c as f64 / n_trees))
        .filter(|(_, support)| *support > threshold)
        .collect();
    // Smaller clusters first so nesting builds bottom-up.
    kept.sort_by(|a, b| a.0.len().cmp(&b.0.len()).then_with(|| a.0.cmp(&b.0)));

    // Forest assembly: each cluster groups the current roots it covers.
    #[derive(Debug)]
    struct Cluster {
        leaves: BTreeSet<usize>,
        label: String,
    }
    let mut forest: Vec<Cluster> = (0..taxa.len())
        .map(|i| Cluster {
            leaves: BTreeSet::from([i]),
            label: taxa[i].clone(),
        })
        .collect();
    for (split, support) in &kept {
        let (inside, outside): (Vec<Cluster>, Vec<Cluster>) = forest
            .drain(..)
            .partition(|c| c.leaves.is_subset(split));
        // Compatibility of majority splits guarantees exact coverage.
        let covered: BTreeSet<usize> = inside.iter().flat_map(|c| c.leaves.iter().copied()).collect();
        debug_assert_eq!(&covered, split, "incompatible split survived the majority rule");
        let label = format!(
            "({}){:.2}",
            inside.iter().map(|c| c.label.as_str()).collect::<Vec<_>>().join(","),
            support
        );
        forest = outside;
        forest.push(Cluster {
            leaves: covered,
            label,
        });
    }
    forest.sort_by(|a, b| a.leaves.cmp(&b.leaves));
    let newick = format!(
        "({});",
        forest.iter().map(|c| c.label.as_str()).collect::<Vec<_>>().join(",")
    );

    let mut splits: Vec<SupportedSplit> = kept
        .into_iter()
        .map(|(s, support)| SupportedSplit {
            taxa: s.iter().map(|&i| taxa[i].clone()).collect(),
            support,
        })
        .collect();
    splits.sort_by(|a, b| b.support.partial_cmp(&a.support).unwrap().then_with(|| a.taxa.cmp(&b.taxa)));
    Consensus { taxa, splits, newick }
}

/// Convenience: consensus from sampled newick strings (e.g. a `.t`
/// trace).
pub fn consensus_from_newicks(newicks: &[String], threshold: f64) -> Result<Consensus, plf_phylo::tree::TreeError> {
    let trees: Result<Vec<Tree>, _> = newicks.iter().map(|s| Tree::from_newick(s)).collect();
    Ok(majority_consensus(&trees?, threshold))
}

/// Robinson–Foulds distance between two trees over the same taxa: the
/// number of bipartitions present in exactly one of them.
pub fn robinson_foulds(a: &Tree, b: &Tree) -> usize {
    let taxa = taxa_of(a);
    assert_eq!(taxa, taxa_of(b), "trees over different taxon sets");
    let sa: BTreeSet<Split> = bipartitions(a, &taxa).into_iter().collect();
    let sb: BTreeSet<Split> = bipartitions(b, &taxa).into_iter().collect();
    sa.symmetric_difference(&sb).count()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(newick: &str) -> Tree {
        Tree::from_newick(newick).unwrap()
    }

    #[test]
    fn bipartitions_of_quartet() {
        let tree = t("((a:1,b:1):1,c:1,d:1);");
        let taxa = taxa_of(&tree);
        let splits = bipartitions(&tree, &taxa);
        // One non-trivial split: {a,b} | {c,d} → normalized side {c,d}?
        // taxa sorted = [a,b,c,d]; side {a,b} contains taxon 0 → flip.
        assert_eq!(splits.len(), 1);
        assert_eq!(splits[0], BTreeSet::from([2usize, 3]));
    }

    #[test]
    fn identical_trees_full_support() {
        let trees: Vec<Tree> = (0..10)
            .map(|_| t("(((a:1,b:1):1,(c:1,d:1):1):1,e:1,f:1);"))
            .collect();
        let c = majority_consensus(&trees, 0.5);
        assert_eq!(c.splits.len(), 3);
        assert!(c.splits.iter().all(|s| (s.support - 1.0).abs() < 1e-12));
        // The consensus topology matches the input topology.
        let rebuilt = Tree::from_newick(&c.newick.replace("1.00", "")).unwrap();
        assert_eq!(robinson_foulds(&rebuilt, &trees[0]), 0);
    }

    #[test]
    fn conflicting_trees_collapse_to_star() {
        // Three quartet resolutions, each once: no split reaches majority.
        let trees = vec![
            t("((a:1,b:1):1,c:1,d:1);"),
            t("((a:1,c:1):1,b:1,d:1);"),
            t("((a:1,d:1):1,b:1,c:1);"),
        ];
        let c = majority_consensus(&trees, 0.5);
        assert!(c.splits.is_empty());
        assert_eq!(c.newick, "(a,b,c,d);");
    }

    #[test]
    fn majority_wins() {
        let trees = vec![
            t("((a:1,b:1):1,c:1,d:1);"),
            t("((a:1,b:1):1,c:1,d:1);"),
            t("((a:1,c:1):1,b:1,d:1);"),
        ];
        let c = majority_consensus(&trees, 0.5);
        assert_eq!(c.splits.len(), 1);
        assert!((c.splits[0].support - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(c.splits[0].taxa, vec!["c".to_string(), "d".to_string()]);
        assert!(c.newick.contains("(c,d)0.67"));
    }

    #[test]
    fn rf_distance() {
        let a = t("(((a:1,b:1):1,(c:1,d:1):1):1,e:1,f:1);");
        let b = t("(((a:1,c:1):1,(b:1,d:1):1):1,e:1,f:1);");
        assert_eq!(robinson_foulds(&a, &a), 0);
        let d = robinson_foulds(&a, &b);
        assert!(d > 0 && d.is_multiple_of(2), "RF {d}");
    }

    #[test]
    fn consensus_from_newick_strings() {
        let newicks = vec![
            "((a:1,b:1):1,c:1,d:1);".to_string(),
            "((a:1,b:1):1,c:1,d:1);".to_string(),
        ];
        let c = consensus_from_newicks(&newicks, 0.5).unwrap();
        assert_eq!(c.splits.len(), 1);
        assert!(consensus_from_newicks(&["(bad".to_string()], 0.5).is_err());
    }

    #[test]
    #[should_panic(expected = "threshold")]
    fn sub_majority_threshold_rejected() {
        majority_consensus(&[t("((a:1,b:1):1,c:1,d:1);")], 0.3);
    }
}

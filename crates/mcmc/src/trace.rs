//! MrBayes-style output files.
//!
//! MrBayes writes a `.p` file (tab-separated parameter trace) and a
//! `.t` file (NEXUS trees block with one sampled tree per row). These
//! renderers produce the same artifacts from a chain's trace, so
//! downstream summarization tooling (Tracer-style burn-in plots,
//! consensus-tree builders) has something real to chew on.

use serde::Serialize;

/// One sampled generation with full parameter state.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct TraceRecord {
    /// Generation index.
    pub generation: usize,
    /// Log-likelihood.
    pub ln_likelihood: f64,
    /// Total tree length.
    pub tree_length: f64,
    /// Γ shape α.
    pub shape: f64,
    /// Proportion of invariable sites.
    pub pinvar: f64,
    /// Base frequencies πA..πT.
    pub freqs: [f64; 4],
    /// GTR exchangeabilities AC..GT.
    pub rates: [f64; 6],
    /// Sampled topology + branch lengths.
    pub newick: String,
}

/// Render the `.p` parameter-trace file.
pub fn p_file(records: &[TraceRecord]) -> String {
    let mut out = String::from("[ID: plf-repro]\n");
    out.push_str(
        "Gen\tLnL\tTL\talpha\tpinvar\tpi(A)\tpi(C)\tpi(G)\tpi(T)\tr(A<->C)\tr(A<->G)\tr(A<->T)\tr(C<->G)\tr(C<->T)\tr(G<->T)\n",
    );
    for r in records {
        out.push_str(&format!(
            "{}\t{:.4}\t{:.4}\t{:.4}\t{:.4}\t{:.4}\t{:.4}\t{:.4}\t{:.4}\t{:.4}\t{:.4}\t{:.4}\t{:.4}\t{:.4}\t{:.4}\n",
            r.generation,
            r.ln_likelihood,
            r.tree_length,
            r.shape,
            r.pinvar,
            r.freqs[0],
            r.freqs[1],
            r.freqs[2],
            r.freqs[3],
            r.rates[0],
            r.rates[1],
            r.rates[2],
            r.rates[3],
            r.rates[4],
            r.rates[5],
        ));
    }
    out
}

/// Render the `.t` NEXUS trees file.
pub fn t_file(records: &[TraceRecord]) -> String {
    let mut out = String::from("#NEXUS\nbegin trees;\n");
    for r in records {
        out.push_str(&format!("  tree gen.{} = {}\n", r.generation, r.newick));
    }
    out.push_str("end;\n");
    out
}

/// Per-sample-interval chain throughput, recorded alongside the trace.
///
/// One record covers the generations between two consecutive sample
/// points and reports how much PLF work they cost — the per-generation
/// throughput numbers the paper's Tables 3–5 are built from.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct ThroughputRecord {
    /// Generation at the end of the interval.
    pub generation: usize,
    /// Generations covered by the interval.
    pub generations: usize,
    /// Full likelihood evaluations in the interval.
    pub evaluations: u64,
    /// Kernel calls issued in the interval.
    pub plf_calls: u64,
    /// Seconds spent inside PLF kernels in the interval.
    pub plf_seconds: f64,
    /// Wall-clock seconds of the interval.
    pub wall_seconds: f64,
}

impl ThroughputRecord {
    /// Likelihood evaluations per wall-clock second (0 for an empty
    /// interval).
    pub fn evaluations_per_second(&self) -> f64 {
        if self.wall_seconds > 0.0 {
            self.evaluations as f64 / self.wall_seconds
        } else {
            0.0
        }
    }

    /// Fraction of the interval's wall time inside PLF kernels — the
    /// paper's "PLF share" (Fig. 12), clamped to [0, 1].
    pub fn plf_fraction(&self) -> f64 {
        if self.wall_seconds > 0.0 {
            (self.plf_seconds / self.wall_seconds).clamp(0.0, 1.0)
        } else {
            0.0
        }
    }
}

/// Simple posterior summaries over a trace (after burn-in).
#[derive(Debug, Clone, Copy, Serialize)]
pub struct TraceSummary {
    /// Samples summarized.
    pub n: usize,
    /// Mean log-likelihood.
    pub mean_ln_likelihood: f64,
    /// Mean tree length.
    pub mean_tree_length: f64,
    /// Mean Γ shape.
    pub mean_shape: f64,
    /// Mean pinvar.
    pub mean_pinvar: f64,
}

/// Summarize a trace, discarding the first `burn_in_fraction` of samples.
pub fn summarize(records: &[TraceRecord], burn_in_fraction: f64) -> Option<TraceSummary> {
    assert!((0.0..1.0).contains(&burn_in_fraction));
    let skip = (records.len() as f64 * burn_in_fraction) as usize;
    let kept = &records[skip.min(records.len())..];
    if kept.is_empty() {
        return None;
    }
    let n = kept.len() as f64;
    Some(TraceSummary {
        n: kept.len(),
        mean_ln_likelihood: kept.iter().map(|r| r.ln_likelihood).sum::<f64>() / n,
        mean_tree_length: kept.iter().map(|r| r.tree_length).sum::<f64>() / n,
        mean_shape: kept.iter().map(|r| r.shape).sum::<f64>() / n,
        mean_pinvar: kept.iter().map(|r| r.pinvar).sum::<f64>() / n,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(gen: usize, lnl: f64) -> TraceRecord {
        TraceRecord {
            generation: gen,
            ln_likelihood: lnl,
            tree_length: 1.0,
            shape: 0.5,
            pinvar: 0.1,
            freqs: [0.25; 4],
            rates: [1.0; 6],
            newick: "(a:0.1,b:0.1,c:0.1);".into(),
        }
    }

    #[test]
    fn p_file_has_header_and_rows() {
        let p = p_file(&[record(0, -10.0), record(100, -9.0)]);
        let lines: Vec<&str> = p.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[1].starts_with("Gen\tLnL"));
        assert!(lines[2].starts_with("0\t-10.0000"));
        assert_eq!(lines[1].split('\t').count(), 15);
        assert_eq!(lines[2].split('\t').count(), 15);
    }

    #[test]
    fn t_file_is_nexus() {
        let t = t_file(&[record(0, -10.0)]);
        assert!(t.starts_with("#NEXUS"));
        assert!(t.contains("tree gen.0 = (a:0.1,b:0.1,c:0.1);"));
        assert!(t.trim_end().ends_with("end;"));
    }

    #[test]
    fn summary_burn_in() {
        let recs: Vec<TraceRecord> = (0..10).map(|i| record(i, -((10 - i) as f64))).collect();
        let s = summarize(&recs, 0.5).unwrap();
        assert_eq!(s.n, 5);
        // Last five lnLs: -5..-1, mean -3.
        assert!((s.mean_ln_likelihood + 3.0).abs() < 1e-12);
        assert!(summarize(&[], 0.0).is_none());
    }
}

//! Metropolis–Hastings proposal moves.
//!
//! The move set mirrors the MrBayes defaults relevant to a GTR+Γ DNA
//! analysis: branch-length multipliers, NNI topology changes, Dirichlet
//! moves on base frequencies and exchangeabilities, and a multiplier on
//! the Γ shape.

use crate::rng::{dirichlet, ln_dirichlet_pdf};
use crate::state::ChainState;
use plf_phylo::tree::NodeId;
use rand::Rng;

/// What a move invalidated — drives MrBayes-style partial PLF updates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Dirty {
    /// Only the CLVs above these nodes are stale.
    Nodes(Vec<NodeId>),
    /// The substitution model changed: every CLV is stale.
    Model,
}

/// Result of applying a proposal.
#[derive(Debug, Clone, PartialEq)]
pub struct ProposalOutcome {
    /// `ln` of the Hastings ratio.
    pub ln_hastings: f64,
    /// Invalidation scope.
    pub dirty: Dirty,
}

/// The available move types.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ProposalKind {
    /// Multiply one random branch length by `exp(λ(u−½))`.
    BranchMultiplier,
    /// Nearest-neighbour interchange across a random internal edge.
    Nni,
    /// Dirichlet-centred move on the base frequencies.
    FreqDirichlet,
    /// Dirichlet-centred move on the exchangeability rates.
    RateDirichlet,
    /// Multiplier move on the Γ shape α.
    ShapeMultiplier,
    /// Sliding-window move on the proportion of invariable sites.
    PinvarSlide,
    /// Subtree prune-and-regraft across the whole tree (MrBayes eSPR).
    Spr,
}

/// All proposal kinds, for iteration and stats tables.
pub const ALL_PROPOSALS: [ProposalKind; 7] = [
    ProposalKind::BranchMultiplier,
    ProposalKind::Nni,
    ProposalKind::Spr,
    ProposalKind::FreqDirichlet,
    ProposalKind::RateDirichlet,
    ProposalKind::ShapeMultiplier,
    ProposalKind::PinvarSlide,
];

impl ProposalKind {
    /// Short name for reports.
    pub fn name(self) -> &'static str {
        match self {
            ProposalKind::BranchMultiplier => "branch-mult",
            ProposalKind::Nni => "nni",
            ProposalKind::FreqDirichlet => "freq-dirichlet",
            ProposalKind::RateDirichlet => "rate-dirichlet",
            ProposalKind::ShapeMultiplier => "shape-mult",
            ProposalKind::PinvarSlide => "pinvar-slide",
            ProposalKind::Spr => "spr",
        }
    }

    /// Does this move change the substitution model (requiring new
    /// transition matrices *and* a new eigensystem)?
    pub fn changes_model(self) -> bool {
        matches!(
            self,
            ProposalKind::FreqDirichlet
                | ProposalKind::RateDirichlet
                | ProposalKind::ShapeMultiplier
                | ProposalKind::PinvarSlide
        )
    }
}

/// Tuning constants (MrBayes-like defaults).
#[derive(Debug, Clone)]
pub struct Tuning {
    /// λ of the branch multiplier.
    pub branch_lambda: f64,
    /// λ of the shape multiplier.
    pub shape_lambda: f64,
    /// Dirichlet concentration for frequency moves.
    pub freq_concentration: f64,
    /// Dirichlet concentration for exchangeability moves.
    pub rate_concentration: f64,
    /// Window half-width of the pinvar slide.
    pub pinvar_window: f64,
}

impl Default for Tuning {
    fn default() -> Tuning {
        Tuning {
            branch_lambda: 2.0 * (1.6f64).ln(),
            shape_lambda: 2.0 * (1.5f64).ln(),
            freq_concentration: 300.0,
            rate_concentration: 150.0,
            pinvar_window: 0.1,
        }
    }
}

/// Apply `kind` to `state` in place, returning the Hastings ratio and
/// the invalidation scope, or `None` when the move is not applicable
/// (e.g. NNI on a tree without internal edges) — the chain counts that
/// as an auto-reject.
pub fn propose<R: Rng>(
    kind: ProposalKind,
    state: &mut ChainState,
    tuning: &Tuning,
    rng: &mut R,
) -> Option<ProposalOutcome> {
    let (ln_hastings, dirty) = propose_inner(kind, state, tuning, rng)?;
    Some(ProposalOutcome { ln_hastings, dirty })
}

fn propose_inner<R: Rng>(
    kind: ProposalKind,
    state: &mut ChainState,
    tuning: &Tuning,
    rng: &mut R,
) -> Option<(f64, Dirty)> {
    match kind {
        ProposalKind::BranchMultiplier => {
            let branches = state.tree.branches();
            let id = branches[rng.gen_range(0..branches.len())];
            let factor = (tuning.branch_lambda * (rng.gen_range(0.0..1.0) - 0.5)).exp();
            let node = state.tree.node_mut(id);
            node.branch = (node.branch * factor).clamp(1e-9, 1e3);
            Some((factor.ln(), Dirty::Nodes(vec![id])))
        }
        ProposalKind::Nni => {
            let edges = state.tree.internal_edges();
            if edges.is_empty() {
                return None;
            }
            let (p, c) = edges[rng.gen_range(0..edges.len())];
            let parent_options = state.tree.node(p).children.len() - 1;
            let i = rng.gen_range(0..parent_options);
            let j = rng.gen_range(0..2);
            state
                .tree
                .nni(p, c, i, j)
                .expect("edge came from internal_edges");
            // The reverse move picks the same edge and indices: symmetric.
            Some((0.0, Dirty::Nodes(vec![p, c])))
        }
        ProposalKind::FreqDirichlet => {
            let old = state.params.freqs;
            let c = tuning.freq_concentration;
            let alphas: [f64; 4] = std::array::from_fn(|i| c * old[i] + 1e-3);
            let new = dirichlet(&alphas, rng);
            if new.iter().any(|&x| x < 1e-6) {
                return None;
            }
            let rev_alphas: [f64; 4] = std::array::from_fn(|i| c * new[i] + 1e-3);
            let ln_h = ln_dirichlet_pdf(&rev_alphas, &old) - ln_dirichlet_pdf(&alphas, &new);
            state.params.freqs = new;
            Some((ln_h, Dirty::Model))
        }
        ProposalKind::RateDirichlet => {
            // Work on the rate simplex (rates are scale-free because Q is
            // renormalized).
            let sum: f64 = state.params.rates.iter().sum();
            let old: [f64; 6] = std::array::from_fn(|i| state.params.rates[i] / sum);
            let c = tuning.rate_concentration;
            let alphas: [f64; 6] = std::array::from_fn(|i| c * old[i] + 1e-3);
            let new = dirichlet(&alphas, rng);
            if new.iter().any(|&x| x < 1e-7) {
                return None;
            }
            let rev_alphas: [f64; 6] = std::array::from_fn(|i| c * new[i] + 1e-3);
            let ln_h = ln_dirichlet_pdf(&rev_alphas, &old) - ln_dirichlet_pdf(&alphas, &new);
            // Keep the customary GT≈1 scaling for readability.
            state.params.rates = std::array::from_fn(|i| new[i] / new[5]);
            Some((ln_h, Dirty::Model))
        }
        ProposalKind::ShapeMultiplier => {
            let factor = (tuning.shape_lambda * (rng.gen_range(0.0..1.0) - 0.5)).exp();
            state.shape = (state.shape * factor).clamp(1e-3, 1e3);
            Some((factor.ln(), Dirty::Model))
        }
        ProposalKind::Spr => {
            let candidates = state.tree.spr_prune_candidates();
            if candidates.is_empty() {
                return None;
            }
            let x = candidates[rng.gen_range(0..candidates.len())];
            let targets = state.tree.spr_targets(x);
            if targets.is_empty() {
                return None;
            }
            let target = targets[rng.gen_range(0..targets.len())];
            let split: f64 = rng.gen_range(0.02..0.98);
            let info = state
                .tree
                .spr(x, target, split)
                .expect("candidate/target pair is legal");
            // Candidate-set sizes are SPR-invariant, and the split
            // fraction is uniform, so the MH correction reduces to the
            // branch-measure Jacobians of the merge and split:
            // ln H = ln b_target − ln b_merged.
            let ln_h = info.target_branch.max(1e-300).ln() - info.merged_branch.max(1e-300).ln();
            Some((
                ln_h,
                Dirty::Nodes(vec![info.old_location, info.new_internal]),
            ))
        }
        ProposalKind::PinvarSlide => {
            // Uniform window with reflection at 0 and PINVAR_MAX keeps
            // the move symmetric (Hastings ratio 1).
            let w = tuning.pinvar_window;
            let mut p = state.pinvar + rng.gen_range(-w..w);
            if p < 0.0 {
                p = -p;
            }
            if p > PINVAR_MAX {
                p = 2.0 * PINVAR_MAX - p;
            }
            state.pinvar = p.clamp(0.0, PINVAR_MAX);
            Some((0.0, Dirty::Model))
        }
    }
}

/// Upper bound of the invariable-sites proportion explored by the chain.
pub const PINVAR_MAX: f64 = 0.85;

#[cfg(test)]
mod tests {
    use super::*;
    use plf_phylo::model::GtrParams;
    use plf_phylo::tree::Tree;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn state() -> ChainState {
        let tree =
            Tree::from_newick("(((a:0.1,b:0.1):0.1,(c:0.1,d:0.1):0.1):0.1,(e:0.1,f:0.1):0.1,g:0.2);")
                .unwrap();
        ChainState::new(tree, GtrParams::jc69(), 0.5)
    }

    #[test]
    fn branch_multiplier_changes_one_branch() {
        let mut rng = StdRng::seed_from_u64(1);
        let s0 = state();
        let mut s = s0.clone();
        let out = propose(ProposalKind::BranchMultiplier, &mut s, &Tuning::default(), &mut rng)
            .unwrap();
        let changed: Vec<_> = s0
            .tree
            .branches()
            .into_iter()
            .filter(|&id| (s.tree.node(id).branch - s0.tree.node(id).branch).abs() > 1e-15)
            .collect();
        assert_eq!(changed.len(), 1);
        let id = changed[0];
        let ratio = s.tree.node(id).branch / s0.tree.node(id).branch;
        assert!((out.ln_hastings - ratio.ln()).abs() < 1e-12);
        assert_eq!(out.dirty, Dirty::Nodes(vec![id]));
    }

    #[test]
    fn nni_keeps_tree_valid_and_changes_topology() {
        let mut rng = StdRng::seed_from_u64(2);
        let s0 = state();
        let mut changed = 0;
        for _ in 0..20 {
            let mut s = s0.clone();
            let out = propose(ProposalKind::Nni, &mut s, &Tuning::default(), &mut rng).unwrap();
            assert_eq!(out.ln_hastings, 0.0);
            assert!(matches!(out.dirty, Dirty::Nodes(ref v) if v.len() == 2));
            assert!(s.tree.validate().is_ok());
            assert_eq!(s.tree.n_leaves(), s0.tree.n_leaves());
            if s.tree.topology_signature() != s0.tree.topology_signature() {
                changed += 1;
            }
        }
        assert!(changed > 0, "NNI never changed the topology in 20 draws");
    }

    #[test]
    fn freq_move_stays_on_simplex() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut s = state();
        for _ in 0..50 {
            if propose(ProposalKind::FreqDirichlet, &mut s, &Tuning::default(), &mut rng).is_some()
            {
                let sum: f64 = s.params.freqs.iter().sum();
                assert!((sum - 1.0).abs() < 1e-9);
                assert!(s.params.validate().is_ok());
            }
        }
    }

    #[test]
    fn rate_move_keeps_rates_positive() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut s = state();
        for _ in 0..50 {
            if propose(ProposalKind::RateDirichlet, &mut s, &Tuning::default(), &mut rng).is_some()
            {
                assert!(s.params.rates.iter().all(|&r| r > 0.0));
                assert!((s.params.rates[5] - 1.0).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn shape_multiplier_hastings() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut s = state();
        let before = s.shape;
        let out =
            propose(ProposalKind::ShapeMultiplier, &mut s, &Tuning::default(), &mut rng).unwrap();
        assert!((out.ln_hastings - (s.shape / before).ln()).abs() < 1e-12);
        assert_eq!(out.dirty, Dirty::Model);
    }

    #[test]
    fn model_change_classification() {
        assert!(!ProposalKind::BranchMultiplier.changes_model());
        assert!(!ProposalKind::Nni.changes_model());
        assert!(ProposalKind::FreqDirichlet.changes_model());
        assert!(ProposalKind::RateDirichlet.changes_model());
        assert!(ProposalKind::ShapeMultiplier.changes_model());
        assert!(ProposalKind::PinvarSlide.changes_model());
    }

    #[test]
    fn spr_preserves_validity_and_has_branch_hastings() {
        let mut rng = StdRng::seed_from_u64(9);
        let s0 = state();
        let mut changed = 0;
        for _ in 0..40 {
            let mut s = s0.clone();
            let out = propose(ProposalKind::Spr, &mut s, &Tuning::default(), &mut rng).unwrap();
            assert!(s.tree.validate().is_ok());
            assert_eq!(s.tree.n_leaves(), s0.tree.n_leaves());
            assert!(out.ln_hastings.is_finite());
            assert!(matches!(out.dirty, Dirty::Nodes(ref v) if v.len() == 2));
            if s.tree.topology_signature() != s0.tree.topology_signature() {
                changed += 1;
            }
        }
        assert!(changed > 5, "SPR rarely changed topology: {changed}/40");
    }

    #[test]
    fn pinvar_slide_stays_in_bounds_and_symmetric() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut s = state();
        for _ in 0..300 {
            let out =
                propose(ProposalKind::PinvarSlide, &mut s, &Tuning::default(), &mut rng).unwrap();
            assert_eq!(out.ln_hastings, 0.0);
            assert_eq!(out.dirty, Dirty::Model);
            assert!((0.0..=PINVAR_MAX).contains(&s.pinvar), "pinvar {}", s.pinvar);
        }
        // The reflecting walk must actually move.
        assert!(s.pinvar > 0.0);
    }
}

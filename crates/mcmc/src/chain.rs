//! The Metropolis–Hastings chain — the "rest of the application" that
//! surrounds the PLF.
//!
//! The paper's Figure 12 splits MrBayes runtime into the PLF (the
//! parallel section) and the *Remaining* serial part: proposal
//! generation, tree bookkeeping, prior evaluation, RNG draws,
//! accept/reject logic. This chain reproduces that structure and
//! instruments both phases, so the experiment harness can measure the
//! serial fraction directly. MrBayes is run "with fixed random number
//! seeds and a fixed number of generations" (§4) — so are we.
//!
//! Two evaluation strategies are available:
//!
//! * **full** (default): every proposal re-evaluates the whole tree —
//!   the configuration whose workload the paper's scalability figures
//!   sweep;
//! * **incremental** (`ChainOptions::incremental`): MrBayes's
//!   production "touched" mechanism — only the CLVs invalidated by the
//!   move are recomputed, with double-buffered flip/undo (see
//!   [`plf_phylo::incremental`]).

use crate::checkpoint::{AccumSnapshot, ChainCheckpoint, CHECKPOINT_FORMAT_VERSION};
use crate::priors::Priors;
use crate::trace::{ThroughputRecord, TraceRecord};
use crate::proposals::{propose, Dirty, ProposalKind, Tuning, ALL_PROPOSALS};
use crate::state::ChainState;
use plf_phylo::alignment::PatternAlignment;
use plf_phylo::incremental::IncrementalLikelihood;
use plf_phylo::kernels::plan::PlfPlan;
use plf_phylo::kernels::PlfBackend;
use plf_phylo::likelihood::{LikelihoodError, TreeLikelihood};
use plf_phylo::model::{GtrParams, SiteModel};
use plf_phylo::tree::Tree;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::{Duration, Instant};

/// Errors surfaced by chain execution and checkpoint/restore.
#[derive(Debug, Clone, PartialEq)]
pub enum ChainError {
    /// The PLF evaluation failed (backend fault, corrupted output, …).
    Likelihood(LikelihoodError),
    /// Checkpoint data is malformed, torn, or inconsistent with the
    /// chain options it is being restored into.
    Checkpoint(String),
    /// A worker thread running a chain panicked (MC³ parallel blocks).
    Panic(String),
}

impl std::fmt::Display for ChainError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ChainError::Likelihood(e) => write!(f, "likelihood evaluation failed: {e}"),
            ChainError::Checkpoint(m) => write!(f, "checkpoint error: {m}"),
            ChainError::Panic(m) => write!(f, "chain worker panicked: {m}"),
        }
    }
}

impl std::error::Error for ChainError {}

impl From<LikelihoodError> for ChainError {
    fn from(e: LikelihoodError) -> ChainError {
        ChainError::Likelihood(e)
    }
}

/// Chain configuration.
#[derive(Debug, Clone)]
pub struct ChainOptions {
    /// Number of MCMC generations (one proposal each).
    pub generations: usize,
    /// RNG seed (fixed seeds per the paper's methodology).
    pub seed: u64,
    /// Record a sample every this many generations (0 = never).
    pub sample_every: usize,
    /// CondLikeScaler period passed to the likelihood workspace.
    pub scale_every: usize,
    /// Proposal tuning constants.
    pub tuning: Tuning,
    /// Relative weights of the seven proposal kinds, in
    /// [`ALL_PROPOSALS`] order.
    pub proposal_weights: [f64; 7],
    /// Number of discrete Γ categories (the paper uses 4).
    pub n_rates: usize,
    /// Use MrBayes-style incremental (partial) PLF updates with flip
    /// buffers instead of full re-evaluation per proposal.
    pub incremental: bool,
    /// Starting proportion of invariable sites (`+I`). The pinvar-slide
    /// proposal explores it; give it weight 0 to pin it.
    pub initial_pinvar: f64,
    /// Record full parameter+tree trace records at each sample point
    /// (rendered into MrBayes-style `.p`/`.t` files via [`crate::trace`]).
    pub record_trace: bool,
}

impl Default for ChainOptions {
    fn default() -> ChainOptions {
        ChainOptions {
            generations: 1_000,
            seed: 42,
            sample_every: 100,
            scale_every: 1,
            tuning: Tuning::default(),
            proposal_weights: [0.30, 0.20, 0.13, 0.12, 0.12, 0.08, 0.05],
            n_rates: 4,
            incremental: false,
            initial_pinvar: 0.0,
            record_trace: false,
        }
    }
}

/// One recorded posterior sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Sample {
    /// Generation index.
    pub generation: usize,
    /// Log-likelihood at that generation.
    pub ln_likelihood: f64,
    /// Sum of branch lengths.
    pub tree_length: f64,
    /// Γ shape α.
    pub shape: f64,
}

/// Per-proposal acceptance bookkeeping.
#[derive(Debug, Clone, Copy, Default)]
pub struct ProposalStats {
    /// Times this kind was drawn.
    pub proposed: u64,
    /// Times the move was accepted.
    pub accepted: u64,
}

impl ProposalStats {
    /// Fraction accepted (0 when never proposed).
    pub fn acceptance_rate(&self) -> f64 {
        if self.proposed == 0 {
            0.0
        } else {
            self.accepted as f64 / self.proposed as f64
        }
    }
}

/// Everything measured during a run.
#[derive(Debug, Clone)]
pub struct ChainStats {
    /// Posterior samples (empty if sampling disabled).
    pub samples: Vec<Sample>,
    /// Acceptance stats per proposal kind, in [`ALL_PROPOSALS`] order.
    pub proposals: [(ProposalKind, ProposalStats); 7],
    /// Number of tree-likelihood evaluations (full or partial).
    pub n_evaluations: u64,
    /// Total kernel invocations ("calls to the parallel section").
    pub plf_calls: u64,
    /// Wall time inside the PLF (likelihood evaluations).
    pub plf_time: Duration,
    /// Wall time of the whole run.
    pub total_time: Duration,
    /// Log-likelihood of the final state.
    pub final_ln_likelihood: f64,
    /// Full trace records (empty unless `ChainOptions::record_trace`).
    pub trace: Vec<TraceRecord>,
    /// Per-sample-interval throughput (empty when sampling is disabled;
    /// not part of checkpoints — wall-clock data is not reproducible).
    pub throughput: Vec<ThroughputRecord>,
}

impl ChainStats {
    /// Wall time outside the PLF — the paper's "Remaining".
    pub fn remaining_time(&self) -> Duration {
        self.total_time.saturating_sub(self.plf_time)
    }

    /// PLF share of total runtime (the paper reports 85–95% for the
    /// baseline).
    pub fn plf_fraction(&self) -> f64 {
        if self.total_time.is_zero() {
            0.0
        } else {
            self.plf_time.as_secs_f64() / self.total_time.as_secs_f64()
        }
    }
}

enum Evaluator {
    Simple(TreeLikelihood),
    Incremental(IncrementalLikelihood),
}

/// Accumulators of a (possibly stepwise) run.
#[derive(Debug, Clone)]
pub struct RunAccum {
    /// Per-proposal acceptance bookkeeping.
    pub proposals: [(ProposalKind, ProposalStats); 7],
    /// Likelihood evaluations performed.
    pub n_evaluations: u64,
    /// Kernel invocations.
    pub plf_calls: u64,
    /// Wall time inside the PLF.
    pub plf_time: Duration,
}

impl Default for RunAccum {
    fn default() -> RunAccum {
        RunAccum {
            proposals: std::array::from_fn(|i| (ALL_PROPOSALS[i], ProposalStats::default())),
            n_evaluations: 0,
            plf_calls: 0,
            plf_time: Duration::ZERO,
        }
    }
}

/// A runnable Metropolis–Hastings chain over one data set.
///
/// Chains execute either wholesale ([`Chain::run`]) or stepwise
/// ([`Chain::initialize`] + [`Chain::step`]) — the latter is what the
/// MC³ driver uses, interleaving steps with state swaps. A chain may be
/// *heated* ([`Chain::set_temperature`]): acceptance uses
/// `(posterior ratio)^β`, flattening the landscape so hot chains cross
/// valleys the cold chain cannot.
pub struct Chain {
    state: ChainState,
    evaluator: Evaluator,
    model: SiteModel,
    priors: Priors,
    options: ChainOptions,
    rng: StdRng,
    cur_prior: f64,
    beta: f64,
    initialized: bool,
    accum: RunAccum,
    /// Generations executed so far (survives checkpoint/restore).
    generation: usize,
    /// Samples recorded so far (survives checkpoint/restore).
    samples: Vec<Sample>,
    /// Trace records recorded so far (survives checkpoint/restore).
    trace: Vec<TraceRecord>,
    /// Per-sample-interval throughput records. Deliberately *not*
    /// checkpointed: wall-clock timings cannot be restored bit-exactly,
    /// and the checkpoint format stays unchanged.
    throughput: Vec<ThroughputRecord>,
    /// Where the current throughput interval started.
    mark: Option<ThroughputMark>,
}

/// Snapshot of the run accumulators at the start of an interval.
struct ThroughputMark {
    at: Instant,
    generation: usize,
    n_evaluations: u64,
    plf_calls: u64,
    plf_time: Duration,
}

impl Chain {
    /// Construct a chain starting from `tree` with the given model
    /// parameters.
    pub fn new(
        tree: Tree,
        data: &PatternAlignment,
        params: GtrParams,
        shape: f64,
        priors: Priors,
        options: ChainOptions,
    ) -> Result<Chain, LikelihoodError> {
        let model = SiteModel::new(params.clone(), shape, options.n_rates)
            .and_then(|m| m.with_pinvar(options.initial_pinvar))
            .map_err(|_| {
                LikelihoodError::Tree(plf_phylo::tree::TreeError::Invalid(
                    "invalid initial model parameters".into(),
                ))
            })?;
        let evaluator = if options.incremental {
            Evaluator::Incremental(IncrementalLikelihood::new(&tree, data, model.clone())?)
        } else {
            Evaluator::Simple(TreeLikelihood::with_scaling(
                &tree,
                data,
                model.clone(),
                options.scale_every,
            )?)
        };
        let mut state = ChainState::new(tree, params, shape);
        state.pinvar = options.initial_pinvar;
        Ok(Chain {
            state,
            evaluator,
            model,
            priors,
            rng: StdRng::seed_from_u64(options.seed),
            options,
            cur_prior: f64::NEG_INFINITY,
            beta: 1.0,
            initialized: false,
            accum: RunAccum::default(),
            generation: 0,
            samples: Vec::new(),
            trace: Vec::new(),
            throughput: Vec::new(),
            mark: None,
        })
    }

    /// Restore a chain from a [`ChainCheckpoint`] and continue it with
    /// [`Chain::run_to_completion`].
    ///
    /// The checkpoint's fingerprint (seed, generation count, sampling
    /// and scaling periods, evaluator kind) must match `options`, and
    /// the likelihood recomputed from the restored tree + model must
    /// reproduce the checkpointed value *bit for bit* — both guards
    /// turn a stale or corrupted checkpoint into a
    /// [`ChainError::Checkpoint`] instead of a silently divergent run.
    pub fn resume(
        data: &PatternAlignment,
        priors: Priors,
        options: ChainOptions,
        ckpt: &ChainCheckpoint,
        backend: &mut dyn PlfBackend,
    ) -> Result<Chain, ChainError> {
        ckpt.check_compatible(&options)?;
        let tree = ckpt.restore_tree()?;
        let params = GtrParams {
            rates: ckpt.rates,
            freqs: ckpt.freqs,
        };
        let model = SiteModel::new(params.clone(), ckpt.shape, options.n_rates)
            .and_then(|m| m.with_pinvar(ckpt.pinvar))
            .map_err(|_| {
                ChainError::Checkpoint("invalid model parameters in checkpoint".into())
            })?;
        let evaluator = if options.incremental {
            Evaluator::Incremental(IncrementalLikelihood::new(&tree, data, model.clone())?)
        } else {
            Evaluator::Simple(TreeLikelihood::with_scaling(
                &tree,
                data,
                model.clone(),
                options.scale_every,
            )?)
        };
        let mut state = ChainState::new(tree, params, ckpt.shape);
        state.pinvar = ckpt.pinvar;
        let mut chain = Chain {
            state,
            evaluator,
            model,
            priors,
            rng: StdRng::from_state(ckpt.rng_state),
            options,
            cur_prior: f64::NEG_INFINITY,
            beta: ckpt.beta,
            initialized: false,
            accum: ckpt.accum.to_accum(),
            generation: ckpt.generation,
            samples: ckpt.samples.clone(),
            trace: ckpt.trace.clone(),
            throughput: Vec::new(),
            mark: None,
        };
        // Rebuild the CLV workspace with a fresh full evaluation. It is
        // not counted in the accumulators — the checkpointed ones
        // already include the original initial evaluation.
        chain.initialize_inner(backend, false)?;
        if chain.state.ln_likelihood.to_bits() != ckpt.ln_likelihood.to_bits() {
            return Err(ChainError::Checkpoint(format!(
                "restored state evaluates to lnL {} but the checkpoint recorded {}; \
                 the checkpoint does not match this data set",
                chain.state.ln_likelihood, ckpt.ln_likelihood
            )));
        }
        chain.cur_prior = ckpt.cur_prior;
        Ok(chain)
    }

    /// Snapshot the full chain state for later [`Chain::resume`].
    pub fn checkpoint(&self) -> Result<ChainCheckpoint, ChainError> {
        if !self.initialized {
            return Err(ChainError::Checkpoint(
                "cannot checkpoint an uninitialized chain".into(),
            ));
        }
        let (tree_nodes, tree_root) = ChainCheckpoint::snapshot_tree(&self.state.tree);
        Ok(ChainCheckpoint {
            format_version: CHECKPOINT_FORMAT_VERSION,
            seed: self.options.seed,
            generations: self.options.generations,
            sample_every: self.options.sample_every,
            scale_every: self.options.scale_every,
            n_rates: self.options.n_rates,
            incremental: self.options.incremental,
            generation: self.generation,
            beta: self.beta,
            rng_state: self.rng.state(),
            cur_prior: self.cur_prior,
            rates: self.state.params.rates,
            freqs: self.state.params.freqs,
            shape: self.state.shape,
            pinvar: self.state.pinvar,
            ln_likelihood: self.state.ln_likelihood,
            tree_nodes,
            tree_root,
            accum: AccumSnapshot::from_accum(&self.accum),
            samples: self.samples.clone(),
            trace: self.trace.clone(),
        })
    }

    /// Current state (read-only).
    pub fn state(&self) -> &ChainState {
        &self.state
    }

    /// Current log posterior (`ln L + ln prior`); requires
    /// initialization.
    pub fn ln_posterior(&self) -> f64 {
        self.state.ln_likelihood + self.cur_prior
    }

    /// Set the MC³ inverse temperature β (1 = the cold chain).
    pub fn set_temperature(&mut self, beta: f64) {
        assert!(beta > 0.0 && beta <= 1.0, "beta {beta} outside (0, 1]");
        self.beta = beta;
    }

    /// Current inverse temperature.
    pub fn temperature(&self) -> f64 {
        self.beta
    }

    /// Run accumulators (for MC³ aggregation).
    pub fn accum(&self) -> &RunAccum {
        &self.accum
    }

    /// Exchange the *states* of two chains (an accepted MC³ swap): the
    /// parameter states, models, likelihood workspaces, and priors move;
    /// temperatures, RNGs, and accumulators stay with their slots.
    pub fn swap_payload(a: &mut Chain, b: &mut Chain) {
        std::mem::swap(&mut a.state, &mut b.state);
        std::mem::swap(&mut a.evaluator, &mut b.evaluator);
        std::mem::swap(&mut a.model, &mut b.model);
        std::mem::swap(&mut a.cur_prior, &mut b.cur_prior);
    }

    fn pick_proposal(&mut self) -> ProposalKind {
        let total: f64 = self.options.proposal_weights.iter().sum();
        let mut u = self.rng.gen_range(0.0..total);
        for (kind, &w) in ALL_PROPOSALS.iter().zip(&self.options.proposal_weights) {
            if u < w {
                return *kind;
            }
            u -= w;
        }
        ALL_PROPOSALS[ALL_PROPOSALS.len() - 1]
    }

    /// Generations executed so far.
    pub fn generation(&self) -> usize {
        self.generation
    }

    /// Samples recorded so far.
    pub fn samples(&self) -> &[Sample] {
        &self.samples
    }

    /// Per-sample-interval throughput recorded so far.
    pub fn throughput(&self) -> &[ThroughputRecord] {
        &self.throughput
    }

    /// Perform the initial full likelihood evaluation (idempotent).
    pub fn initialize(&mut self, backend: &mut dyn PlfBackend) -> Result<(), ChainError> {
        self.initialize_inner(backend, true)
    }

    /// Shared initializer: `count` controls whether the evaluation is
    /// charged to the run accumulators (a [`Chain::resume`] rebuild is
    /// not — the restored accumulators already include it).
    fn initialize_inner(
        &mut self,
        backend: &mut dyn PlfBackend,
        count: bool,
    ) -> Result<(), ChainError> {
        if self.initialized {
            return Ok(());
        }
        let t0 = Instant::now();
        let (lnl, calls) = match &mut self.evaluator {
            Evaluator::Simple(eval) => {
                let plan = PlfPlan::for_tree(&self.state.tree, self.options.scale_every)
                    .map_err(LikelihoodError::Tree)?;
                let lnl = eval.log_likelihood_planned(&self.state.tree, &plan, backend)?;
                (lnl, plan.n_calls())
            }
            Evaluator::Incremental(inc) => {
                let lnl = inc.full_evaluate(&self.state.tree, backend)?;
                (lnl, inc.last_calls())
            }
        };
        if count {
            self.accum.plf_time += t0.elapsed();
            self.accum.plf_calls += calls as u64;
            self.accum.n_evaluations += 1;
        }
        self.state.ln_likelihood = lnl;
        self.cur_prior = self.priors.ln_prior(&self.state);
        self.initialized = true;
        self.set_mark(Instant::now());
        Ok(())
    }

    /// Execute one MCMC generation (one proposal + accept/reject).
    /// Returns whether the proposal was accepted.
    ///
    /// On a PLF failure the candidate is discarded, the evaluator is
    /// rolled back to the pre-proposal state (flip buffers un-flipped,
    /// model restored), and the error is returned — the chain remains
    /// consistent and can be stepped again, checkpointed, or dropped.
    pub fn step(&mut self, backend: &mut dyn PlfBackend) -> Result<bool, ChainError> {
        assert!(self.initialized, "call initialize() before step()");
        let kind = self.pick_proposal();
        let slot = ALL_PROPOSALS.iter().position(|&k| k == kind).unwrap();
        self.accum.proposals[slot].1.proposed += 1;

        let mut candidate = self.state.clone();
        let Some(outcome) = propose(kind, &mut candidate, &self.options.tuning, &mut self.rng)
        else {
            self.finish_generation();
            return Ok(false); // inapplicable move: auto-reject
        };

        // Rebuild the site model if the move touched it.
        let candidate_model = if kind.changes_model() {
            match SiteModel::new(
                candidate.params.clone(),
                candidate.shape,
                self.options.n_rates,
            )
            .and_then(|m| m.with_pinvar(candidate.pinvar))
            {
                Ok(m) => Some(m),
                Err(_) => {
                    self.finish_generation();
                    return Ok(false); // invalid parameters: auto-reject
                }
            }
        } else {
            None
        };

        // Evaluate the candidate.
        let t0 = Instant::now();
        let evaluated: Result<(f64, usize), LikelihoodError> = match &mut self.evaluator {
            Evaluator::Simple(eval) => {
                if let Some(m) = &candidate_model {
                    eval.set_model(m.clone());
                }
                PlfPlan::for_tree(&candidate.tree, self.options.scale_every)
                    .map_err(LikelihoodError::Tree)
                    .and_then(|plan| {
                        eval.log_likelihood_planned(&candidate.tree, &plan, backend)
                            .map(|lnl| (lnl, plan.n_calls()))
                    })
            }
            Evaluator::Incremental(inc) => {
                if let Some(m) = &candidate_model {
                    // Model moves invalidate every CLV.
                    inc.set_model(m.clone());
                    inc.propose_full(&candidate.tree, backend)
                } else if let Dirty::Nodes(nodes) = &outcome.dirty {
                    inc.propose(&candidate.tree, nodes, backend)
                } else {
                    inc.propose_full(&candidate.tree, backend)
                }
                .map(|lnl| (lnl, inc.last_calls()))
            }
        };
        self.accum.plf_time += t0.elapsed();
        let (lnl, calls) = match evaluated {
            Ok(v) => v,
            Err(e) => {
                // Roll the evaluator back so the chain stays consistent.
                match &mut self.evaluator {
                    Evaluator::Simple(eval) => {
                        if candidate_model.is_some() {
                            eval.set_model(self.model.clone());
                        }
                    }
                    Evaluator::Incremental(inc) => {
                        inc.reject();
                        if candidate_model.is_some() {
                            inc.set_model(self.model.clone());
                        }
                    }
                }
                return Err(e.into());
            }
        };
        self.accum.plf_calls += calls as u64;
        self.accum.n_evaluations += 1;
        candidate.ln_likelihood = lnl;
        let cand_prior = self.priors.ln_prior(&candidate);

        // Heated acceptance: (posterior ratio)^β × Hastings.
        let ln_accept = self.beta
            * ((lnl + cand_prior) - (self.state.ln_likelihood + self.cur_prior))
            + outcome.ln_hastings;
        let u: f64 = self.rng.gen_range(f64::MIN_POSITIVE..1.0);
        let accept = u.ln() < ln_accept;

        match &mut self.evaluator {
            Evaluator::Simple(_) if accept => {}
            Evaluator::Simple(eval) => {
                if candidate_model.is_some() {
                    eval.set_model(self.model.clone());
                }
            }
            Evaluator::Incremental(inc) if accept => inc.accept(),
            Evaluator::Incremental(inc) => {
                inc.reject();
                if candidate_model.is_some() {
                    inc.set_model(self.model.clone());
                }
            }
        }
        if accept {
            self.state = candidate;
            self.cur_prior = cand_prior;
            if let Some(m) = candidate_model {
                self.model = m;
            }
            self.accum.proposals[slot].1.accepted += 1;
        }
        self.finish_generation();
        Ok(accept)
    }

    /// Advance the generation counter and record samples at boundaries.
    fn finish_generation(&mut self) {
        self.generation += 1;
        if self.options.sample_every > 0 && self.generation.is_multiple_of(self.options.sample_every) {
            self.samples.push(self.sample_now(self.generation));
            if self.options.record_trace {
                self.trace.push(self.trace_now(self.generation));
            }
            self.record_throughput();
        }
    }

    /// Close the current throughput interval and open the next one.
    fn record_throughput(&mut self) {
        let now = Instant::now();
        if let Some(mark) = &self.mark {
            self.throughput.push(ThroughputRecord {
                generation: self.generation,
                generations: self.generation - mark.generation,
                evaluations: self.accum.n_evaluations - mark.n_evaluations,
                plf_calls: self.accum.plf_calls - mark.plf_calls,
                plf_seconds: self
                    .accum
                    .plf_time
                    .saturating_sub(mark.plf_time)
                    .as_secs_f64(),
                wall_seconds: now.duration_since(mark.at).as_secs_f64(),
            });
        }
        self.set_mark(now);
    }

    fn set_mark(&mut self, at: Instant) {
        self.mark = Some(ThroughputMark {
            at,
            generation: self.generation,
            n_evaluations: self.accum.n_evaluations,
            plf_calls: self.accum.plf_calls,
            plf_time: self.accum.plf_time,
        });
    }

    fn sample_now(&self, generation: usize) -> Sample {
        Sample {
            generation,
            ln_likelihood: self.state.ln_likelihood,
            tree_length: self.state.tree.tree_length(),
            shape: self.state.shape,
        }
    }

    fn trace_now(&self, generation: usize) -> TraceRecord {
        TraceRecord {
            generation,
            ln_likelihood: self.state.ln_likelihood,
            tree_length: self.state.tree.tree_length(),
            shape: self.state.shape,
            pinvar: self.state.pinvar,
            freqs: self.state.params.freqs,
            rates: self.state.params.rates,
            newick: self.state.tree.to_newick(),
        }
    }

    /// Run the chain from scratch on `backend`, returning run
    /// statistics. Resets any prior progress; use
    /// [`Chain::run_to_completion`] to continue a restored chain.
    pub fn run(&mut self, backend: &mut dyn PlfBackend) -> Result<ChainStats, ChainError> {
        self.accum = RunAccum::default();
        self.initialized = false;
        self.generation = 0;
        self.samples.clear();
        self.trace.clear();
        self.throughput.clear();
        self.mark = None;
        self.run_to_completion(backend)
    }

    /// Advance the chain until `generation` generations have executed
    /// (bounded by the configured total). Used to split a run around a
    /// checkpoint.
    pub fn run_to(
        &mut self,
        backend: &mut dyn PlfBackend,
        generation: usize,
    ) -> Result<(), ChainError> {
        self.initialize(backend)?;
        let target = generation.min(self.options.generations);
        while self.generation < target {
            self.step(backend)?;
        }
        Ok(())
    }

    /// Continue from the current generation to the configured total —
    /// without resetting progress — and return run statistics covering
    /// everything recorded so far (including pre-checkpoint samples of
    /// a resumed chain).
    pub fn run_to_completion(
        &mut self,
        backend: &mut dyn PlfBackend,
    ) -> Result<ChainStats, ChainError> {
        let run_start = Instant::now();
        self.initialize(backend)?;
        while self.generation < self.options.generations {
            self.step(backend)?;
        }
        Ok(ChainStats {
            samples: self.samples.clone(),
            proposals: self.accum.proposals,
            n_evaluations: self.accum.n_evaluations,
            plf_calls: self.accum.plf_calls,
            plf_time: self.accum.plf_time,
            total_time: run_start.elapsed(),
            final_ln_likelihood: self.state.ln_likelihood,
            trace: self.trace.clone(),
            throughput: self.throughput.clone(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use plf_phylo::alignment::Alignment;
    use plf_phylo::kernels::ScalarBackend;

    fn toy_data() -> (Tree, PatternAlignment) {
        let tree = Tree::from_newick("((a:0.1,b:0.2):0.05,c:0.3,d:0.4);").unwrap();
        let aln = Alignment::from_strings(&[
            ("a", "ACGTACGTAAGGCCTTAGCA"),
            ("b", "ACGTACGTACGGCCTTAGCA"),
            ("c", "ACGAACGTTAGGCCTAAGCA"),
            ("d", "ACTTACGTAAGGCGTTAGCA"),
        ])
        .unwrap()
        .compress();
        (tree, aln)
    }

    fn toy_chain_with(generations: usize, seed: u64, incremental: bool) -> Chain {
        let (tree, aln) = toy_data();
        Chain::new(
            tree,
            &aln,
            GtrParams::jc69(),
            0.5,
            Priors::default(),
            ChainOptions {
                generations,
                seed,
                sample_every: 10,
                incremental,
                ..ChainOptions::default()
            },
        )
        .unwrap()
    }

    fn toy_chain(generations: usize, seed: u64) -> Chain {
        toy_chain_with(generations, seed, false)
    }

    #[test]
    fn chain_runs_and_improves_or_holds() {
        let mut chain = toy_chain(300, 7);
        let stats = chain.run(&mut ScalarBackend).unwrap();
        let proposed: u64 = stats.proposals.iter().map(|(_, s)| s.proposed).sum();
        // Inapplicable moves skip the evaluation, so evals <= proposals+1.
        assert!(stats.n_evaluations >= 1 && stats.n_evaluations <= proposed + 1);
        assert!(stats.final_ln_likelihood.is_finite());
        assert!(!stats.samples.is_empty());
        // Posterior exploration should not be catastrophically worse than
        // the start.
        let first = stats.samples.first().unwrap().ln_likelihood;
        let last = stats.samples.last().unwrap().ln_likelihood;
        assert!(last >= first - 50.0, "chain diverged: {first} -> {last}");
    }

    #[test]
    fn acceptance_rates_in_bounds() {
        let mut chain = toy_chain(500, 11);
        let stats = chain.run(&mut ScalarBackend).unwrap();
        let mut any_accepted = false;
        for (_, s) in &stats.proposals {
            assert!(s.accepted <= s.proposed);
            any_accepted |= s.accepted > 0;
        }
        assert!(any_accepted, "nothing was ever accepted");
    }

    #[test]
    fn deterministic_given_seed() {
        let s1 = toy_chain(200, 3).run(&mut ScalarBackend).unwrap();
        let s2 = toy_chain(200, 3).run(&mut ScalarBackend).unwrap();
        assert_eq!(s1.final_ln_likelihood, s2.final_ln_likelihood);
        assert_eq!(s1.plf_calls, s2.plf_calls);
        let a: Vec<u64> = s1.proposals.iter().map(|(_, s)| s.accepted).collect();
        let b: Vec<u64> = s2.proposals.iter().map(|(_, s)| s.accepted).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_diverge() {
        let s1 = toy_chain(200, 1).run(&mut ScalarBackend).unwrap();
        let s2 = toy_chain(200, 2).run(&mut ScalarBackend).unwrap();
        assert_ne!(s1.final_ln_likelihood, s2.final_ln_likelihood);
    }

    #[test]
    fn plf_dominates_runtime() {
        // The paper: PLF is ~85-95% of MrBayes runtime. On a tiny data
        // set the share is lower, but the PLF must still be measured.
        let mut chain = toy_chain(100, 5);
        let stats = chain.run(&mut ScalarBackend).unwrap();
        assert!(stats.plf_time > Duration::ZERO);
        assert!(stats.plf_time <= stats.total_time);
        assert!(stats.plf_calls >= stats.n_evaluations);
    }

    #[test]
    fn throughput_intervals_cover_the_run() {
        let mut chain = toy_chain(100, 13);
        let stats = chain.run(&mut ScalarBackend).unwrap();
        // sample_every = 10, so one interval per sample point.
        assert_eq!(stats.throughput.len(), stats.samples.len());
        assert_eq!(
            stats.throughput.iter().map(|t| t.generations).sum::<usize>(),
            100
        );
        // Interval evaluations add up to the run total minus the initial
        // evaluation (performed before the first interval opens).
        assert_eq!(
            stats.throughput.iter().map(|t| t.evaluations).sum::<u64>(),
            stats.n_evaluations - 1
        );
        for t in &stats.throughput {
            assert!(t.wall_seconds >= 0.0);
            assert!(t.plf_seconds <= t.wall_seconds + 1e-6);
            assert!((0.0..=1.0).contains(&t.plf_fraction()));
        }
        assert_eq!(stats.throughput.last().unwrap().generation, 100);
    }

    #[test]
    fn timing_identity() {
        let mut chain = toy_chain(50, 9);
        let stats = chain.run(&mut ScalarBackend).unwrap();
        let sum = stats.plf_time + stats.remaining_time();
        let diff = sum.abs_diff(stats.total_time);
        assert!(diff < Duration::from_millis(1));
    }

    #[test]
    fn incremental_chain_matches_full_chain_trajectory() {
        // Same seeds, same proposals; partial updates recompute the
        // identical CLVs, so the trajectories agree to float-accumulation
        // tolerance (scaler sums are ordered differently).
        let full = toy_chain_with(300, 21, false).run(&mut ScalarBackend).unwrap();
        let inc = toy_chain_with(300, 21, true).run(&mut ScalarBackend).unwrap();
        assert!(
            (full.final_ln_likelihood - inc.final_ln_likelihood).abs()
                < full.final_ln_likelihood.abs() * 1e-6 + 1e-3,
            "full {} vs incremental {}",
            full.final_ln_likelihood,
            inc.final_ln_likelihood
        );
        let a: Vec<u64> = full.proposals.iter().map(|(_, s)| s.accepted).collect();
        let b: Vec<u64> = inc.proposals.iter().map(|(_, s)| s.accepted).collect();
        assert_eq!(a, b, "acceptance sequences diverged");
    }

    #[test]
    fn incremental_chain_issues_fewer_plf_calls() {
        // That is the whole point of the touched mechanism.
        let full = toy_chain_with(400, 33, false).run(&mut ScalarBackend).unwrap();
        let inc = toy_chain_with(400, 33, true).run(&mut ScalarBackend).unwrap();
        assert!(
            inc.plf_calls < full.plf_calls,
            "incremental {} !< full {}",
            inc.plf_calls,
            full.plf_calls
        );
    }

    #[test]
    fn pinvar_chain_explores_invariable_sites() {
        let (tree, aln) = toy_data();
        let mut chain = Chain::new(
            tree,
            &aln,
            GtrParams::jc69(),
            0.5,
            Priors::default(),
            ChainOptions {
                generations: 400,
                seed: 77,
                sample_every: 0,
                initial_pinvar: 0.2,
                incremental: true,
                ..ChainOptions::default()
            },
        )
        .unwrap();
        let stats = chain.run(&mut ScalarBackend).unwrap();
        assert!(stats.final_ln_likelihood.is_finite());
        let pinvar_slot = stats
            .proposals
            .iter()
            .find(|(k, _)| *k == ProposalKind::PinvarSlide)
            .unwrap();
        assert!(pinvar_slot.1.proposed > 0, "pinvar move never drawn");
        // The final state stays within the proposal bounds.
        let p = chain.state().pinvar;
        assert!((0.0..1.0).contains(&p), "pinvar {p}");
    }

    #[test]
    fn incremental_deterministic() {
        let s1 = toy_chain_with(150, 8, true).run(&mut ScalarBackend).unwrap();
        let s2 = toy_chain_with(150, 8, true).run(&mut ScalarBackend).unwrap();
        assert_eq!(s1.final_ln_likelihood, s2.final_ln_likelihood);
        assert_eq!(s1.plf_calls, s2.plf_calls);
    }

    fn traced_options(generations: usize, seed: u64, incremental: bool) -> ChainOptions {
        ChainOptions {
            generations,
            seed,
            sample_every: 10,
            incremental,
            record_trace: true,
            ..ChainOptions::default()
        }
    }

    fn traced_chain(generations: usize, seed: u64, incremental: bool) -> Chain {
        let (tree, aln) = toy_data();
        Chain::new(
            tree,
            &aln,
            GtrParams::jc69(),
            0.5,
            Priors::default(),
            traced_options(generations, seed, incremental),
        )
        .unwrap()
    }

    /// The checkpoint/restore acceptance test: a chain killed at
    /// generation `k` and resumed from its serialized checkpoint must
    /// reproduce the uninterrupted run's trace *exactly* — samples,
    /// trace records, and final log-likelihood all bitwise-equal.
    fn assert_resume_is_exact(incremental: bool) {
        let (_, aln) = toy_data();
        let uninterrupted = traced_chain(300, 4242, incremental)
            .run(&mut ScalarBackend)
            .unwrap();

        // "Crash" at generation 150: checkpoint, serialize, drop the chain.
        let mut victim = traced_chain(300, 4242, incremental);
        victim.run_to(&mut ScalarBackend, 150).unwrap();
        assert_eq!(victim.generation(), 150);
        let json = victim.checkpoint().unwrap().to_json();
        drop(victim);

        // Resume from the JSON text alone and run to completion.
        let ckpt = ChainCheckpoint::from_json(&json).unwrap();
        let mut resumed = Chain::resume(
            &aln,
            Priors::default(),
            traced_options(300, 4242, incremental),
            &ckpt,
            &mut ScalarBackend,
        )
        .unwrap_or_else(|e| panic!("resume failed: {e}"));
        let stats = resumed.run_to_completion(&mut ScalarBackend).unwrap();

        assert_eq!(
            stats.final_ln_likelihood.to_bits(),
            uninterrupted.final_ln_likelihood.to_bits(),
            "final lnL diverged: {} vs {}",
            stats.final_ln_likelihood,
            uninterrupted.final_ln_likelihood
        );
        assert_eq!(stats.samples, uninterrupted.samples, "sample trace diverged");
        assert_eq!(stats.trace, uninterrupted.trace, "full trace diverged");
        let a: Vec<u64> = stats.proposals.iter().map(|(_, s)| s.accepted).collect();
        let b: Vec<u64> = uninterrupted
            .proposals
            .iter()
            .map(|(_, s)| s.accepted)
            .collect();
        assert_eq!(a, b, "acceptance counts diverged");
        assert_eq!(stats.plf_calls, uninterrupted.plf_calls);
        assert_eq!(stats.n_evaluations, uninterrupted.n_evaluations);
    }

    #[test]
    fn resume_reproduces_full_chain_exactly() {
        assert_resume_is_exact(false);
    }

    #[test]
    fn resume_reproduces_incremental_chain_exactly() {
        assert_resume_is_exact(true);
    }

    #[test]
    fn checkpoint_requires_initialization() {
        let chain = toy_chain(100, 1);
        assert!(matches!(
            chain.checkpoint(),
            Err(ChainError::Checkpoint(_))
        ));
    }

    #[test]
    fn resume_rejects_mismatched_options() {
        let (_, aln) = toy_data();
        let mut chain = traced_chain(300, 7, false);
        chain.run_to(&mut ScalarBackend, 50).unwrap();
        let ckpt = chain.checkpoint().unwrap();
        // Wrong seed in the resume options: the trajectory would diverge.
        let Err(err) = Chain::resume(
            &aln,
            Priors::default(),
            traced_options(300, 8, false),
            &ckpt,
            &mut ScalarBackend,
        ) else {
            panic!("mismatched options must be rejected");
        };
        assert!(matches!(err, ChainError::Checkpoint(ref m) if m.contains("seed")));
    }

    #[test]
    fn resume_rejects_wrong_data() {
        let mut chain = traced_chain(300, 7, false);
        chain.run_to(&mut ScalarBackend, 50).unwrap();
        let ckpt = chain.checkpoint().unwrap();
        // A different alignment cannot reproduce the checkpointed lnL.
        let other = Alignment::from_strings(&[
            ("a", "AAAAAAAAAACCCCCCCCCC"),
            ("b", "AAAAAAAAAAGGGGGGGGGG"),
            ("c", "AAAAACCCCCGGGGGTTTTT"),
            ("d", "TTTTTTTTTTAAAAAAAAAA"),
        ])
        .unwrap()
        .compress();
        let Err(err) = Chain::resume(
            &other,
            Priors::default(),
            traced_options(300, 7, false),
            &ckpt,
            &mut ScalarBackend,
        ) else {
            panic!("wrong data must be rejected");
        };
        assert!(
            matches!(err, ChainError::Checkpoint(ref m) if m.contains("lnL")),
            "expected a likelihood-verification failure, got {err}"
        );
    }

    /// A backend whose first `fails` kernel calls error out; used to
    /// prove a failed step leaves the chain consistent and re-steppable.
    struct FlakyBackend {
        fails: u32,
    }

    impl PlfBackend for FlakyBackend {
        fn name(&self) -> String {
            "flaky".into()
        }

        fn cond_like_down(
            &mut self,
            left: &plf_phylo::clv::Clv,
            p_left: &plf_phylo::clv::TransitionMatrices,
            right: &plf_phylo::clv::Clv,
            p_right: &plf_phylo::clv::TransitionMatrices,
            out: &mut plf_phylo::clv::Clv,
        ) -> Result<(), plf_phylo::resilience::PlfError> {
            if self.fails > 0 {
                self.fails -= 1;
                return Err(plf_phylo::resilience::PlfError::Launch {
                    backend: "flaky".into(),
                    detail: "synthetic failure".into(),
                });
            }
            ScalarBackend.cond_like_down(left, p_left, right, p_right, out)
        }

        fn cond_like_root(
            &mut self,
            a: &plf_phylo::clv::Clv,
            p_a: &plf_phylo::clv::TransitionMatrices,
            b: &plf_phylo::clv::Clv,
            p_b: &plf_phylo::clv::TransitionMatrices,
            c: Option<(&plf_phylo::clv::Clv, &plf_phylo::clv::TransitionMatrices)>,
            out: &mut plf_phylo::clv::Clv,
        ) -> Result<(), plf_phylo::resilience::PlfError> {
            ScalarBackend.cond_like_root(a, p_a, b, p_b, c, out)
        }

        fn cond_like_scaler(
            &mut self,
            clv: &mut plf_phylo::clv::Clv,
            ln_scalers: &mut [f32],
        ) -> Result<(), plf_phylo::resilience::PlfError> {
            ScalarBackend.cond_like_scaler(clv, ln_scalers)
        }
    }

    #[test]
    fn failed_step_leaves_chain_consistent() {
        for incremental in [false, true] {
            let mut chain = traced_chain(200, 31, incremental);
            chain.initialize(&mut ScalarBackend).unwrap();
            let before_gen = chain.generation();
            let before_lnl = chain.state().ln_likelihood;

            // Drive steps through a failing backend until one errors
            // (some proposals are auto-rejected without a PLF call).
            let mut flaky = FlakyBackend { fails: u32::MAX };
            let mut errored = false;
            for _ in 0..20 {
                match chain.step(&mut flaky) {
                    Err(ChainError::Likelihood(_)) => {
                        errored = true;
                        break;
                    }
                    Err(e) => panic!("unexpected error kind: {e}"),
                    Ok(_) => {}
                }
            }
            assert!(errored, "the flaky backend never surfaced an error");
            // The failed generation was not counted and the state is intact.
            assert_eq!(chain.state().ln_likelihood, before_lnl);
            assert!(chain.generation() >= before_gen);

            // The chain remains usable on a healthy backend.
            for _ in 0..10 {
                chain.step(&mut ScalarBackend).unwrap();
            }
            assert!(chain.state().ln_likelihood.is_finite());
            chain.checkpoint().unwrap();
        }
    }
}

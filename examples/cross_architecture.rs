//! The paper's headline study in miniature: one data set, all eight
//! Table 1 systems, and the frequency-scaled PLF / Remaining / PCIe
//! breakdown of Figure 12.
//!
//! A short MCMC run on this machine provides the measured baseline
//! (serial PLF share and serial remainder); each architecture's
//! calibrated model then projects the full-application breakdown.
//!
//! ```sh
//! cargo run --release --example cross_architecture
//! ```

use plf_repro::mcmc::{Chain, ChainOptions, Priors};
use plf_repro::phylo::kernels::ScalarBackend;
use plf_repro::prelude::*;
use plf_repro::seqgen;

fn main() {
    // Scaled-down real-world shape (20 taxa; fewer patterns so the
    // example finishes in seconds — the bench binaries run the full
    // 8,543-pattern set).
    let spec = DatasetSpec::new(20, 1_000);
    let ds = seqgen::generate(spec, 11);
    let generations = 200u64;

    println!("measuring the serial baseline ({} generations on {})...", generations, spec.label());
    let mut chain = Chain::new(
        ds.tree.clone(),
        &ds.data,
        seqgen::default_model().params().clone(),
        0.5,
        Priors::default(),
        ChainOptions {
            generations: generations as usize,
            seed: 1,
            sample_every: 0,
            ..ChainOptions::default()
        },
    )
    .unwrap();
    let stats = chain.run(&mut ScalarBackend).expect("MCMC run");
    let remaining_s = stats.remaining_time().as_secs_f64();
    println!(
        "  baseline: PLF {:.2}s + Remaining {:.2}s  (PLF share {:.1}%)\n",
        stats.plf_time.as_secs_f64(),
        remaining_s,
        100.0 * stats.plf_fraction()
    );

    let w = PlfWorkload::for_run(spec.taxa, spec.patterns, 4, stats.n_evaluations, 1);

    let models: Vec<Box<dyn MachineModel>> = vec![
        Box::new(MultiCoreModel::baseline()),
        Box::new(MultiCoreModel::xeon_2x4()),
        Box::new(MultiCoreModel::opteron_4x4()),
        Box::new(MultiCoreModel::opteron_8x2()),
        Box::new(CellModel::ps3()),
        Box::new(CellModel::qs20()),
        Box::new(GpuModel::gt8800()),
        Box::new(GpuModel::gtx285()),
    ];

    // The baseline row anchors the 100% normalization of Figure 12.
    let baseline = models[0].breakdown(&w, remaining_s);
    let reference_total = baseline.total();

    println!(
        "{:<14} {:>8} {:>10} {:>8} {:>8} {:>9}",
        "System", "PLF%", "Remaining%", "PCIe%", "Total%", "Speedup"
    );
    for m in &models {
        let b = m.breakdown(&w, remaining_s);
        let (plf, rem, pcie) = b.normalized(reference_total);
        println!(
            "{:<14} {:>8.1} {:>10.1} {:>8.1} {:>8.1} {:>8.2}x",
            b.system,
            plf,
            rem,
            pcie,
            plf + rem + pcie,
            b.speedup_vs(reference_total)
        );
    }
    println!("\n(cf. Figure 12: multi-cores win overall; the Cell's PPE inflates Remaining;");
    println!(" the GPUs crush the PLF but pay for PCIe — the 8800GT exceeding the baseline.)");
}

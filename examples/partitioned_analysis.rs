//! Partitioned ("mixed model") analysis — MrBayes 3's namesake feature
//! and the regime the paper's introduction motivates (phylogenomic
//! alignments of many concatenated genes, §3.1).
//!
//! Three codon positions evolve at very different rates; fitting each
//! with its own Γ shape beats forcing one model across the alignment.
//!
//! ```sh
//! cargo run --release --example partitioned_analysis
//! ```

use plf_repro::phylo::kernels::ScalarBackend;
use plf_repro::phylo::likelihood::TreeLikelihood;
use plf_repro::phylo::partition::{by_codon_position, Partition, PartitionedLikelihood};
use plf_repro::prelude::*;
use plf_repro::seqgen;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // Simulate codon-like data: three interleaved column classes with
    // very different rates (3rd positions evolve ~8x faster than 2nd).
    let mut rng = StdRng::seed_from_u64(2009);
    let tree = seqgen::random_unrooted_tree(10, 0.08, &mut rng);
    let shapes = [0.6f64, 0.2, 3.0]; // per-position Γ shapes used to simulate
    let class_scale = [1.0f64, 0.4, 3.0]; // relative rates per position
    let mut rows: Vec<String> = vec![String::new(); 10];
    for codon in 0..400 {
        for pos in 0..3 {
            let mut scaled = tree.clone();
            for id in scaled.branches() {
                scaled.node_mut(id).branch *= class_scale[pos];
            }
            let model = SiteModel::gtr_gamma4(GtrParams::jc69(), shapes[pos]).unwrap();
            let aln = seqgen::evolve_alignment(&scaled, &model, 1, &mut rng);
            for (t, row) in rows.iter_mut().enumerate() {
                let name_idx = aln
                    .taxa()
                    .iter()
                    .position(|n| n == &format!("t{t}"))
                    .unwrap();
                row.push(aln.row(name_idx)[0].to_iupac());
            }
        }
        let _ = codon;
    }
    let named: Vec<(&str, &str)> = (0..10)
        .map(|t| (Box::leak(format!("t{t}").into_boxed_str()) as &str, rows[t].as_str()))
        .collect();
    let aln = plf_repro::phylo::alignment::Alignment::from_strings(&named).unwrap();
    println!(
        "simulated coding alignment: {} taxa × {} sites (three rate classes)\n",
        aln.n_taxa(),
        aln.n_sites()
    );

    // Single-model fit.
    let single_model = SiteModel::gtr_gamma4(GtrParams::jc69(), 0.6).unwrap();
    let mut single = TreeLikelihood::new(&tree, &aln.compress(), single_model.clone()).unwrap();
    let lnl_single = single.log_likelihood(&tree, &mut ScalarBackend).unwrap();

    // Partitioned fit: per-codon-position Γ shapes (simple grid search
    // per partition stands in for per-partition MCMC).
    let positions = by_codon_position(&aln);
    let mut best_parts = Vec::new();
    println!("per-partition Γ-shape fits:");
    for (i, part_aln) in positions.iter().enumerate() {
        let data = part_aln.compress();
        let mut best = (f64::NEG_INFINITY, 0.0f64);
        for &shape in &[0.1, 0.2, 0.4, 0.6, 1.0, 1.5, 3.0, 6.0] {
            let model = SiteModel::gtr_gamma4(GtrParams::jc69(), shape).unwrap();
            let mut eval = TreeLikelihood::new(&tree, &data, model).unwrap();
            let lnl = eval.log_likelihood(&tree, &mut ScalarBackend).unwrap();
            if lnl > best.0 {
                best = (lnl, shape);
            }
        }
        println!(
            "  codon position {}: best shape {:>4.1}  (lnL {:.2}; simulated with {:.1})",
            i + 1,
            best.1,
            best.0,
            shapes[i]
        );
        // (Position 3's recovered shape absorbs the 3x branch-rate scale
        // we simulated with, since this fit keeps branch lengths fixed.)
        best_parts.push(Partition {
            name: format!("pos{}", i + 1),
            data,
            model: SiteModel::gtr_gamma4(GtrParams::jc69(), best.1).unwrap(),
        });
    }

    let mut partitioned = PartitionedLikelihood::new(&tree, best_parts).unwrap();
    let lnl_part = partitioned.log_likelihood(&tree, &mut ScalarBackend).unwrap();

    println!("\nsingle model    lnL: {lnl_single:.2}");
    println!("mixed model     lnL: {lnl_part:.2}");
    println!(
        "partitioning improves the fit by {:.2} log units ({} extra parameters)",
        lnl_part - lnl_single,
        2
    );
    assert!(lnl_part > lnl_single, "mixed model must fit heterogeneous data better");
}

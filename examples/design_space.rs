//! GPU design-space exploration (§3.4): sweep CUDA launch
//! configurations (threads per block × blocks) on both devices and
//! report the best, alongside the paper's empirically found optima
//! (256×40 on the 8800 GT, 256×85 on the GTX 285).
//!
//! ```sh
//! cargo run --release --example design_space
//! ```

use plf_repro::gpu::{GpuModel, LaunchConfig};
use plf_repro::prelude::*;

fn main() {
    // The real-world workload shape: 20 taxa, 8,543 distinct patterns.
    let w = PlfWorkload::for_run(20, 8_543, 4, 100, 1);

    for (model, paper_cfg) in [
        (GpuModel::gt8800(), LaunchConfig::paper_8800gt()),
        (GpuModel::gtx285(), LaunchConfig::paper_gtx285()),
    ] {
        let name = model.config().name;
        println!("== {name} ==");

        // A few representative configurations.
        println!("  {:<12} {:>12} {:>12}", "config", "PLF time", "vs paper cfg");
        let paper_time = model.clone_with(paper_cfg).plf_time(&w, 1);
        for cfg in [
            LaunchConfig { threads: 32, blocks: 14 },
            LaunchConfig { threads: 64, blocks: 28 },
            LaunchConfig { threads: 128, blocks: 42 },
            paper_cfg,
        ] {
            let m = model.clone_with(cfg);
            if !m.is_launchable(cfg) {
                println!("  {:>4}x{:<6} {:>12}", cfg.threads, cfg.blocks, "invalid");
                continue;
            }
            let t = m.plf_time(&w, 1);
            println!(
                "  {:>4}x{:<6} {:>9.3} ms {:>11.2}x",
                cfg.threads,
                cfg.blocks,
                t * 1e3,
                t / paper_time
            );
        }

        // Full sweep.
        let (best, t) = model.sweep(&w);
        println!(
            "  sweep optimum: {}x{} ({:.3} ms); paper found {}x{}\n",
            best.threads,
            best.blocks,
            t * 1e3,
            paper_cfg.threads,
            paper_cfg.blocks
        );
    }
}

/// Small helper: clone a model with a different launch configuration.
trait CloneWith {
    fn clone_with(&self, cfg: LaunchConfig) -> GpuModel;
}

impl CloneWith for GpuModel {
    fn clone_with(&self, cfg: LaunchConfig) -> GpuModel {
        self.clone().with_config(cfg)
    }
}

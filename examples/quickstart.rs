//! Quickstart: generate data, compute a tree likelihood on every
//! architecture, and show the modeled cross-architecture timings.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use plf_repro::prelude::*;
use plf_repro::{evaluate_on_all_backends, seqgen};

fn main() {
    // 1. A Seq-Gen-style data set: 10 taxa, 1,000 distinct patterns —
    //    the paper's smallest benchmark cell (10_1K).
    let spec = DatasetSpec::new(10, 1_000);
    println!("generating data set {} ...", spec.label());
    let ds = seqgen::generate(spec, 2009);
    let model = seqgen::default_model();
    println!(
        "  {} taxa, {} distinct patterns ({} sites)\n",
        ds.data.n_taxa(),
        ds.data.n_patterns(),
        ds.data.n_sites()
    );

    // 2. The same Phylogenetic Likelihood Function on every backend:
    //    host scalar/SIMD, rayon multicore, simulated Cell/BE, simulated
    //    GPUs. All agree (bitwise for the canonical-order kernels).
    println!("log-likelihood per backend:");
    let results = evaluate_on_all_backends(&ds.tree, &ds.data, &model).unwrap();
    for (name, lnl) in &results {
        println!("  {name:<22} lnL = {lnl:.6}");
    }

    // 3. Modeled PLF times on the paper's eight systems for one
    //    evaluation sweep over this data set (frequency-scaled to the
    //    3.0 GHz baseline as in §4.2).
    let w = PlfWorkload::for_run(spec.taxa, spec.patterns, 4, 1, 1);
    println!("\nmodeled PLF time for one tree evaluation (frequency-scaled):");
    let models: Vec<Box<dyn MachineModel>> = vec![
        Box::new(MultiCoreModel::baseline()),
        Box::new(MultiCoreModel::xeon_2x4()),
        Box::new(MultiCoreModel::opteron_4x4()),
        Box::new(MultiCoreModel::opteron_8x2()),
        Box::new(CellModel::ps3()),
        Box::new(CellModel::qs20()),
        Box::new(GpuModel::gt8800()),
        Box::new(GpuModel::gtx285()),
    ];
    for m in &models {
        let cfg = m.config();
        let t = m.plf_time(&w, m.max_units()) * cfg.freq_scale();
        let x = m.transfer_time(&w) * cfg.freq_scale();
        if x > 0.0 {
            println!("  {:<14} {:>9.3} ms  (+ {:>8.3} ms PCIe)", cfg.name, t * 1e3, x * 1e3);
        } else {
            println!("  {:<14} {:>9.3} ms", cfg.name, t * 1e3);
        }
    }
    println!("\n(see `cargo run -p plf-bench --bin fig09` .. fig12 for the full figures)");
}

//! MrBayes's "touched" mechanism in action: partial PLF re-evaluation
//! with flip buffers versus full recomputation per proposal.
//!
//! The paper's scalability study stresses the *number of calls to the
//! parallel section*; incremental updates are why that number is what
//! it is in production MrBayes — a branch-length move recomputes only
//! the path to the root. This example measures both strategies on the
//! same chain and shows the identical trajectories with far fewer
//! kernel calls.
//!
//! ```sh
//! cargo run --release --example incremental_updates
//! ```

use plf_repro::mcmc::{Chain, ChainOptions, Priors};
use plf_repro::phylo::kernels::ScalarBackend;
use plf_repro::prelude::*;
use plf_repro::seqgen;

fn run(incremental: bool, label: &str, ds: &Dataset) -> (f64, u64, std::time::Duration) {
    let mut chain = Chain::new(
        ds.tree.clone(),
        &ds.data,
        seqgen::default_model().params().clone(),
        0.5,
        Priors::default(),
        ChainOptions {
            generations: 1_500,
            seed: 2009,
            sample_every: 0,
            incremental,
            ..ChainOptions::default()
        },
    )
    .expect("chain construction");
    let stats = chain.run(&mut ScalarBackend).expect("MCMC run");
    println!(
        "{label:<12} lnL {:>12.3}   PLF calls {:>7}   PLF time {:>8.3}s",
        stats.final_ln_likelihood,
        stats.plf_calls,
        stats.plf_time.as_secs_f64()
    );
    (stats.final_ln_likelihood, stats.plf_calls, stats.plf_time)
}

fn main() {
    // 40 taxa: deep trees are where partial updates shine (the dirty
    // path is a tiny fraction of the 37 internal nodes).
    let ds = seqgen::generate(DatasetSpec::new(40, 800), 17);
    println!(
        "data: {} taxa × {} patterns; same seed, same proposals:\n",
        ds.data.n_taxa(),
        ds.data.n_patterns()
    );
    let (lnl_full, calls_full, t_full) = run(false, "full", &ds);
    let (lnl_inc, calls_inc, t_inc) = run(true, "incremental", &ds);

    assert!((lnl_full - lnl_inc).abs() < lnl_full.abs() * 1e-6 + 1e-3);
    println!(
        "\nidentical trajectory, {:.1}x fewer kernel calls, {:.1}x less PLF time",
        calls_full as f64 / calls_inc as f64,
        t_full.as_secs_f64() / t_inc.as_secs_f64()
    );
    println!("(this is why production MrBayes affords a PLF round per proposal)");
}

//! Metropolis-coupled MCMC (MC³) — MrBayes 3's flagship algorithm —
//! combining the paper's *fine-grain* PLF parallelism (each chain on a
//! parallel backend) with *coarse-grain* chain parallelism (one thread
//! per chain): the "multi-grain" design space PBPI explored (§5).
//!
//! Finishes with the majority-rule consensus tree of the cold chain's
//! posterior sample.
//!
//! ```sh
//! cargo run --release --example mc3_inference
//! ```

use plf_repro::mcmc::consensus::consensus_from_newicks;
use plf_repro::mcmc::{ChainOptions, Mc3, Mc3Options, Priors};
use plf_repro::phylo::kernels::PlfBackend;
use plf_repro::prelude::*;
use plf_repro::seqgen;

fn main() {
    let ds = seqgen::generate(DatasetSpec::new(12, 300), 23);
    println!(
        "data: {} taxa × {} patterns; 4 coupled chains (MrBayes ladder ΔT = 0.1)\n",
        ds.data.n_taxa(),
        ds.data.n_patterns()
    );

    let mut mc3 = Mc3::new(
        ds.tree.clone(),
        &ds.data,
        seqgen::default_model().params().clone(),
        0.5,
        Priors::default(),
        Mc3Options {
            n_chains: 4,
            heat: 0.1,
            swap_every: 20,
            parallel: true,
            chain: ChainOptions {
                generations: 3_000,
                seed: 2009,
                sample_every: 100,
                record_trace: true,
                incremental: true,
                ..ChainOptions::default()
            },
        },
    )
    .expect("MC3 construction");

    // One fine-grain-parallel backend per chain (multi-grain execution).
    let mut backends: Vec<Box<dyn PlfBackend>> = (0..4)
        .map(|_| Box::new(plf_repro::multicore::PersistentPoolBackend::new(2)) as Box<dyn PlfBackend>)
        .collect();
    let stats = mc3.run(&mut backends).expect("MC3 run");

    println!("cold-chain posterior trace:");
    for s in stats.cold_samples.iter().step_by(5) {
        println!("  gen {:>5}  lnL {:>12.3}", s.generation, s.ln_likelihood);
    }
    println!(
        "\nswaps: {}/{} accepted ({:.0}%)",
        stats.swaps_accepted,
        stats.swaps_proposed,
        100.0 * stats.swap_acceptance()
    );
    println!("total PLF calls across chains: {}", stats.total_plf_calls());
    println!("final cold lnL: {:.3}", stats.final_cold_ln_likelihood);

    // Consensus of the post-burn-in cold sample.
    let newicks: Vec<String> = stats
        .cold_trace
        .iter()
        .skip(stats.cold_trace.len() / 4)
        .map(|r| r.newick.clone())
        .collect();
    let consensus = consensus_from_newicks(&newicks, 0.5).expect("trace trees parse");
    println!("\nmajority-rule consensus ({} trees):", newicks.len());
    println!("  {}", consensus.newick);
    for split in consensus.splits.iter().take(8) {
        println!("  {:.2}  {{{}}}", split.support, split.taxa.join(","));
    }
}

//! Bayesian phylogenetic inference end-to-end — the application the
//! paper accelerates, run the way a biologist would run MrBayes.
//!
//! Simulates sequence data on a known tree, then runs the MCMC chain
//! with fixed seed and generation count (§4's methodology), reporting
//! acceptance rates, the posterior trace, and the PLF / Remaining time
//! split that drives Figure 12.
//!
//! ```sh
//! cargo run --release --example bayesian_inference
//! ```

use plf_repro::mcmc::{Chain, ChainOptions, Priors, ALL_PROPOSALS};
use plf_repro::multicore::RayonBackend;
use plf_repro::prelude::*;
use plf_repro::seqgen;

fn main() {
    // Data: 12 taxa, 400 distinct patterns (laptop-sized but same shape
    // as the paper's inputs).
    let ds = seqgen::generate(DatasetSpec::new(12, 400), 7);
    println!(
        "data: {} taxa × {} patterns ({} sites)",
        ds.data.n_taxa(),
        ds.data.n_patterns(),
        ds.data.n_sites()
    );

    let options = ChainOptions {
        generations: 2_000,
        seed: 42,
        sample_every: 200,
        ..ChainOptions::default()
    };
    let mut chain = Chain::new(
        ds.tree.clone(),
        &ds.data,
        GtrParams::jc69(), // deliberately wrong start: watch it adapt
        1.0,
        Priors::default(),
        options,
    )
    .expect("chain construction");

    // The PLF runs on the rayon multicore backend — the paper's winner.
    let threads = std::thread::available_parallelism().map_or(4, |n| n.get());
    let mut backend = RayonBackend::new(threads).expect("thread pool");
    println!("running 2,000 generations on {} ({threads} threads)...\n", backend_name(&backend));

    let stats = chain.run(&mut backend).expect("MCMC run");

    println!("posterior trace (lnL):");
    for s in &stats.samples {
        println!(
            "  gen {:>5}  lnL {:>12.3}  tree length {:>6.3}  alpha {:>5.3}",
            s.generation, s.ln_likelihood, s.tree_length, s.shape
        );
    }

    println!("\nacceptance rates:");
    for (kind, ps) in &stats.proposals {
        println!(
            "  {:<16} {:>6}/{:<6} = {:>5.1}%",
            kind.name(),
            ps.accepted,
            ps.proposed,
            100.0 * ps.acceptance_rate()
        );
    }
    assert_eq!(stats.proposals.len(), ALL_PROPOSALS.len());

    println!("\ntiming split (the quantity Figure 12 breaks down):");
    println!("  PLF       {:>9.3} s ({:.1}% of total)", stats.plf_time.as_secs_f64(), 100.0 * stats.plf_fraction());
    println!("  Remaining {:>9.3} s", stats.remaining_time().as_secs_f64());
    println!("  evaluations: {}  kernel calls: {}", stats.n_evaluations, stats.plf_calls);
    println!("\nfinal lnL: {:.3}", stats.final_ln_likelihood);
}

fn backend_name(b: &RayonBackend) -> String {
    use plf_repro::phylo::kernels::PlfBackend;
    b.name()
}

#!/usr/bin/env bash
# Tier-1 verification gate plus static-analysis, lint, and hygiene
# checks.
#
#   scripts/verify.sh [--deep] [--smoke]
#
# Runs, in order:
#   1. repo hygiene: no build artifacts (target/) may be tracked by git;
#   2. the tier-1 gate from ROADMAP.md: release build + full test suite;
#   3. first-party crate unit tests (the root-package `cargo test` does
#      not reach workspace members, so the per-crate suites — including
#      plf-lint's fixture tests — run explicitly);
#   4. plf-lint, the PLF workspace invariant checker (DESIGN.md
#      §10/§15): the lexical rules L1-L4 (SAFETY-comment coverage,
#      hot-path panic freedom, magic-number bans, atomic-ordering
#      consistency) plus the structural rules L5-L8 (lock-order
#      deadlock analysis, unsafe raw-pointer dataflow, the
#      kernel-parity matrix, service-path error hygiene). The gate
#      runs twice — human-readable and --json — and then diffs the
#      --lock-graph DOT output against the checked-in snapshot
#      results/lock_graph.dot, so any new lock-order edge shows up in
#      review;
#   5. clippy with -D warnings on every first-party crate (the
#      [workspace.lints] wall turns each listed warn into an error);
#   6. a smoke run of the perf_report binary, proving the observability
#      pipeline produces a BENCH_plf report end to end (schema v6, with
#      the plfd service section including the self-healing,
#      crash-durability, and CLV-cache counters, plus the net_service
#      section measured over a real plf-net loopback socket,
#      self-validated by the binary). The run doubles as the batch-perf
#      smoke: --require-batched-win makes the binary exit non-zero
#      unless the batched service out-throughputs direct per-job
#      dispatch, so a fused-execution regression fails verification;
#   7. the network smoke: `plfr serve --listen` on an ephemeral
#      loopback port flooded by `plfr loadgen --connect` with tenant
#      churn — loadgen exits non-zero if any acknowledged job is lost
#      and the server must drain cleanly on SIGTERM;
#   8. a quick fixed-seed `plfr chaos` soak — a scheduled worker kill
#      and backend blackout that the service must heal with zero lost
#      jobs, bit-identical results, and every breaker re-closed;
#   9. a fixed-seed `plfr chaos --crash` drill — the service is crashed
#      (kill -9 semantics: journal frozen mid-flight, a torn record
#      appended to the tail) after N acknowledged jobs and restarted on
#      the same journal; exits non-zero unless recovery replays every
#      acknowledged job, dedups every resubmission, truncates the torn
#      tail non-fatally, and every result is bit-identical to the
#      serial scalar reference.
#
# With --smoke, the perf_report step writes its report to
# ./BENCH_plf.json (smoke-sized: one small data set, 64 service jobs)
# instead of a discarded temp file — CI uploads that file as the
# service-smoke artifact.
#
# With --deep, additionally runs the Miri soundness pass over the raw
# allocator (`cargo +nightly miri test -p plf-phylo clv`) and over the
# plf-lint scanner/parser/graph unit tests. Miri needs
# the nightly toolchain with the miri component; when it is not
# installed the deep pass is reported and skipped so offline
# environments still verify.
set -euo pipefail
cd "$(dirname "$0")/.."

DEEP=0
SMOKE=0
for arg in "$@"; do
    case "$arg" in
        --deep) DEEP=1 ;;
        --smoke) SMOKE=1 ;;
        *) echo "usage: scripts/verify.sh [--deep] [--smoke]" >&2; exit 2 ;;
    esac
done

FIRST_PARTY=(
    -p plf-phylo -p plf-seqgen -p plf-mcmc -p plf-simcore
    -p plf-multicore -p plf-cellbe -p plf-gpu -p plfd -p plf-net
    -p plf-bench -p plf-lint -p plf-repro
)

echo "==> hygiene: no tracked files under target/"
if [ -n "$(git ls-files target/)" ]; then
    echo "error: build artifacts are tracked by git:" >&2
    git ls-files target/ | head -n 20 >&2
    echo "(run: git rm -r --cached target/)" >&2
    exit 1
fi

echo "==> tier-1: cargo build --release"
cargo build --release

echo "==> tier-1: cargo test -q"
cargo test -q

echo "==> workspace crate tests"
cargo test -q "${FIRST_PARTY[@]}"

echo "==> plf-lint (workspace invariants L1-L8)"
cargo run --release -q -p plf-lint

echo "==> plf-lint --json (machine-readable gate)"
# The JSON emitter must agree with the text gate: clean workspace,
# empty diagnostics array, exit 0.
LINT_JSON="$(cargo run --release -q -p plf-lint -- --json)"
if [ "$LINT_JSON" != '{"diagnostics":[]}' ]; then
    echo "error: plf-lint --json reported diagnostics on a clean tree:" >&2
    echo "$LINT_JSON" >&2
    exit 1
fi

echo "==> plf-lint --lock-graph (snapshot diff vs results/lock_graph.dot)"
# The lock graph is review-bait: a new edge means a new lock-order
# constraint and must be committed deliberately (regenerate with
#   cargo run --release -q -p plf-lint -- --lock-graph > results/lock_graph.dot).
cargo run --release -q -p plf-lint -- --lock-graph \
    | diff -u results/lock_graph.dot - \
    || { echo "error: lock graph drifted from results/lock_graph.dot (see diff above)" >&2; exit 1; }

echo "==> clippy (all first-party crates), -D warnings"
cargo clippy "${FIRST_PARTY[@]}" --all-targets -- -D warnings

echo "==> perf_report --smoke (batch-perf-smoke: batched must beat direct)"
if [ "$SMOKE" = 1 ]; then
    # Keep the smoke report: CI's service-smoke job uploads it.
    cargo run --release -q -p plf-bench --bin perf_report -- \
        --smoke --require-batched-win --out BENCH_plf.json
else
    mkdir -p results
    cargo run --release -q -p plf-bench --bin perf_report -- \
        --smoke --require-batched-win --out results/BENCH_plf.smoke.tmp
    rm -f results/BENCH_plf.smoke.tmp
fi

echo "==> net smoke (plfr serve --listen vs plfr loadgen --connect)"
# A real two-process socket run on an ephemeral loopback port: loadgen
# exits non-zero if any acknowledged job is lost, and the server must
# drain cleanly (exit 0) on SIGTERM.
NET_DIR="$(mktemp -d)"
cargo run --release -q --bin plfr -- simulate \
    --taxa 10 --patterns 200 --seed 2009 --out "$NET_DIR/aln.fasta"
cargo run --release -q --bin plfr -- serve \
    --alignment "$NET_DIR/aln.fasta" --backend rayon --workers 2 \
    --listen 127.0.0.1:0 --port-file "$NET_DIR/port.txt" \
    2>"$NET_DIR/server.log" &
NET_SERVER=$!
for _ in $(seq 1 150); do [ -s "$NET_DIR/port.txt" ] && break; sleep 0.2; done
if [ ! -s "$NET_DIR/port.txt" ]; then
    echo "error: plfr serve never wrote its port file" >&2
    cat "$NET_DIR/server.log" >&2
    kill "$NET_SERVER" 2>/dev/null || true
    rm -rf "$NET_DIR"
    exit 1
fi
cargo run --release -q --bin plfr -- loadgen \
    --connect "127.0.0.1:$(cat "$NET_DIR/port.txt")" \
    --connections 64 --jobs 512 --pipeline 2 --churn 16 \
    || { echo "error: network loadgen failed (see above)" >&2;
         kill "$NET_SERVER" 2>/dev/null || true; rm -rf "$NET_DIR"; exit 1; }
kill -TERM "$NET_SERVER"
wait "$NET_SERVER" \
    || { echo "error: plfr serve did not drain cleanly on SIGTERM" >&2;
         cat "$NET_DIR/server.log" >&2; rm -rf "$NET_DIR"; exit 1; }
rm -rf "$NET_DIR"

echo "==> plfr chaos (fixed-seed self-healing soak)"
# Default schedule: kill worker 0 at submission 40, black out worker 1
# for 6 jobs at submission 80; exits non-zero unless the service heals.
cargo run --release -q --bin plfr -- chaos --seed 2009 >/dev/null

echo "==> plfr chaos --crash (crash-durability drill)"
# Crash after 20 acknowledged jobs, tear the journal tail, restart,
# recover, and resubmit all 60; exits non-zero on any lost acknowledged
# job, un-deduped resubmission, or bit mismatch across the crash.
CRASH_DIR="$(mktemp -d)"
trap 'rm -rf "$CRASH_DIR"' EXIT
cargo run --release -q --bin plfr -- chaos \
    --crash 20 --jobs 60 --seed 2009 --workers 2 \
    --journal-dir "$CRASH_DIR/journal" >/dev/null

if [ "$DEEP" = 1 ]; then
    echo "==> deep: miri soundness pass (AlignedBuf / clv, plf-lint)"
    if rustup run nightly cargo miri --version >/dev/null 2>&1; then
        # MIRIFLAGS: vendored deps are path deps, no network access.
        cargo +nightly miri test -p plf-phylo clv
        # The lint crate's scanner/parser is pure safe code over
        # untrusted source text; Miri keeps its indexing honest.
        cargo +nightly miri test -p plf-lint --lib
    else
        echo "warning: nightly miri not installed; skipping deep pass" >&2
        echo "         (install: rustup component add --toolchain nightly miri)" >&2
    fi
fi

echo "==> verify OK"

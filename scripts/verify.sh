#!/usr/bin/env bash
# Tier-1 verification gate plus lint for the resilience layer.
#
#   scripts/verify.sh
#
# Runs, in order:
#   1. the tier-1 gate from ROADMAP.md: release build + full test suite;
#   2. clippy with -D warnings on the crates the resilience layer spans
#      (phylo owns resilience/, mcmc owns checkpoint/restore, and the
#      three backend crates host the fault hooks).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> tier-1: cargo build --release"
cargo build --release

echo "==> tier-1: cargo test -q"
cargo test -q

echo "==> clippy (resilience-bearing crates), -D warnings"
cargo clippy -p plf-phylo -p plf-mcmc -p plf-multicore -p plf-cellbe -p plf-gpu \
    --all-targets -- -D warnings

echo "==> verify OK"

#!/usr/bin/env bash
# Tier-1 verification gate plus lint and hygiene checks.
#
#   scripts/verify.sh
#
# Runs, in order:
#   1. repo hygiene: no build artifacts (target/) may be tracked by git;
#   2. the tier-1 gate from ROADMAP.md: release build + full test suite;
#   3. clippy with -D warnings on the crates the resilience and metrics
#      layers span (phylo owns resilience/ and metrics, mcmc owns
#      checkpoint/restore and throughput, the three backend crates host
#      the fault hooks and counter feeds, bench emits BENCH_plf.json);
#   4. a smoke run of the perf_report binary, proving the observability
#      pipeline produces a BENCH_plf report end to end.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> hygiene: no tracked files under target/"
if [ -n "$(git ls-files target/)" ]; then
    echo "error: build artifacts are tracked by git:" >&2
    git ls-files target/ | head -n 20 >&2
    echo "(run: git rm -r --cached target/)" >&2
    exit 1
fi

echo "==> tier-1: cargo build --release"
cargo build --release

echo "==> tier-1: cargo test -q"
cargo test -q

echo "==> clippy (resilience- and metrics-bearing crates), -D warnings"
cargo clippy -p plf-phylo -p plf-mcmc -p plf-multicore -p plf-cellbe -p plf-gpu \
    -p plf-bench --all-targets -- -D warnings

echo "==> perf_report --smoke"
mkdir -p results
cargo run --release -q -p plf-bench --bin perf_report -- \
    --smoke --out results/BENCH_plf.smoke.tmp
rm -f results/BENCH_plf.smoke.tmp

echo "==> verify OK"

//! Statistical end-to-end validation: simulate data under known truth,
//! infer with the MCMC machinery, and check the truth is recovered.
//! This exercises the entire stack — Seq-Gen substitute, PLF kernels,
//! incremental updates, proposals, consensus summarization — as one
//! system, the way a biologist would use it.

use plf_repro::mcmc::consensus::{majority_consensus, robinson_foulds};
use plf_repro::mcmc::{Chain, ChainOptions, Priors};
use plf_repro::phylo::kernels::ScalarBackend;
use plf_repro::phylo::tree::Tree;
use plf_repro::prelude::*;
use plf_repro::seqgen;

#[test]
fn topology_recovery_from_strong_signal() {
    // Plenty of data on a 8-taxon tree: the true topology should
    // dominate the posterior sample.
    let ds = seqgen::generate(DatasetSpec::new(8, 400), 99);
    let mut chain = Chain::new(
        ds.tree.clone(),
        &ds.data,
        seqgen::default_model().params().clone(),
        0.5,
        Priors::default(),
        ChainOptions {
            generations: 1_500,
            seed: 7,
            sample_every: 50,
            record_trace: true,
            incremental: true,
            ..ChainOptions::default()
        },
    )
    .unwrap();
    let stats = chain.run(&mut ScalarBackend).unwrap();

    // Post-burn-in consensus.
    let trees: Vec<Tree> = stats
        .trace
        .iter()
        .skip(stats.trace.len() / 3)
        .map(|r| Tree::from_newick(&r.newick).unwrap())
        .collect();
    assert!(trees.len() >= 10);
    let consensus = majority_consensus(&trees, 0.5);

    // Strip support labels so the consensus parses as a plain tree; a
    // fully resolved 8-taxon unrooted tree has 5 non-trivial splits.
    assert!(
        !consensus.splits.is_empty(),
        "consensus collapsed to a star — no signal recovered"
    );
    // The sampled trees should be close to the generating topology.
    let mean_rf: f64 = trees
        .iter()
        .map(|t| robinson_foulds(t, &ds.tree) as f64)
        .sum::<f64>()
        / trees.len() as f64;
    // Max RF for 8 taxa is 2*(8-3) = 10.
    assert!(
        mean_rf < 5.0,
        "posterior wanders far from the truth: mean RF {mean_rf}"
    );
}

#[test]
fn branch_length_scale_recovery() {
    // Tree length posterior mean should land near the generating tree's
    // length (exponential prior pulls down slightly; allow slack).
    let ds = seqgen::generate(DatasetSpec::new(6, 500), 4);
    let truth = ds.tree.tree_length();
    let mut chain = Chain::new(
        ds.tree.clone(),
        &ds.data,
        seqgen::default_model().params().clone(),
        0.5,
        Priors::default(),
        ChainOptions {
            generations: 1_200,
            seed: 13,
            sample_every: 40,
            incremental: true,
            ..ChainOptions::default()
        },
    )
    .unwrap();
    let stats = chain.run(&mut ScalarBackend).unwrap();
    let skip = stats.samples.len() / 3;
    let kept = &stats.samples[skip..];
    let mean_tl: f64 = kept.iter().map(|s| s.tree_length).sum::<f64>() / kept.len() as f64;
    assert!(
        (mean_tl - truth).abs() < truth * 0.5,
        "tree length {mean_tl:.3} vs truth {truth:.3}"
    );
}

#[test]
fn frequency_recovery_with_model_moves() {
    // Generating frequencies are skewed; the chain starts at JC (equal)
    // and must move towards the truth.
    let ds = seqgen::generate(DatasetSpec::new(6, 600), 21);
    let true_freqs = seqgen::default_model().freqs();
    let mut chain = Chain::new(
        ds.tree.clone(),
        &ds.data,
        GtrParams::jc69(),
        0.5,
        Priors::default(),
        ChainOptions {
            generations: 1_500,
            seed: 3,
            sample_every: 0,
            incremental: true,
            ..ChainOptions::default()
        },
    )
    .unwrap();
    chain.run(&mut ScalarBackend).unwrap();
    let est = chain.state().params.freqs;
    for s in 0..4 {
        assert!(
            (est[s] - true_freqs[s]).abs() < 0.08,
            "freq {s}: estimated {:.3} vs true {:.3}",
            est[s],
            true_freqs[s]
        );
    }
}

// ---------------------------------------------------------------------------
// Fault matrix: every simulated architecture × every fault class must be
// survived by the resilient execution wrapper, and — because the
// canonical-order kernels are bitwise identical to the scalar reference —
// recovery must reproduce the fault-free log-likelihood exactly.
// ---------------------------------------------------------------------------

mod fault_matrix {
    use plf_repro::phylo::kernels::{PlfBackend, ScalarBackend};
    use plf_repro::phylo::likelihood::{LikelihoodError, TreeLikelihood};
    use plf_repro::phylo::resilience::{
        CorruptionKind, FaultInjector, FaultSite, PlfError, ResilientBackend, RetryPolicy,
    };
    use plf_repro::prelude::*;
    use plf_repro::seqgen::{self, Dataset};
    use std::sync::Arc;
    use std::time::Duration;

    fn dataset() -> Dataset {
        seqgen::generate(DatasetSpec::new(10, 80), 4242)
    }

    fn fast_policy() -> RetryPolicy {
        RetryPolicy {
            base_backoff: Duration::ZERO,
            max_backoff: Duration::ZERO,
            ..RetryPolicy::default()
        }
    }

    fn fault_free_scalar_lnl(ds: &Dataset) -> f64 {
        let mut eval =
            TreeLikelihood::new(&ds.tree, &ds.data, seqgen::default_model()).unwrap();
        eval.log_likelihood(&ds.tree, &mut ScalarBackend).unwrap()
    }

    /// Evaluate under the resilient wrapper (scalar fallback) and assert
    /// full recovery: the fault actually fired, the wrapper observed it,
    /// and the result is bitwise equal to the fault-free scalar run.
    fn assert_recovers(
        primary: Box<dyn PlfBackend>,
        injector: &Arc<FaultInjector>,
        policy: RetryPolicy,
        label: &str,
    ) {
        let ds = dataset();
        let expect = fault_free_scalar_lnl(&ds);
        let mut rb = ResilientBackend::new(primary)
            .with_fallback(Box::new(ScalarBackend))
            .with_policy(policy);
        let mut eval =
            TreeLikelihood::new(&ds.tree, &ds.data, seqgen::default_model()).unwrap();
        let lnl = eval
            .log_likelihood(&ds.tree, &mut rb)
            .unwrap_or_else(|e| panic!("{label}: resilient evaluation failed: {e}"));
        assert!(injector.fired() > 0, "{label}: no fault fired — test is vacuous");
        assert!(rb.report().any_faults(), "{label}: wrapper observed no fault");
        assert_eq!(lnl, expect, "{label}: lnL differs from fault-free scalar run");
    }

    fn rayon(inj: &Arc<FaultInjector>) -> Box<dyn PlfBackend> {
        Box::new(
            plf_repro::multicore::RayonBackend::new(3)
                .unwrap()
                .with_fault_injector(Arc::clone(inj)),
        )
    }

    fn cell(inj: &Arc<FaultInjector>) -> Box<dyn PlfBackend> {
        Box::new(plf_repro::cellbe::CellBackend::qs20().with_fault_injector(Arc::clone(inj)))
    }

    fn gpu(inj: &Arc<FaultInjector>) -> Box<dyn PlfBackend> {
        Box::new(plf_repro::gpu::GpuBackend::gtx285().with_fault_injector(Arc::clone(inj)))
    }

    // -- multi-core ---------------------------------------------------------

    #[test]
    fn rayon_survives_worker_panic() {
        let inj = Arc::new(FaultInjector::new(1).schedule(FaultSite::Worker, 0));
        assert_recovers(rayon(&inj), &inj, fast_policy(), "rayon/panic");
    }

    #[test]
    fn rayon_survives_nan_corruption() {
        let inj = Arc::new(FaultInjector::new(2).schedule_corruption(0, CorruptionKind::Nan));
        assert_recovers(rayon(&inj), &inj, fast_policy(), "rayon/nan");
    }

    #[test]
    fn rayon_survives_inf_corruption() {
        let inj = Arc::new(FaultInjector::new(3).schedule_corruption(1, CorruptionKind::Inf));
        assert_recovers(rayon(&inj), &inj, fast_policy(), "rayon/inf");
    }

    #[test]
    fn rayon_persistent_panics_degrade_to_scalar() {
        let inj = Arc::new(FaultInjector::new(4).with_rate(FaultSite::Worker, 1.0));
        let ds = dataset();
        let expect = fault_free_scalar_lnl(&ds);
        let mut rb = ResilientBackend::new(rayon(&inj))
            .with_fallback(Box::new(ScalarBackend))
            .with_policy(fast_policy());
        let mut eval =
            TreeLikelihood::new(&ds.tree, &ds.data, seqgen::default_model()).unwrap();
        let lnl = eval.log_likelihood(&ds.tree, &mut rb).unwrap();
        assert_eq!(lnl, expect);
        assert!(rb.report().degradations >= 1, "expected a tier switch");
        assert_eq!(rb.active_tier(), "scalar");
    }

    // -- Cell/BE ------------------------------------------------------------

    #[test]
    fn cell_survives_dma_failure() {
        let inj = Arc::new(FaultInjector::new(5).schedule(FaultSite::DmaTransfer, 2));
        assert_recovers(cell(&inj), &inj, fast_policy(), "cell/dma");
    }

    #[test]
    fn cell_survives_nan_corruption() {
        let inj = Arc::new(FaultInjector::new(6).schedule_corruption(0, CorruptionKind::Nan));
        assert_recovers(cell(&inj), &inj, fast_policy(), "cell/nan");
    }

    // -- GPU ----------------------------------------------------------------

    #[test]
    fn gpu_survives_pcie_failure() {
        let inj = Arc::new(FaultInjector::new(7).schedule(FaultSite::PcieTransfer, 1));
        assert_recovers(gpu(&inj), &inj, fast_policy(), "gpu/pcie");
    }

    #[test]
    fn gpu_survives_launch_failure() {
        let inj = Arc::new(FaultInjector::new(8).schedule(FaultSite::KernelLaunch, 0));
        assert_recovers(gpu(&inj), &inj, fast_policy(), "gpu/launch");
    }

    #[test]
    fn gpu_survives_inf_corruption() {
        let inj = Arc::new(FaultInjector::new(9).schedule_corruption(2, CorruptionKind::Inf));
        assert_recovers(gpu(&inj), &inj, fast_policy(), "gpu/inf");
    }

    // -- policy corners ------------------------------------------------------

    #[test]
    fn denormal_corruption_needs_strict_validation() {
        // Denormal corruption is the silent-precision-loss class: the
        // default policy lets it through; `reject_subnormals` catches it.
        let inj =
            Arc::new(FaultInjector::new(10).schedule_corruption(0, CorruptionKind::Denormal));
        let strict = RetryPolicy {
            reject_subnormals: true,
            ..fast_policy()
        };
        assert_recovers(gpu(&inj), &inj, strict, "gpu/denormal-strict");
    }

    #[test]
    fn exhaustion_without_fallback_surfaces_as_error() {
        let inj = Arc::new(FaultInjector::new(11).with_rate(FaultSite::Worker, 1.0));
        let ds = dataset();
        // Single tier, always failing, no fallback: the wrapper must give
        // up with `Exhausted` rather than loop or panic.
        let mut rb = ResilientBackend::new(rayon(&inj)).with_policy(fast_policy());
        let mut eval =
            TreeLikelihood::new(&ds.tree, &ds.data, seqgen::default_model()).unwrap();
        let err = eval.log_likelihood(&ds.tree, &mut rb).unwrap_err();
        assert!(
            matches!(
                err,
                LikelihoodError::Backend(PlfError::Exhausted { .. })
            ),
            "got {err:?}"
        );
    }

    // -- whole-application storm ---------------------------------------------

    #[test]
    fn mcmc_chain_survives_fault_storm_bitwise() {
        // A full MCMC run with random worker panics, corruption, and
        // transfer faults raining on the primary tier: the resilient
        // wrapper must keep the chain alive AND on the exact trajectory of
        // a fault-free scalar run (retry/fallback preserve bitwise
        // results for canonical-order kernels).
        use plf_repro::mcmc::{Chain, ChainOptions, Priors};
        let ds = seqgen::generate(DatasetSpec::new(8, 60), 77);
        let options = ChainOptions {
            generations: 120,
            seed: 13,
            sample_every: 20,
            ..ChainOptions::default()
        };
        let run = |backend: &mut dyn PlfBackend| {
            let mut chain = Chain::new(
                ds.tree.clone(),
                &ds.data,
                GtrParams::jc69(),
                0.5,
                Priors::default(),
                options.clone(),
            )
            .unwrap();
            chain.run(backend).unwrap()
        };
        let reference = run(&mut ScalarBackend);

        let inj = Arc::new(
            FaultInjector::new(12)
                .with_rate(FaultSite::Worker, 0.01)
                .with_rate(FaultSite::KernelOutput, 0.01),
        );
        let mut rb = ResilientBackend::new(rayon(&inj))
            .with_fallback(Box::new(ScalarBackend))
            .with_policy(fast_policy());
        let stormy = run(&mut rb);
        assert!(inj.fired() > 0, "storm too quiet — raise the rates");
        assert_eq!(
            stormy.final_ln_likelihood, reference.final_ln_likelihood,
            "trajectory diverged under faults"
        );
        assert_eq!(stormy.samples, reference.samples);
    }
}

//! Statistical end-to-end validation: simulate data under known truth,
//! infer with the MCMC machinery, and check the truth is recovered.
//! This exercises the entire stack — Seq-Gen substitute, PLF kernels,
//! incremental updates, proposals, consensus summarization — as one
//! system, the way a biologist would use it.

use plf_repro::mcmc::consensus::{majority_consensus, robinson_foulds};
use plf_repro::mcmc::{Chain, ChainOptions, Priors};
use plf_repro::phylo::kernels::ScalarBackend;
use plf_repro::phylo::tree::Tree;
use plf_repro::prelude::*;
use plf_repro::seqgen;

#[test]
fn topology_recovery_from_strong_signal() {
    // Plenty of data on a 8-taxon tree: the true topology should
    // dominate the posterior sample.
    let ds = seqgen::generate(DatasetSpec::new(8, 400), 99);
    let mut chain = Chain::new(
        ds.tree.clone(),
        &ds.data,
        seqgen::default_model().params().clone(),
        0.5,
        Priors::default(),
        ChainOptions {
            generations: 1_500,
            seed: 7,
            sample_every: 50,
            record_trace: true,
            incremental: true,
            ..ChainOptions::default()
        },
    )
    .unwrap();
    let stats = chain.run(&mut ScalarBackend);

    // Post-burn-in consensus.
    let trees: Vec<Tree> = stats
        .trace
        .iter()
        .skip(stats.trace.len() / 3)
        .map(|r| Tree::from_newick(&r.newick).unwrap())
        .collect();
    assert!(trees.len() >= 10);
    let consensus = majority_consensus(&trees, 0.5);

    // Strip support labels so the consensus parses as a plain tree; a
    // fully resolved 8-taxon unrooted tree has 5 non-trivial splits.
    assert!(
        !consensus.splits.is_empty(),
        "consensus collapsed to a star — no signal recovered"
    );
    // The sampled trees should be close to the generating topology.
    let mean_rf: f64 = trees
        .iter()
        .map(|t| robinson_foulds(t, &ds.tree) as f64)
        .sum::<f64>()
        / trees.len() as f64;
    // Max RF for 8 taxa is 2*(8-3) = 10.
    assert!(
        mean_rf < 5.0,
        "posterior wanders far from the truth: mean RF {mean_rf}"
    );
}

#[test]
fn branch_length_scale_recovery() {
    // Tree length posterior mean should land near the generating tree's
    // length (exponential prior pulls down slightly; allow slack).
    let ds = seqgen::generate(DatasetSpec::new(6, 500), 4);
    let truth = ds.tree.tree_length();
    let mut chain = Chain::new(
        ds.tree.clone(),
        &ds.data,
        seqgen::default_model().params().clone(),
        0.5,
        Priors::default(),
        ChainOptions {
            generations: 1_200,
            seed: 13,
            sample_every: 40,
            incremental: true,
            ..ChainOptions::default()
        },
    )
    .unwrap();
    let stats = chain.run(&mut ScalarBackend);
    let skip = stats.samples.len() / 3;
    let kept = &stats.samples[skip..];
    let mean_tl: f64 = kept.iter().map(|s| s.tree_length).sum::<f64>() / kept.len() as f64;
    assert!(
        (mean_tl - truth).abs() < truth * 0.5,
        "tree length {mean_tl:.3} vs truth {truth:.3}"
    );
}

#[test]
fn frequency_recovery_with_model_moves() {
    // Generating frequencies are skewed; the chain starts at JC (equal)
    // and must move towards the truth.
    let ds = seqgen::generate(DatasetSpec::new(6, 600), 21);
    let true_freqs = seqgen::default_model().freqs();
    let mut chain = Chain::new(
        ds.tree.clone(),
        &ds.data,
        GtrParams::jc69(),
        0.5,
        Priors::default(),
        ChainOptions {
            generations: 1_500,
            seed: 3,
            sample_every: 0,
            incremental: true,
            ..ChainOptions::default()
        },
    )
    .unwrap();
    chain.run(&mut ScalarBackend);
    let est = chain.state().params.freqs;
    for s in 0..4 {
        assert!(
            (est[s] - true_freqs[s]).abs() < 0.08,
            "freq {s}: estimated {:.3} vs true {:.3}",
            est[s],
            true_freqs[s]
        );
    }
}

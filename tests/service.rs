//! End-to-end soak of the plfd batched evaluation service: many
//! concurrent jobs from mixed tenants, random cancellations, and an
//! injected `PLF_FAULT_*`-style fault, with every completed result
//! checked bit-for-bit against the serial scalar reference. This is
//! the "no silent drops" contract: every admitted job resolves to
//! exactly one terminal outcome.

use plf_repro::multicore::RayonBackend;
use plf_repro::phylo::kernels::{PlfBackend, ScalarBackend};
use plf_repro::phylo::likelihood::TreeLikelihood;
use plf_repro::phylo::resilience::FaultInjector;
use plf_repro::phylo::tree::Tree;
use plf_repro::plfd::{JobOutcome, JobSpec, JobTicket, PlfService, Priority, ServiceConfig, SubmitError};
use plf_repro::seqgen::{self, DatasetSpec};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;
use std::time::Duration;

const SOAK_JOBS: usize = 80;
const TENANTS: [&str; 3] = ["alpha", "beta", "gamma"];

/// Submit with the backpressure contract: sleep out `retry_after` on
/// `QueueFull` (hard cap) and `Overloaded` (adaptive shedding) instead
/// of giving up.
fn submit_with_retry(service: &PlfService, spec: JobSpec) -> JobTicket {
    let mut spec = spec;
    loop {
        match service.submit(spec.clone()) {
            Ok(ticket) => return ticket,
            Err(
                SubmitError::QueueFull { retry_after, .. }
                | SubmitError::Overloaded { retry_after, .. },
            ) => {
                std::thread::sleep(retry_after.min(Duration::from_millis(5)));
            }
            Err(other) => panic!("unexpected submit error: {other}"),
        }
        // `spec` is moved back in via the clone above each round.
        spec = spec.clone();
    }
}

#[test]
fn soak_mixed_tenants_cancellations_and_injected_fault() {
    let ds = seqgen::generate(DatasetSpec::new(8, 96), 21);
    let model = seqgen::default_model();
    let taxa: Vec<String> = ds.data.taxa().to_vec();

    // The fault harness, armed exactly the way `PLF_FAULT_*` variables
    // would arm it from the CLI — simulated lookup so the process
    // environment stays untouched and parallel tests stay safe.
    let injector = Arc::new(
        FaultInjector::from_env_with(|name| match name {
            "PLF_FAULT_SEED" => Some("3".into()),
            "PLF_FAULT_CORRUPT_RATE" => Some("0.05".into()),
            _ => None,
        })
        .expect("valid fault knobs")
        .expect("knobs set"),
    );

    // Three resilient rayon workers; one carries the injector, so a
    // slice of the fused batches keeps hitting corrupted CLVs and must
    // recover (validate → retry → degrade) without poisoning
    // batchmates or losing bit-identity.
    let faulty = RayonBackend::new(2)
        .expect("rayon pool")
        .with_fault_injector(Arc::clone(&injector));
    let backends: Vec<Box<dyn PlfBackend>> = vec![
        Box::new(faulty),
        Box::new(RayonBackend::new(2).expect("rayon pool")),
        Box::new(RayonBackend::new(2).expect("rayon pool")),
    ];
    let service = PlfService::resilient(ServiceConfig::default(), backends);
    let dataset = service.register_dataset(ds.data.clone());

    // Seeded job stream: per-job random tree, round-robin tenants,
    // every 7th job high-priority, ~15% cancelled right after submit.
    let mut rng = StdRng::seed_from_u64(2026);
    let mut tickets: Vec<(usize, Tree, JobTicket)> = Vec::with_capacity(SOAK_JOBS);
    let mut cancelled_ids = Vec::new();
    for i in 0..SOAK_JOBS {
        let tree = seqgen::random_tree_for_taxa(&taxa, 0.1, &mut rng);
        let cancel = rng.gen_range(0.0..1.0) < 0.15;
        let mut spec = JobSpec::new(TENANTS[i % TENANTS.len()], dataset, tree.clone(), model.clone());
        if i % 7 == 0 {
            spec = spec.with_priority(Priority::High);
        }
        let ticket = submit_with_retry(&service, spec);
        if cancel {
            ticket.cancel();
            cancelled_ids.push(i);
        }
        tickets.push((i, tree, ticket));
    }
    assert!(
        cancelled_ids.len() >= 5,
        "seed must exercise cancellation, got {cancelled_ids:?}"
    );

    // Every job resolves — no silent drops — and every completed
    // log-likelihood is bit-identical to a fresh serial scalar
    // evaluation of the same tree.
    let mut completed = 0usize;
    let mut cancelled = 0usize;
    for (i, tree, ticket) in tickets {
        let outcome = ticket.wait();
        match outcome {
            JobOutcome::Completed { ln_likelihood, .. } => {
                completed += 1;
                let mut serial = TreeLikelihood::new(&tree, &ds.data, model.clone())
                    .expect("serial workspace");
                let expected = serial
                    .log_likelihood(&tree, &mut ScalarBackend)
                    .expect("serial eval");
                assert_eq!(
                    ln_likelihood.to_bits(),
                    expected.to_bits(),
                    "job {i}: service result must be bit-identical to serial scalar"
                );
            }
            JobOutcome::Cancelled => {
                cancelled += 1;
                assert!(cancelled_ids.contains(&i), "job {i} cancelled but never asked to be");
            }
            other => panic!("job {i}: unexpected outcome {other:?}"),
        }
    }
    // A cancel that loses the race completes instead — both are valid,
    // but the ledger must balance exactly.
    assert_eq!(completed + cancelled, SOAK_JOBS);
    assert!(completed >= SOAK_JOBS - cancelled_ids.len());

    // The injected fault actually fired, and the resilience layer ate
    // it: no job failed.
    assert!(injector.fired() >= 1, "fault injector never fired");

    let snap = service.snapshot();
    assert_eq!(snap.submitted, SOAK_JOBS as u64);
    assert_eq!(snap.completed, completed as u64);
    assert_eq!(snap.cancelled, cancelled as u64);
    assert_eq!(snap.failed, 0);
    assert_eq!(snap.resolved(), SOAK_JOBS as u64, "every admitted job resolves");
    assert_eq!(service.queue_depth(), 0);
    let by_tenant: u64 = snap.tenants.iter().map(|t| t.submitted).sum();
    assert_eq!(by_tenant, SOAK_JOBS as u64, "per-tenant ledger covers every job");
    assert_eq!(snap.tenants.len(), TENANTS.len());
    service.shutdown();
}

#[test]
fn admission_control_rejects_job_k_plus_one_with_retry_after() {
    let ds = seqgen::generate(DatasetSpec::new(6, 32), 13);
    let model = seqgen::default_model();
    let capacity = 8;
    let config = ServiceConfig {
        queue_capacity: capacity,
        hold: true, // keep the scheduler gated so the queue stays full
        ..ServiceConfig::default()
    };
    let service = PlfService::new(
        config,
        vec![Box::new(ScalarBackend) as Box<dyn PlfBackend>],
    );
    let dataset = service.register_dataset(ds.data.clone());

    let tickets: Vec<JobTicket> = (0..capacity)
        .map(|_| {
            service
                .submit(JobSpec::new("t", dataset, ds.tree.clone(), model.clone()))
                .expect("within capacity")
        })
        .collect();
    // Job K+1 must bounce with a positive retry-after hint, not queue.
    let err = service
        .submit(JobSpec::new("t", dataset, ds.tree.clone(), model.clone()))
        .expect_err("job K+1 over capacity");
    let SubmitError::QueueFull { retry_after, jobs_ahead } = err else {
        panic!("expected QueueFull, got {err}");
    };
    assert!(retry_after > Duration::ZERO);
    assert_eq!(jobs_ahead, capacity, "hint counts the whole normal-lane backlog");

    let snap = service.snapshot();
    assert_eq!(snap.rejected, 1);
    assert_eq!(snap.queue_depth, capacity as u64);
    assert_eq!(snap.queue_depth_peak, capacity as u64);

    service.release();
    for t in tickets {
        assert!(t.wait().is_completed());
    }
    assert_eq!(service.snapshot().completed, capacity as u64);
    service.shutdown();
}

//! Network soak and crash drill for the plf-net socket front end.
//!
//! Two end-to-end contracts:
//!
//! * **Soak** — a library-level `NetServer` whose workers run under
//!   kernel-output fault injection (absorbed by the resilient
//!   executor) is flooded by the network load generator with
//!   connection churn; no acknowledged job may be lost.
//! * **Crash drill** — the real `plfr serve --listen` binary with a
//!   write-ahead journal is `kill -9`ed mid-load; a restarted server
//!   on the same journal answers every idempotency-keyed resubmission
//!   with a bit-identical result and without re-executing resolved
//!   work.

use plf_repro::multicore::RayonBackend;
use plf_repro::net::loadgen::{self, NetLoadConfig};
use plf_repro::net::{
    NetClient, NetServer, NetServerConfig, Response, ShutdownFlag, SubmitParams,
};
use plf_repro::phylo::io;
use plf_repro::phylo::kernels::{PlfBackend, ScalarBackend};
use plf_repro::phylo::likelihood::TreeLikelihood;
use plf_repro::phylo::metrics::NetCounters;
use plf_repro::phylo::model::{GtrParams, SiteModel};
use plf_repro::phylo::resilience::{FaultInjector, FaultSite, ResilientBackend};
use plf_repro::phylo::tree::Tree;
use plf_repro::plfd::{PlfService, ServiceConfig};
use plf_repro::seqgen::{self, DatasetSpec};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("plf-net-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir
}

#[test]
fn soak_churn_under_fault_injection_loses_no_acknowledged_job() {
    let ds = seqgen::generate(DatasetSpec::new(6, 48), 211);
    let model = seqgen::default_model();
    // Workers inject kernel-output corruption at a visible rate; the
    // resilient executor retries / falls back to scalar, so faults
    // surface as latency, never as lost or wrong acknowledgements.
    let workers: Vec<Box<dyn PlfBackend>> = (0..2)
        .map(|w| {
            let injector = Arc::new(
                FaultInjector::new(2009 + w).with_rate(FaultSite::KernelOutput, 0.05),
            );
            let pool = RayonBackend::new(1).expect("rayon pool");
            Box::new(
                ResilientBackend::new(Box::new(pool.with_fault_injector(injector)))
                    .with_fallback(Box::new(ScalarBackend)),
            ) as Box<dyn PlfBackend>
        })
        .collect();
    let service = PlfService::new(ServiceConfig::default(), workers);
    let dataset = service.register_dataset(ds.data);
    let shutdown = ShutdownFlag::local();
    let counters = NetCounters::new();
    let server = NetServer::bind(
        "127.0.0.1:0",
        service,
        dataset,
        model,
        NetServerConfig::default(),
        shutdown.clone(),
        Arc::clone(&counters),
    )
    .expect("bind");
    let addr = server.local_addr();
    let handle = std::thread::spawn(move || server.run());

    let cfg = NetLoadConfig {
        connections: 12,
        jobs: 96,
        tenants: 4,
        pipeline: 2,
        churn_every: 4,
        seed: 31,
        deadline: Duration::from_secs(120),
        ..NetLoadConfig::default()
    };
    let report = loadgen::run(addr, &cfg).expect("loadgen");
    shutdown.request();
    let (service, net_report) = handle.join().expect("server thread").expect("server run");

    assert_eq!(report.lost_acks, 0, "{report:?}");
    assert_eq!(report.completed, 96, "{report:?}");
    assert_eq!(report.failed, 0, "faults must be absorbed, not surfaced: {report:?}");
    assert!(report.reconnects > 0, "churn must actually reconnect: {report:?}");
    assert_eq!(net_report.unresolved, 0);
    assert_eq!(counters.snapshot().connections_active, 0);
    service.shutdown();
}

struct ServerProc {
    child: Child,
    stderr_path: PathBuf,
    addr: String,
}

fn spawn_server(aln: &Path, journal: &Path, dir: &Path, tag: &str) -> ServerProc {
    let port_file = dir.join(format!("port-{tag}.txt"));
    let stderr_path = dir.join(format!("server-{tag}.log"));
    let stderr = std::fs::File::create(&stderr_path).expect("stderr log");
    let child = Command::new(env!("CARGO_BIN_EXE_plfr"))
        .args([
            "serve",
            "--alignment",
            aln.to_str().expect("utf8 path"),
            "--backend",
            "scalar",
            "--workers",
            "2",
            "--listen",
            "127.0.0.1:0",
            "--port-file",
            port_file.to_str().expect("utf8 path"),
            "--journal-dir",
            journal.to_str().expect("utf8 path"),
            "--fsync-ms",
            "0",
        ])
        .stdin(Stdio::null())
        .stdout(Stdio::null())
        .stderr(stderr)
        .spawn()
        .expect("spawn plfr serve");
    // The port file appears once the listener is bound.
    let deadline = Instant::now() + Duration::from_secs(30);
    let port = loop {
        if let Ok(text) = std::fs::read_to_string(&port_file) {
            let trimmed = text.trim();
            if !trimmed.is_empty() {
                break trimmed.to_string();
            }
        }
        assert!(Instant::now() < deadline, "server never wrote {port_file:?}");
        std::thread::sleep(Duration::from_millis(20));
    };
    ServerProc {
        child,
        stderr_path,
        addr: format!("127.0.0.1:{port}"),
    }
}

/// The model `plfr serve` builds by default (`--shape 0.5 --rates 4`).
fn serve_default_model() -> SiteModel {
    SiteModel::new(GtrParams::jc69(), 0.5, 4)
        .and_then(|m| m.with_pinvar(0.0))
        .expect("default serve model")
}

#[test]
fn kill_nine_mid_load_recovers_journal_with_no_duplicate_execution() {
    let dir = temp_dir("drill");
    let journal = dir.join("journal");
    let aln_path = dir.join("aln.fasta");
    // Big enough that a job takes observable time on the scalar
    // backend, so the SIGKILL window can contain unresolved work.
    let ds = seqgen::generate(DatasetSpec::new(10, 2_000), 401);
    std::fs::write(&aln_path, io::write_fasta(&ds.data.decompress())).expect("write fasta");
    const JOBS: u64 = 16;
    let key = |i: u64| format!("drill-{i}");

    // Reference results computed exactly the way the server will: the
    // alignment re-read from the file it loads.
    let file_data = io::parse_fasta(&std::fs::read_to_string(&aln_path).expect("read fasta"))
        .expect("parse fasta")
        .compress();
    let model = serve_default_model();

    // Run 1: submit every keyed job, then SIGKILL the server after the
    // first acknowledgement lands — some jobs are acknowledged and
    // journaled but unresolved.
    let run1 = spawn_server(&aln_path, &journal, &dir, "run1");
    let taxa;
    {
        let mut client = NetClient::connect(run1.addr.as_str()).expect("connect run1");
        taxa = client.greeting().taxa.clone();
        let mut ids = Vec::new();
        for i in 0..JOBS {
            let params = SubmitParams {
                tenant: "drill".into(),
                high_priority: false,
                deadline: None,
                idempotency_key: Some(key(i)),
                newick: loadgen::ladder_newick(&taxa, 500 + i),
            };
            ids.push(client.submit(&params).expect("submit"));
        }
        // Wait for one completion so at least one outcome (and every
        // admission) is journaled, then pull the plug.
        let first = ids.first().copied().expect("submitted");
        let response = client.wait_for(first).expect("first ack");
        assert!(matches!(response, Response::Completed { .. }), "{response:?}");
    }
    let mut child1 = run1.child;
    child1.kill().expect("SIGKILL");
    let _ = child1.wait();

    // Run 2: restart on the same journal; resubmit every key and
    // require a bit-identical Completed for each.
    let run2 = spawn_server(&aln_path, &journal, &dir, "run2");
    {
        let mut client = NetClient::connect(run2.addr.as_str()).expect("connect run2");
        for i in 0..JOBS {
            let newick = loadgen::ladder_newick(&taxa, 500 + i);
            let params = SubmitParams {
                tenant: "drill".into(),
                high_priority: false,
                deadline: None,
                idempotency_key: Some(key(i)),
                newick: newick.clone(),
            };
            let id = client.submit(&params).expect("resubmit");
            let response = client.wait_for(id).expect("response");
            let Response::Completed { ln_likelihood, .. } = response else {
                panic!("job {i} after recovery: {response:?}");
            };
            let tree = Tree::from_newick(&newick).expect("newick");
            let mut eval =
                TreeLikelihood::new(&tree, &file_data, model.clone()).expect("workspace");
            let direct = eval
                .log_likelihood(&tree, &mut ScalarBackend)
                .expect("direct eval");
            assert_eq!(
                direct.to_bits(),
                ln_likelihood.to_bits(),
                "job {i} bit-identical across the crash"
            );
        }
    }

    // Graceful stop; the drain summary JSON lands on stderr.
    let pid = run2.child.id().to_string();
    let mut child2 = run2.child;
    Command::new("kill")
        .args(["-TERM", &pid])
        .status()
        .expect("send SIGTERM");
    let status = child2.wait().expect("server exit");
    assert!(status.success(), "graceful drain must exit 0: {status:?}");

    let stderr = std::fs::read_to_string(&run2.stderr_path).expect("run2 stderr");
    assert!(
        stderr.contains("journal recovery"),
        "restart must report recovery: {stderr}"
    );
    // No duplicate execution: run 2 executes at most one job per key —
    // everything else is a replay already in flight or a journaled
    // outcome served from the index, both counted as dedups.
    let summary_start = stderr.find("{\n").expect("summary JSON on stderr");
    let summary: serde_json::Value =
        serde_json::from_str(stderr.get(summary_start..).expect("summary slice"))
            .expect("summary parses");
    let service = summary
        .as_object()
        .and_then(|o| o.iter().find(|(k, _)| k == "service"))
        .map(|(_, v)| v)
        .expect("service section");
    let field = |name: &str| -> u64 {
        service
            .as_object()
            .and_then(|o| o.iter().find(|(k, _)| k == name))
            .and_then(|(_, v)| v.as_u64())
            .unwrap_or_else(|| panic!("numeric `{name}` in {service:?}"))
    };
    let executed = field("submitted");
    let deduped = field("deduped_jobs");
    let replayed = field("replayed_jobs");
    assert!(
        executed <= JOBS,
        "run 2 executed {executed} jobs for {JOBS} keys — duplicates"
    );
    assert_eq!(
        executed + deduped,
        JOBS + replayed,
        "every resubmission either deduped or became the single execution \
         (executed {executed}, deduped {deduped}, replayed {replayed})"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

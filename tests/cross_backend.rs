//! Cross-backend agreement: every execution engine — host scalar, host
//! SIMD, rayon multicore, simulated Cell/BE, simulated GPU — must
//! compute the same Phylogenetic Likelihood Function.
//!
//! Canonical-order backends (scalar, colwise SIMD, rayon, Cell colwise,
//! GPU entry-parallel) must agree *bitwise*; the row-wise/reduction
//! variants only reorder float additions and must agree to tolerance.

use plf_repro::prelude::*;
use plf_repro::{evaluate_on_all_backends, seqgen};
use proptest::prelude::*;

fn check_agreement(taxa: usize, patterns: usize, seed: u64, shape: f64) {
    let ds = seqgen::generate(DatasetSpec::new(taxa, patterns), seed);
    let model = SiteModel::gtr_gamma4(
        GtrParams::gtr([1.2, 3.9, 0.9, 1.1, 4.5, 1.0], [0.3, 0.21, 0.24, 0.25]),
        shape,
    )
    .unwrap();
    let results = evaluate_on_all_backends(&ds.tree, &ds.data, &model).unwrap();
    let reference = results[0].1;
    assert!(reference.is_finite() && reference < 0.0);
    for (name, lnl) in &results {
        if name.contains("rowwise") || name.contains("reduction") {
            let tol = reference.abs() * 1e-6 + 1e-3;
            assert!((lnl - reference).abs() < tol, "{name}: {lnl} vs {reference}");
        } else {
            assert_eq!(*lnl, reference, "{name} must be bitwise identical");
        }
    }
}

#[test]
fn agreement_small() {
    check_agreement(6, 50, 1, 0.5);
}

#[test]
fn agreement_medium() {
    check_agreement(16, 300, 2, 0.8);
}

#[test]
fn agreement_many_taxa() {
    check_agreement(40, 120, 3, 0.3);
}

#[test]
fn agreement_after_mcmc_moves() {
    // Run a short chain on each backend; fixed seeds must give the
    // exact same trajectory wherever the canonical kernels run.
    use plf_repro::mcmc::{Chain, ChainOptions, Priors};
    let ds = seqgen::generate(DatasetSpec::new(8, 80), 5);
    let run = |backend: &mut dyn plf_repro::phylo::kernels::PlfBackend| {
        let mut chain = Chain::new(
            ds.tree.clone(),
            &ds.data,
            GtrParams::jc69(),
            0.6,
            Priors::default(),
            ChainOptions {
                generations: 120,
                seed: 99,
                sample_every: 0,
                ..ChainOptions::default()
            },
        )
        .unwrap();
        chain.run(backend).unwrap().final_ln_likelihood
    };
    let mut scalar = plf_repro::phylo::kernels::ScalarBackend;
    let expect = run(&mut scalar);
    let mut cell = plf_repro::cellbe::CellBackend::ps3();
    assert_eq!(run(&mut cell), expect, "cell trajectory diverged");
    let mut gpu = plf_repro::gpu::GpuBackend::gtx285();
    assert_eq!(run(&mut gpu), expect, "gpu trajectory diverged");
    let mut rayon = plf_repro::multicore::RayonBackend::new(3).unwrap();
    assert_eq!(run(&mut rayon), expect, "rayon trajectory diverged");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn prop_backends_agree_on_random_inputs(
        taxa in 4usize..12,
        patterns in 10usize..120,
        seed in 0u64..1000,
        shape in 0.2f64..5.0,
    ) {
        check_agreement(taxa, patterns, seed, shape);
    }

    #[test]
    fn prop_likelihood_improves_with_true_tree_signal(
        seed in 0u64..200,
    ) {
        // The generating tree should score at least as well as a tree
        // with all branch lengths stretched 20x (data carry signal).
        let ds = seqgen::generate(DatasetSpec::new(6, 150), seed);
        let model = seqgen::default_model();
        let mut scalar = plf_repro::phylo::kernels::ScalarBackend;
        let mut eval = TreeLikelihood::new(&ds.tree, &ds.data, model.clone()).unwrap();
        let lnl_true = eval.log_likelihood(&ds.tree, &mut scalar).unwrap();
        let mut stretched = ds.tree.clone();
        for id in stretched.branches() {
            stretched.node_mut(id).branch *= 20.0;
        }
        let mut eval2 = TreeLikelihood::new(&stretched, &ds.data, model).unwrap();
        let lnl_stretched = eval2.log_likelihood(&stretched, &mut scalar).unwrap();
        prop_assert!(lnl_true > lnl_stretched,
            "true {lnl_true} vs stretched {lnl_stretched}");
    }
}

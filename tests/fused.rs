//! Cross-job fusion agreement: on every execution engine, evaluating a
//! batch of jobs through the fused driver (`evaluate_fused`) must be
//! *bitwise identical* to evaluating each job on its own through
//! `TreeLikelihood::log_likelihood` on the same backend. Fusion only
//! concatenates independent jobs' pattern spaces into shared kernel
//! invocations — it must never change what any single job computes,
//! on canonical-order and reordered-summation backends alike.

use plf_repro::phylo::fused::{evaluate_fused, FusedJob};
use plf_repro::prelude::*;
use plf_repro::{all_backends, seqgen};

/// A small family of related jobs: same dataset, same model, distinct
/// trees (each variant perturbs one branch), mimicking the proposals a
/// batched MCMC client submits.
fn job_family(n: usize) -> (Dataset, SiteModel, Vec<Tree>) {
    let ds = seqgen::generate(DatasetSpec::new(7, 48), 42);
    let model = SiteModel::gtr_gamma4(
        GtrParams::gtr([1.2, 3.9, 0.9, 1.1, 4.5, 1.0], [0.3, 0.21, 0.24, 0.25]),
        0.7,
    )
    .unwrap();
    let trees: Vec<Tree> = (0..n)
        .map(|i| {
            let mut tree = ds.tree.clone();
            let branches = tree.branches();
            let id = branches[i % branches.len()];
            tree.node_mut(id).branch *= 1.0 + 0.07 * (i as f64 + 1.0);
            tree
        })
        .collect();
    (ds, model, trees)
}

#[test]
fn fused_matches_per_job_bitwise_on_every_backend() {
    let (ds, model, trees) = job_family(5);
    for mut backend in all_backends().unwrap() {
        // Unfused reference: each job evaluated on its own.
        let per_job: Vec<f64> = trees
            .iter()
            .map(|tree| {
                let mut eval = TreeLikelihood::new(tree, &ds.data, model.clone()).unwrap();
                eval.log_likelihood(tree, backend.as_mut()).unwrap()
            })
            .collect();
        // Fused: all jobs advance through shared kernel invocations.
        let mut evals: Vec<TreeLikelihood> = trees
            .iter()
            .map(|tree| TreeLikelihood::new(tree, &ds.data, model.clone()).unwrap())
            .collect();
        let mut jobs: Vec<FusedJob<'_>> = evals
            .iter_mut()
            .zip(&trees)
            .map(|(eval, tree)| FusedJob {
                eval,
                tree,
                dataset_token: 1,
            })
            .collect();
        let fused = evaluate_fused(&mut jobs, backend.as_mut(), None).unwrap();
        let name = backend.name();
        assert_eq!(fused.len(), per_job.len());
        for (i, (f, p)) in fused.iter().zip(&per_job).enumerate() {
            assert!(p.is_finite() && *p < 0.0, "{name} job {i}: {p}");
            assert_eq!(
                f.to_bits(),
                p.to_bits(),
                "{name} job {i}: fused {f} != per-job {p}"
            );
        }
    }
}

#[test]
fn fused_with_cache_matches_per_job_bitwise_on_every_backend() {
    // Second pass over identical jobs hits the CLV cache; served
    // entries must be bit-identical to recomputation on every engine.
    let (ds, model, trees) = job_family(4);
    for mut backend in all_backends().unwrap() {
        let name = backend.name();
        let per_job: Vec<f64> = trees
            .iter()
            .map(|tree| {
                let mut eval = TreeLikelihood::new(tree, &ds.data, model.clone()).unwrap();
                eval.log_likelihood(tree, backend.as_mut()).unwrap()
            })
            .collect();
        let mut cache = ClvCache::new(512);
        for pass in 0..2 {
            let mut evals: Vec<TreeLikelihood> = trees
                .iter()
                .map(|tree| TreeLikelihood::new(tree, &ds.data, model.clone()).unwrap())
                .collect();
            let mut jobs: Vec<FusedJob<'_>> = evals
                .iter_mut()
                .zip(&trees)
                .map(|(eval, tree)| FusedJob {
                    eval,
                    tree,
                    dataset_token: 1,
                })
                .collect();
            let fused = evaluate_fused(&mut jobs, backend.as_mut(), Some(&mut cache)).unwrap();
            for (i, (f, p)) in fused.iter().zip(&per_job).enumerate() {
                assert_eq!(
                    f.to_bits(),
                    p.to_bits(),
                    "{name} pass {pass} job {i}: {f} != {p}"
                );
            }
            let stats = cache.take_stats();
            if pass == 1 {
                assert!(stats.hits > 0, "{name}: warm pass never hit the cache");
            }
        }
    }
}

#[test]
fn fused_matches_per_job_bitwise_through_resilient_wrapper() {
    // The resilience wrapper must be parity-transparent: with a healthy
    // primary tier it forwards every kernel (fused and unfused) to that
    // tier, so fused evaluation through the wrapper must stay bitwise
    // identical to per-job evaluation on the bare backend.
    use plf_repro::phylo::kernels::{ScalarBackend, Simd4Backend};
    use plf_repro::phylo::resilience::ResilientBackend;

    let (ds, model, trees) = job_family(4);
    let mut bare = Simd4Backend::col_wise();
    let per_job: Vec<f64> = trees
        .iter()
        .map(|tree| {
            let mut eval = TreeLikelihood::new(tree, &ds.data, model.clone()).unwrap();
            eval.log_likelihood(tree, &mut bare).unwrap()
        })
        .collect();

    let mut wrapped = ResilientBackend::new(Box::new(Simd4Backend::col_wise()))
        .with_fallback(Box::new(ScalarBackend));
    let mut evals: Vec<TreeLikelihood> = trees
        .iter()
        .map(|tree| TreeLikelihood::new(tree, &ds.data, model.clone()).unwrap())
        .collect();
    let mut jobs: Vec<FusedJob<'_>> = evals
        .iter_mut()
        .zip(&trees)
        .map(|(eval, tree)| FusedJob {
            eval,
            tree,
            dataset_token: 1,
        })
        .collect();
    let fused = evaluate_fused(&mut jobs, &mut wrapped, None).unwrap();
    assert_eq!(fused.len(), per_job.len());
    for (i, (f, p)) in fused.iter().zip(&per_job).enumerate() {
        assert_eq!(
            f.to_bits(),
            p.to_bits(),
            "ResilientBackend job {i}: fused {f} != bare per-job {p}"
        );
    }
    assert!(
        !wrapped.report().any_faults(),
        "healthy run must not record faults"
    );
}

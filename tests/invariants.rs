//! Property-based tests of the core mathematical invariants.
//!
//! A note on tolerances: these bounds are intentionally strict —
//! tighter than textbook float-error analysis would demand — so that a
//! regression in kernel summation order, eigen decomposition, or CLV
//! rescaling shows up as a test failure rather than a silent drift.
//! `1e-9` bounds (Q-matrix rows, detailed balance, gamma means) check
//! quantities that are exact up to f64 rounding; `1e-7`/`1e-8` bounds
//! (transition matrices, Chapman–Kolmogorov) absorb eigendecomposition
//! round-trip error; the looser relative bounds on whole-tree
//! likelihoods absorb f32 CLV accumulation across thousands of sites.
//! If one of these fails after a kernel change, treat it as a real
//! numerical regression first and only then consider loosening.

use plf_repro::phylo::alignment::Alignment;
use plf_repro::phylo::dna::StateMask;
use plf_repro::phylo::kernels::ScalarBackend;
use plf_repro::phylo::model::{discrete_gamma_rates, EigenSystem, GtrParams, QMatrix};
use plf_repro::prelude::*;
use proptest::prelude::*;

/// Underflow stress: 160 taxa with long branches drive the per-pattern
/// root CLV towards `4^-160 ≈ 1e-96`, far below f32's smallest
/// subnormal (`~1.4e-45`). `CondLikeScaler` is load-bearing here: with
/// rescaling disabled the likelihood collapses to `-inf`, and with the
/// default per-node rescaling every backend must stay finite and the
/// canonical-order backends must agree with the scalar oracle bitwise.
#[test]
fn underflow_stress_scalers_are_load_bearing() {
    let ds = plf_repro::seqgen::generate(DatasetSpec::new(160, 40), 2009);
    let mut tree = ds.tree.clone();
    for id in tree.branches() {
        let b = &mut tree.node_mut(id).branch;
        *b = (*b * 20.0).clamp(1.5, 10.0);
    }
    let model = plf_repro::seqgen::default_model();

    // Scaling off (scale_every = 0): the root CLV underflows to zero
    // and the log-likelihood is non-finite.
    let mut unscaled = plf_repro::phylo::likelihood::TreeLikelihood::with_scaling(
        &tree, &ds.data, model.clone(), 0,
    )
    .unwrap();
    let raw = unscaled.log_likelihood(&tree, &mut ScalarBackend).unwrap();
    assert!(
        !raw.is_finite(),
        "160 stretched taxa must underflow without rescaling, got {raw}"
    );

    // Scaling on (the default): every backend is finite and matches the
    // scalar oracle — bitwise for the canonical-order kernels, within a
    // small relative tolerance for the summation-order variants.
    let results = plf_repro::evaluate_on_all_backends(&tree, &ds.data, &model).unwrap();
    let (oracle_name, oracle) = &results[0];
    assert_eq!(oracle_name, "scalar");
    assert!(oracle.is_finite(), "scalar oracle must be finite");
    for (name, lnl) in &results {
        assert!(lnl.is_finite(), "{name}: non-finite lnL under scaling");
        if name.contains("rowwise") || name.contains("reduction") {
            let tol = oracle.abs() * 1e-6 + 1e-3;
            assert!((lnl - oracle).abs() < tol, "{name}: {lnl} vs {oracle}");
        } else {
            assert_eq!(lnl, oracle, "{name} must match the scalar oracle bitwise");
        }
    }
}

fn arb_gtr() -> impl Strategy<Value = GtrParams> {
    (
        prop::array::uniform6(0.05f64..10.0),
        prop::array::uniform4(0.05f64..1.0),
    )
        .prop_map(|(rates, raw_freqs)| GtrParams::gtr(rates, raw_freqs).normalized())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn prop_q_matrix_valid(params in arb_gtr()) {
        let q = QMatrix::build(&params).unwrap();
        for row in &q.q {
            let s: f64 = row.iter().sum();
            prop_assert!(s.abs() < 1e-9, "row sum {s}");
        }
        prop_assert!((q.mean_rate() - 1.0).abs() < 1e-9);
        // Detailed balance (time reversibility).
        for i in 0..4 {
            for j in 0..4 {
                let d = params.freqs[i] * q.q[i][j] - params.freqs[j] * q.q[j][i];
                prop_assert!(d.abs() < 1e-9);
            }
        }
    }

    #[test]
    fn prop_transition_matrix_stochastic(params in arb_gtr(), t in 0.0f64..20.0) {
        let es = EigenSystem::new(&QMatrix::build(&params).unwrap());
        let p = es.transition_matrix_f64(t);
        for row in &p {
            let s: f64 = row.iter().sum();
            prop_assert!((s - 1.0).abs() < 1e-7, "row sum {s} at t={t}");
            for &v in row {
                prop_assert!((-1e-9..=1.0 + 1e-7).contains(&v), "entry {v}");
            }
        }
    }

    #[test]
    fn prop_chapman_kolmogorov(params in arb_gtr(), s in 0.001f64..2.0, t in 0.001f64..2.0) {
        let es = EigenSystem::new(&QMatrix::build(&params).unwrap());
        let ps = es.transition_matrix_f64(s);
        let pt = es.transition_matrix_f64(t);
        let pst = es.transition_matrix_f64(s + t);
        for i in 0..4 {
            for j in 0..4 {
                let mut acc = 0.0;
                for k in 0..4 {
                    acc += ps[i][k] * pt[k][j];
                }
                prop_assert!((acc - pst[i][j]).abs() < 1e-8);
            }
        }
    }

    #[test]
    fn prop_discrete_gamma_mean_one(alpha in 0.05f64..50.0, k in 2usize..9) {
        let rates = discrete_gamma_rates(alpha, k).unwrap();
        let mean: f64 = rates.iter().sum::<f64>() / k as f64;
        prop_assert!((mean - 1.0).abs() < 1e-9);
        for w in rates.windows(2) {
            prop_assert!(w[0] <= w[1]);
        }
    }

    #[test]
    fn prop_pattern_compression_roundtrip(
        taxa in 2usize..6,
        sites in 1usize..60,
        seed in 0u64..500,
    ) {
        // Random alignment with ambiguity codes.
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(13);
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (state >> 33) as usize
        };
        let codes: Vec<char> = "ACGTRYSWKMBDHVN-".chars().collect();
        let rows: Vec<Vec<StateMask>> = (0..taxa)
            .map(|_| {
                (0..sites)
                    .map(|_| StateMask::from_iupac(codes[next() % codes.len()]).unwrap())
                    .collect()
            })
            .collect();
        let names = (0..taxa).map(|i| format!("t{i}")).collect();
        let aln = Alignment::new(names, rows).unwrap();
        let compressed = aln.compress();
        prop_assert!(compressed.n_patterns() <= sites);
        prop_assert_eq!(compressed.weights().iter().sum::<u32>() as usize, sites);
        let back = compressed.decompress();
        for t in 0..taxa {
            prop_assert_eq!(aln.row(t), back.row(t));
        }
    }

    #[test]
    fn prop_scaling_preserves_likelihood(seed in 0u64..200, scale_every in 0usize..4) {
        let ds = plf_repro::seqgen::generate(DatasetSpec::new(7, 60), seed);
        let model = plf_repro::seqgen::default_model();
        let mut with = plf_repro::phylo::likelihood::TreeLikelihood::with_scaling(
            &ds.tree, &ds.data, model.clone(), scale_every).unwrap();
        let mut without = plf_repro::phylo::likelihood::TreeLikelihood::with_scaling(
            &ds.tree, &ds.data, model, 1).unwrap();
        let a = with.log_likelihood(&ds.tree, &mut ScalarBackend).unwrap();
        let b = without.log_likelihood(&ds.tree, &mut ScalarBackend).unwrap();
        let tol = b.abs() * 1e-5 + 1e-2;
        prop_assert!((a - b).abs() < tol, "{a} vs {b}");
    }

    #[test]
    fn prop_nni_preserves_leafset_and_validity(seed in 0u64..500, moves in 1usize..12) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut tree = plf_repro::seqgen::random_unrooted_tree(10, 0.1, &mut rng);
        let mut leaves: Vec<String> = tree
            .leaves()
            .iter()
            .map(|&l| tree.node(l).name.clone().unwrap())
            .collect();
        leaves.sort();
        for _ in 0..moves {
            let edges = tree.internal_edges();
            let (p, c) = edges[rng.gen_range(0..edges.len())];
            let i = rng.gen_range(0..tree.node(p).children.len() - 1);
            let j = rng.gen_range(0..2);
            tree.nni(p, c, i, j).unwrap();
        }
        prop_assert!(tree.validate().is_ok());
        let mut after: Vec<String> = tree
            .leaves()
            .iter()
            .map(|&l| tree.node(l).name.clone().unwrap())
            .collect();
        after.sort();
        prop_assert_eq!(leaves, after);
    }

    #[test]
    fn prop_incremental_equals_full_under_random_walks(seed in 0u64..300, moves in 1usize..15) {
        use plf_repro::phylo::incremental::IncrementalLikelihood;
        use rand::{Rng, SeedableRng};
        let ds = plf_repro::seqgen::generate(DatasetSpec::new(8, 50), seed);
        let model = plf_repro::seqgen::default_model();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed ^ 0xABCD);
        let mut tree = ds.tree.clone();
        let mut inc = IncrementalLikelihood::new(&tree, &ds.data, model.clone()).unwrap();
        inc.full_evaluate(&tree, &mut ScalarBackend).unwrap();
        let mut last = f64::NAN;
        for _ in 0..moves {
            // Random branch change, NNI, or SPR; accept or reject randomly.
            let kind = rng.gen_range(0..3);
            let dirty: Vec<plf_repro::phylo::tree::NodeId> = match kind {
                0 => {
                    let branches = tree.branches();
                    let id = branches[rng.gen_range(0..branches.len())];
                    tree.node_mut(id).branch *= rng.gen_range(0.5..2.0);
                    vec![id]
                }
                1 => {
                    let edges = tree.internal_edges();
                    let (p, c) = edges[rng.gen_range(0..edges.len())];
                    let i = rng.gen_range(0..tree.node(p).children.len() - 1);
                    tree.nni(p, c, i, rng.gen_range(0..2)).unwrap();
                    vec![p, c]
                }
                _ => {
                    let xs = tree.spr_prune_candidates();
                    let x = xs[rng.gen_range(0..xs.len())];
                    let ts = tree.spr_targets(x);
                    let target = ts[rng.gen_range(0..ts.len())];
                    let info = tree.spr(x, target, rng.gen_range(0.1..0.9)).unwrap();
                    vec![info.old_location, info.new_internal]
                }
            };
            let lnl = inc.propose(&tree, &dirty, &mut ScalarBackend).unwrap();
            inc.accept();
            last = lnl;
        }
        // The incremental evaluator's state must equal a from-scratch
        // evaluation of the final tree.
        let mut fresh = IncrementalLikelihood::new(&tree, &ds.data, model).unwrap();
        let full = fresh.full_evaluate(&tree, &mut ScalarBackend).unwrap();
        prop_assert!((last - full).abs() < full.abs() * 1e-7 + 1e-4,
            "incremental {last} vs full {full}");
    }

    #[test]
    fn prop_newick_roundtrip(seed in 0u64..500, taxa in 3usize..30) {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let tree = plf_repro::seqgen::random_unrooted_tree(taxa, 0.2, &mut rng);
        let parsed = Tree::from_newick(&tree.to_newick()).unwrap();
        prop_assert_eq!(tree.topology_signature(), parsed.topology_signature());
        prop_assert!((tree.tree_length() - parsed.tree_length()).abs() < 1e-9);
    }
}

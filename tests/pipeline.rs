//! Full-pipeline integration: Seq-Gen-style generation → MrBayes-style
//! MCMC → every architecture backend, plus smoke tests of the figure
//! harness (shape + JSON serialization).

use plf_repro::mcmc::{Chain, ChainOptions, Priors};
use plf_repro::prelude::*;
use plf_repro::seqgen;

fn small_chain_options(generations: usize) -> ChainOptions {
    ChainOptions {
        generations,
        seed: 31,
        sample_every: 25,
        ..ChainOptions::default()
    }
}

#[test]
fn end_to_end_on_simulated_backends() {
    let ds = seqgen::generate(DatasetSpec::new(10, 120), 77);
    for mut backend in plf_repro::all_backends().unwrap() {
        let mut chain = Chain::new(
            ds.tree.clone(),
            &ds.data,
            seqgen::default_model().params().clone(),
            0.5,
            Priors::default(),
            small_chain_options(60),
        )
        .unwrap();
        let stats = chain.run(backend.as_mut()).unwrap();
        assert!(stats.final_ln_likelihood.is_finite(), "{}", backend.name());
        assert!(stats.plf_calls > 0);
        assert!(!stats.samples.is_empty());
    }
}

#[test]
fn cell_simulator_bookkeeping_through_full_run() {
    let ds = seqgen::generate(DatasetSpec::new(12, 200), 13);
    let mut backend = plf_repro::cellbe::CellBackend::qs20();
    let mut chain = Chain::new(
        ds.tree.clone(),
        &ds.data,
        seqgen::default_model().params().clone(),
        0.5,
        Priors::default(),
        small_chain_options(40),
    )
    .unwrap();
    let stats = chain.run(&mut backend).unwrap();
    let cell = backend.stats();
    assert!(cell.modeled_seconds > 0.0);
    assert_eq!(cell.kernel_calls, stats.plf_calls);
    assert!(cell.dma_commands > 0);
    assert!(cell.chunks >= cell.kernel_calls);
}

#[test]
fn gpu_simulator_bookkeeping_through_full_run() {
    let ds = seqgen::generate(DatasetSpec::new(12, 200), 13);
    let mut backend = plf_repro::gpu::GpuBackend::gt8800();
    let mut chain = Chain::new(
        ds.tree.clone(),
        &ds.data,
        seqgen::default_model().params().clone(),
        0.5,
        Priors::default(),
        small_chain_options(40),
    )
    .unwrap();
    let stats = chain.run(&mut backend).unwrap();
    let gpu = backend.stats();
    assert_eq!(gpu.launches, stats.plf_calls);
    assert!(gpu.pcie_seconds > gpu.kernel_seconds, "PCIe must dominate (§4.2)");
    assert!(gpu.bytes_h2d > 0 && gpu.bytes_d2h > 0);
}

#[test]
fn figure_harness_smoke_and_json() {
    use plf_bench::figures;
    let f9 = figures::fig09();
    let f10 = figures::fig10();
    let f11 = figures::fig11();
    let f12 = figures::fig12(figures::BASELINE_REMAINING_OVER_PLF);
    assert_eq!(f9.len(), 3);
    assert_eq!(f10.len(), 2);
    assert_eq!(f11.len(), 2);
    assert_eq!(f12.len(), 8);
    // All serialize to JSON (the --json mode of the binaries).
    for payload in [
        serde_json::to_value(&f9).unwrap(),
        serde_json::to_value(&f10).unwrap(),
        serde_json::to_value(&f11).unwrap(),
        serde_json::to_value(&f12).unwrap(),
        serde_json::to_value(figures::table1_rows()).unwrap(),
        serde_json::to_value(figures::ablation_cell_simd()).unwrap(),
        serde_json::to_value(figures::ablation_gpu_sched()).unwrap(),
        serde_json::to_value(figures::gpu_design_space()).unwrap(),
    ] {
        assert!(payload.is_array());
    }
}

#[test]
fn headline_result_holds() {
    // The paper's conclusion, §6: "the general-purpose multi-core
    // systems achieved the best balance between an efficient parallel
    // and serial execution of the code resulting in the largest
    // speedup for MrBayes."
    use plf_bench::figures;
    let rows = figures::fig12(figures::BASELINE_REMAINING_OVER_PLF);
    let best = rows
        .iter()
        .max_by(|a, b| a.speedup.partial_cmp(&b.speedup).unwrap())
        .unwrap();
    assert!(
        ["2xXeon(4)", "4xOpteron(4)", "8xOpteron(2)"].contains(&best.system.as_str()),
        "best overall system was {} — the paper's headline requires a multi-core",
        best.system
    );
}

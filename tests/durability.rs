//! Crash-durability and idempotency contract of the plfd service:
//! a duplicate submission under one idempotency key yields exactly one
//! execution and one outcome (even when the duplicates race from many
//! threads), and a `kill -9`-equivalent crash loses no acknowledged
//! job — the restarted service replays admitted-but-unresolved work
//! from the write-ahead journal, dedups client resubmissions onto it,
//! and produces bit-identical log-likelihoods across the crash.

use plf_repro::phylo::kernels::{PlfBackend, ScalarBackend};
use plf_repro::phylo::likelihood::TreeLikelihood;
use plf_repro::plfd::{JobOutcome, JobSpec, JournalConfig, PlfService, ServiceConfig};
use plf_repro::seqgen::{self, DatasetSpec};
use std::path::PathBuf;
use std::sync::Arc;
use std::thread;
use std::time::Duration;

fn scalar_backends(n: usize) -> Vec<Box<dyn PlfBackend>> {
    (0..n)
        .map(|_| Box::new(ScalarBackend) as Box<dyn PlfBackend>)
        .collect()
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("plfd-durability-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn journaled(dir: &std::path::Path) -> ServiceConfig {
    ServiceConfig {
        journal: Some(JournalConfig::in_dir(dir)),
        ..ServiceConfig::default()
    }
}

#[test]
fn duplicate_submission_executes_once_and_shares_the_outcome() {
    let ds = seqgen::generate(DatasetSpec::new(6, 48), 101);
    let model = seqgen::default_model();
    let dir = temp_dir("dup");
    let service = PlfService::new(journaled(&dir), scalar_backends(2));
    let dataset = service.register_dataset(ds.data.clone());

    let spec = || {
        JobSpec::new("t", dataset, ds.tree.clone(), model.clone())
            .with_idempotency_key("the-one-job")
    };
    let first = service.submit(spec()).expect("admitted");
    let second = service.submit(spec()).expect("deduped");
    let a = first.wait().ln_likelihood().expect("completed");
    let b = second.wait().ln_likelihood().expect("completed");
    assert_eq!(a.to_bits(), b.to_bits());

    let snap = service.snapshot();
    assert_eq!(snap.submitted, 1, "one execution for two submissions");
    assert_eq!(snap.deduped_jobs, 1);
    service.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn racing_duplicates_from_many_threads_admit_exactly_once() {
    let ds = seqgen::generate(DatasetSpec::new(6, 48), 103);
    let model = seqgen::default_model();
    let dir = temp_dir("race");
    let service = Arc::new(PlfService::new(journaled(&dir), scalar_backends(2)));
    let dataset = service.register_dataset(ds.data.clone());

    const RACERS: usize = 8;
    let handles: Vec<_> = (0..RACERS)
        .map(|_| {
            let service = Arc::clone(&service);
            let tree = ds.tree.clone();
            let model = model.clone();
            thread::spawn(move || {
                let spec = JobSpec::new("t", dataset, tree, model)
                    .with_idempotency_key("contended-key");
                service
                    .submit(spec)
                    .expect("admitted or deduped")
                    .wait()
                    .ln_likelihood()
                    .expect("completed")
            })
        })
        .collect();
    let mut bits: Vec<u64> = handles
        .into_iter()
        .map(|h| h.join().expect("racer thread").to_bits())
        .collect();
    bits.dedup();
    assert_eq!(bits.len(), 1, "every racer saw the same result");

    let snap = service.snapshot();
    assert_eq!(snap.submitted, 1, "racing duplicates admit exactly once");
    assert_eq!(snap.deduped_jobs, (RACERS - 1) as u64);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn crash_loses_no_acknowledged_job_and_results_survive_bit_identically() {
    let ds = seqgen::generate(DatasetSpec::new(8, 64), 107);
    let model = seqgen::default_model();
    let dir = temp_dir("crash");
    const JOBS: usize = 10;
    let key = |i: usize| format!("durable-{i}");

    // Uncrashed same-input reference.
    let mut serial =
        TreeLikelihood::new(&ds.tree, &ds.data, model.clone()).expect("workspace");
    let expected = serial
        .log_likelihood(&ds.tree, &mut ScalarBackend)
        .expect("serial eval");

    // Run 1: acknowledge JOBS submissions, crash before any resolve
    // (the scheduler gate is held shut, so nothing reaches a worker).
    {
        let config = ServiceConfig {
            hold: true,
            ..journaled(&dir)
        };
        let service = PlfService::new(config, scalar_backends(2));
        let dataset = service.register_dataset(ds.data.clone());
        for i in 0..JOBS {
            service
                .submit(
                    JobSpec::new("t", dataset, ds.tree.clone(), model.clone())
                        .with_idempotency_key(key(i)),
                )
                .expect("acknowledged");
        }
        service.crash();
    }

    // Run 2: restart on the same journal, recover, resubmit every key.
    let service = PlfService::new(journaled(&dir), scalar_backends(2));
    let dataset = service.register_dataset(ds.data.clone());
    let report = service.recover();
    assert_eq!(report.replayed, JOBS as u64, "every acknowledged job replayed");
    assert_eq!(report.unrecoverable, 0);

    for i in 0..JOBS {
        let ticket = service
            .submit(
                JobSpec::new("t", dataset, ds.tree.clone(), model.clone())
                    .with_idempotency_key(key(i)),
            )
            .expect("resubmission dedups onto the replay");
        let outcome = ticket
            .wait_timeout(Duration::from_secs(30))
            .expect("acknowledged job resolves after the crash");
        let lnl = outcome.ln_likelihood().expect("completed");
        assert_eq!(
            lnl.to_bits(),
            expected.to_bits(),
            "job {i} bit-identical across the crash"
        );
    }
    let snap = service.snapshot();
    assert_eq!(snap.deduped_jobs, JOBS as u64, "no resubmission re-executed");
    assert_eq!(snap.replayed_jobs, JOBS as u64);
    service.shutdown();

    // Run 3: everything resolved — a further restart replays nothing.
    let service = PlfService::new(journaled(&dir), scalar_backends(1));
    let _ = service.register_dataset(ds.data.clone());
    let report = service.recover();
    assert_eq!(report.replayed, 0, "clean journal after full resolution");
    service.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn journaled_outcome_answers_resubmission_after_restart() {
    let ds = seqgen::generate(DatasetSpec::new(6, 48), 109);
    let model = seqgen::default_model();
    let dir = temp_dir("outcome");

    // Run 1: complete a keyed job, flush via graceful shutdown so the
    // Resolved record is on disk, then stop.
    let expected_bits;
    {
        let service = PlfService::new(journaled(&dir), scalar_backends(1));
        let dataset = service.register_dataset(ds.data.clone());
        let ticket = service
            .submit(
                JobSpec::new("t", dataset, ds.tree.clone(), model.clone())
                    .with_idempotency_key("done-before-restart"),
            )
            .expect("admitted");
        expected_bits = ticket.wait().ln_likelihood().expect("completed").to_bits();
        service.shutdown();
    }

    // Run 2: the journaled outcome (not a re-execution) answers the
    // resubmission — before recover() even runs.
    let service = PlfService::new(journaled(&dir), scalar_backends(1));
    let dataset = service.register_dataset(ds.data.clone());
    let ticket = service
        .submit(
            JobSpec::new("t", dataset, ds.tree.clone(), model.clone())
                .with_idempotency_key("done-before-restart"),
        )
        .expect("deduped onto the journaled outcome");
    let outcome = ticket.try_wait().expect("pre-resolved from the journal");
    assert!(matches!(outcome, JobOutcome::Completed { .. }));
    assert_eq!(
        outcome.ln_likelihood().expect("completed").to_bits(),
        expected_bits,
        "journaled outcome is bit-identical"
    );
    let snap = service.snapshot();
    assert_eq!(snap.submitted, 0, "nothing re-executed");
    assert_eq!(snap.deduped_jobs, 1);
    service.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

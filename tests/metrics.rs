//! End-to-end checks of the PLF observability layer: the counters every
//! backend feeds must agree with hand-computed kernel schedules, grow
//! monotonically, and be identical across execution engines (the
//! backends run the same plan, so they must bill the same work).

use plf_repro::phylo::io;
use plf_repro::phylo::kernels::{PlfBackend, ScalarBackend};
use plf_repro::phylo::tree::Tree;
use plf_repro::prelude::*;
use plf_repro::seqgen;
use std::sync::Arc;
use std::time::Duration;

/// A quartet: one internal (a,b) node plus the trifurcating root, so
/// each evaluation under `scale_every = 1` issues exactly
/// 1 × CondLikeDown, 1 × CondLikeRoot, and 2 × CondLikeScaler.
fn quartet() -> (Tree, plf_repro::phylo::alignment::PatternAlignment) {
    let tree = Tree::from_newick("((a:0.1,b:0.2):0.05,c:0.3,d:0.4);").unwrap();
    let aln = io::parse_fasta(">a\nACGTACGTAC\n>b\nACGTACGAAC\n>c\nACGAACGTAC\n>d\nTCGTACGTAA\n")
        .unwrap();
    (tree, aln.compress())
}

fn model() -> SiteModel {
    SiteModel::gtr_gamma4(GtrParams::jc69(), 0.5).unwrap()
}

#[test]
fn quartet_counts_are_exact() {
    let (tree, data) = quartet();
    let m = data.n_patterns() as u64;
    let counters = PlfCounters::new();
    let mut backend = plf_repro::multicore::RayonBackend::new(2)
        .unwrap()
        .with_metrics(Arc::clone(&counters));
    let mut eval = TreeLikelihood::new(&tree, &data, model()).unwrap();
    let evals = 3u64;
    for _ in 0..evals {
        eval.log_likelihood(&tree, &mut backend).unwrap();
    }
    let s = counters.snapshot();
    assert_eq!(s.evaluations, evals);
    assert_eq!(s.down.invocations, evals);
    assert_eq!(s.root.invocations, evals);
    assert_eq!(s.scale.invocations, 2 * evals, "internal node + root are both rescaled");
    assert_eq!(s.down.patterns, evals * m);
    assert_eq!(s.root.patterns, evals * m);
    assert_eq!(s.scale.patterns, 2 * evals * m);
    // Every live pattern gets rescaled by each scaler call on this data.
    assert_eq!(s.rescaled_patterns, 2 * evals * m);
    // Host backend: no device bus to account.
    assert_eq!(s.transfer.total_bytes(), 0);
    assert_eq!(s.transfer.commands, 0);
}

#[test]
fn kernel_timers_are_monotonic() {
    let (tree, data) = quartet();
    let counters = PlfCounters::new();
    let mut backend = plf_repro::multicore::RayonBackend::new(2)
        .unwrap()
        .with_metrics(Arc::clone(&counters));
    let mut eval = TreeLikelihood::new(&tree, &data, model()).unwrap();
    eval.log_likelihood(&tree, &mut backend).unwrap();
    let first = counters.snapshot();
    eval.log_likelihood(&tree, &mut backend).unwrap();
    let second = counters.snapshot();
    for k in Kernel::ALL {
        assert!(first.kernel(k).seconds >= 0.0);
        assert!(
            second.kernel(k).seconds >= first.kernel(k).seconds,
            "{} time went backwards",
            k.label()
        );
        assert_eq!(second.kernel(k).invocations, 2 * first.kernel(k).invocations);
    }
    assert!(second.plf_seconds() >= first.plf_seconds());
    assert!(second.plf_seconds() > 0.0, "two evaluations must take measurable time");
}

#[test]
fn all_backends_bill_identical_work() {
    // Big enough that each of the QS20's 16 SPEs holds several
    // Local-Store chunks (~103 patterns each for CondLikeDown), so
    // double buffering actually overlaps DMA with compute.
    let ds = seqgen::generate(DatasetSpec::new(10, 2_400), 77);
    let evals = 2u64;
    let run = |mut backend: Box<dyn PlfBackend>, counters: &Arc<PlfCounters>| -> MetricsSnapshot {
        let mut eval = TreeLikelihood::new(&ds.tree, &ds.data, model()).unwrap();
        for _ in 0..evals {
            eval.log_likelihood(&ds.tree, backend.as_mut()).unwrap();
        }
        counters.snapshot()
    };
    let mut snaps = Vec::new();
    for which in ["rayon", "persistent", "ps3", "8800gt"] {
        let counters = PlfCounters::new();
        let backend: Box<dyn PlfBackend> = match which {
            "rayon" => Box::new(
                plf_repro::multicore::RayonBackend::new(3)
                    .unwrap()
                    .with_metrics(Arc::clone(&counters)),
            ),
            "persistent" => Box::new(
                plf_repro::multicore::PersistentPoolBackend::new(3)
                    .with_metrics(Arc::clone(&counters)),
            ),
            "ps3" => Box::new(plf_repro::cellbe::CellBackend::ps3().with_metrics(Arc::clone(&counters))),
            _ => Box::new(plf_repro::gpu::GpuBackend::gt8800().with_metrics(Arc::clone(&counters))),
        };
        snaps.push((which, run(backend, &counters)));
    }
    let (_, reference) = &snaps[0];
    assert!(reference.invocations() > 0);
    for (name, s) in &snaps {
        assert_eq!(s.evaluations, evals, "{name}");
        for k in Kernel::ALL {
            assert_eq!(
                s.kernel(k).invocations,
                reference.kernel(k).invocations,
                "{name} {} invocations",
                k.label()
            );
            assert_eq!(
                s.kernel(k).patterns,
                reference.kernel(k).patterns,
                "{name} {} patterns",
                k.label()
            );
        }
        assert_eq!(s.rescaled_patterns, reference.rescaled_patterns, "{name} rescales");
    }
    // Only the device backends move bytes over a modeled bus.
    let by_name = |n: &str| &snaps.iter().find(|(name, _)| *name == n).unwrap().1;
    assert_eq!(by_name("rayon").transfer.total_bytes(), 0);
    assert_eq!(by_name("persistent").transfer.total_bytes(), 0);
    let cell = by_name("ps3");
    assert!(cell.transfer.total_bytes() > 0);
    assert!(cell.transfer.commands > 0, "DMA commands must be counted");
    assert!(cell.transfer.seconds > 0.0);
    assert!(
        cell.transfer.overlap_saved_seconds > 0.0,
        "the compute-bound PS3 double-buffers, so overlap must save modeled time"
    );
    let gpu = by_name("8800gt");
    assert!(gpu.transfer.total_bytes() > 0);
    assert!(gpu.transfer.seconds > 0.0, "PCIe time must be modeled");
}

#[test]
fn resilient_wrapper_mirrors_recovery_into_counters() {
    /// Fails every down-call so the wrapper retries, then degrades.
    struct AlwaysDown;
    impl PlfBackend for AlwaysDown {
        fn name(&self) -> String {
            "always-down".into()
        }
        fn cond_like_down(
            &mut self,
            _l: &Clv,
            _pl: &TransitionMatrices,
            _r: &Clv,
            _pr: &TransitionMatrices,
            _out: &mut Clv,
        ) -> Result<(), PlfError> {
            Err(PlfError::Launch { backend: "always-down".into(), detail: "injected".into() })
        }
        fn cond_like_root(
            &mut self,
            a: &Clv,
            pa: &TransitionMatrices,
            b: &Clv,
            pb: &TransitionMatrices,
            c: Option<(&Clv, &TransitionMatrices)>,
            out: &mut Clv,
        ) -> Result<(), PlfError> {
            ScalarBackend.cond_like_root(a, pa, b, pb, c, out)
        }
        fn cond_like_scaler(&mut self, clv: &mut Clv, ln_scalers: &mut [f32]) -> Result<(), PlfError> {
            ScalarBackend.cond_like_scaler(clv, ln_scalers)
        }
    }

    let (tree, data) = quartet();
    let counters = PlfCounters::new();
    let policy = RetryPolicy {
        base_backoff: Duration::ZERO,
        max_backoff: Duration::ZERO,
        ..RetryPolicy::default()
    };
    let mut backend = ResilientBackend::new(Box::new(AlwaysDown))
        .with_fallback(Box::new(ScalarBackend))
        .with_policy(policy)
        .with_metrics(Arc::clone(&counters));
    let mut eval = TreeLikelihood::new(&tree, &data, model()).unwrap();
    eval.log_likelihood(&tree, &mut backend).unwrap();
    let s = counters.snapshot();
    // Default policy: 2 same-tier retries, then one degradation to the
    // scalar fallback, which serves all remaining calls.
    assert_eq!(s.retries, 2);
    assert_eq!(s.degradations, 1);
    assert_eq!(backend.report().retries, 2);
    assert_eq!(backend.report().degradations, 1);
    assert_eq!(backend.active_tier(), "scalar");
}

//! End-to-end chaos soak through the public crate surface: a rayon
//! worker pool under kernel-output corruption, a deterministic worker
//! kill, and a backend blackout. The self-healing contract is the
//! whole point — the watchdog respawns the killed worker and re-queues
//! its in-flight jobs, the blacked-out backend's circuit breaker opens
//! and then re-closes via half-open probes, and every completed result
//! stays bit-identical to the serial scalar reference.

use plf_repro::multicore::RayonBackend;
use plf_repro::phylo::kernels::{PlfBackend, ScalarBackend};
use plf_repro::phylo::resilience::ResilientBackend;
use plf_repro::plfd::{run_chaos, ChaosBackendFactory, ChaosConfig, ScheduledBlackout, ScheduledKill};
use std::sync::Arc;

#[test]
fn chaos_soak_self_heals_with_rayon_workers() {
    let cfg = ChaosConfig {
        jobs: 96,
        seed: 2009,
        taxa: 6,
        patterns: 32,
        workers: 3,
        concurrency: 32,
        // Kernel-level corruption on top of the scheduled faults; the
        // resilient executor must absorb it without bit divergence.
        corrupt_rate: 0.05,
        scheduled_kills: vec![ScheduledKill { worker: 0, after_jobs: 12 }],
        scheduled_blackouts: vec![ScheduledBlackout {
            worker: 1,
            after_jobs: 36,
            failures: 5,
        }],
        ..ChaosConfig::default()
    };
    let factory: ChaosBackendFactory = Arc::new(|inj| {
        let pool = RayonBackend::new(2).expect("rayon pool");
        let primary: Box<dyn PlfBackend> = match inj {
            Some(i) => Box::new(pool.with_fault_injector(i)),
            None => Box::new(pool),
        };
        Box::new(ResilientBackend::new(primary).with_fallback(Box::new(ScalarBackend)))
    });

    let report = run_chaos(&cfg, &factory);
    assert!(
        report.pass,
        "soak must self-heal; violated invariants: {:?}",
        report.failures
    );
    assert_eq!(report.lost, 0);
    assert_eq!(report.bit_mismatches, 0);
    assert!(report.checked > 0, "bit-identity must actually be exercised");
    assert!(
        report.service.watchdog_respawns >= 1,
        "the scheduled kill must be healed by a respawn: {report:?}"
    );
    assert!(
        report.service.breaker_opened >= 1 && report.service.breaker_closed >= 1,
        "the blackout must open the breaker and probes must re-close it: {report:?}"
    );
    assert_eq!(
        report.alive_workers_at_exit, cfg.workers,
        "worker capacity must be restored before exit"
    );
    for state in &report.breaker_states_at_exit {
        assert_eq!(state, "closed", "{report:?}");
    }
    // The whole ledger balances: every submitted job reached exactly
    // one terminal outcome.
    assert_eq!(
        report.completed + report.failed + report.cancelled + report.deadline_missed,
        report.submitted,
        "{report:?}"
    );
}

//! `plfr` — command-line front end for the PLF reproduction.
//!
//! ```text
//! plfr simulate   --taxa 10 --patterns 1000 --seed 42 --out data.fasta [--tree-out tree.nwk]
//! plfr likelihood --alignment data.fasta [--tree tree.nwk] [--backend rayon] [--shape 0.5] [--pinvar 0.1]
//! plfr mcmc       --alignment data.fasta [--tree tree.nwk] --generations 1000 [--backend qs20]
//!                 [--incremental] [--trace PREFIX] [--sample-every 100] [--seed 42]
//! plfr serve      --alignment data.fasta (--listen ADDR | --stdio) [--backend rayon] [--workers 4]
//! plfr loadgen    --jobs 256 [--taxa 10] [--patterns 1000] [--backend rayon] [--workers 4] [--json]
//! plfr loadgen    --connect ADDR [--connections 10000] [--jobs 20000] [--pipeline 2] [--churn 8]
//! plfr chaos      [--jobs 200] [--seed 2009] [--kills 0@40] [--blackouts 1@80x6] [--json]
//! plfr backends
//! ```
//!
//! Alignment files are FASTA (`.fa`, `.fasta`) or PHYLIP (anything
//! else); trees are Newick. Without `--tree`, a random starting tree
//! over the alignment's taxa is generated from the seed.
//!
//! `serve` runs the `plfd` batched evaluation service — on a socket
//! with `--listen ADDR` (the plf-net length-prefixed binary protocol,
//! per-tenant fair queuing, graceful drain) or on stdin/stdout with
//! `--stdio` (one request per line, see `plfr serve --help`);
//! `loadgen` drives an in-process service with a deterministic seeded
//! job stream and checks every completed result bit-for-bit against
//! the scalar reference, or — with `--connect ADDR` — floods a remote
//! `serve --listen` over thousands of concurrent connections;
//! `chaos` runs the self-healing soak — worker kills, backend
//! blackouts, and seeded kernel faults — and exits non-zero unless the
//! service recovered with zero lost jobs and bit-identical results.

use plf_repro::mcmc::consensus::consensus_from_newicks;
use plf_repro::mcmc::{p_file, summarize, t_file, Chain, ChainOptions, Mc3, Mc3Options, Priors};
use plf_repro::phylo::alignment::{Alignment, PatternAlignment};
use plf_repro::phylo::io;
use plf_repro::phylo::kernels::{PlfBackend, ScalarBackend, Simd4Backend};
use plf_repro::phylo::likelihood::TreeLikelihood;
use plf_repro::phylo::model::{GtrParams, SiteModel};
use plf_repro::phylo::resilience::{FaultInjector, ResilientBackend};
use plf_repro::phylo::tree::Tree;
use plf_repro::plfd::{
    run_chaos, ChaosBackendFactory, ChaosConfig, JobOutcome, JobSpec, JournalConfig, LoadMode,
    LoadgenConfig, PlfService, Priority, ScheduledBlackout, ScheduledKill, ServiceConfig,
    SubmitError,
};
use plf_repro::seqgen;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashMap;
use std::process::ExitCode;
use std::time::Duration;

/// Minimal `--key value` / `--flag` argument map.
#[derive(Debug, Default)]
struct Args {
    values: HashMap<String, String>,
    flags: Vec<String>,
}

impl Args {
    fn parse(argv: &[String]) -> Result<Args, String> {
        let mut out = Args::default();
        let mut i = 0;
        while i < argv.len() {
            let a = &argv[i];
            let key = a
                .strip_prefix("--")
                .ok_or_else(|| format!("unexpected argument {a:?} (expected --key)"))?;
            if i + 1 < argv.len() && !argv[i + 1].starts_with("--") {
                out.values.insert(key.to_string(), argv[i + 1].clone());
                i += 2;
            } else {
                out.flags.push(key.to_string());
                i += 1;
            }
        }
        Ok(out)
    }

    fn get(&self, key: &str) -> Option<&str> {
        self.values.get(key).map(|s| s.as_str())
    }

    fn required(&self, key: &str) -> Result<&str, String> {
        self.get(key).ok_or_else(|| format!("missing --{key}"))
    }

    fn parse_num<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| format!("bad value for --{key}: {v}")),
        }
    }

    fn flag(&self, key: &str) -> bool {
        self.flags.iter().any(|f| f == key)
    }
}

fn backend_by_name(
    name: &str,
    injector: Option<&std::sync::Arc<FaultInjector>>,
) -> Result<Box<dyn PlfBackend>, String> {
    let threads = std::thread::available_parallelism().map_or(4, |n| n.get());
    let inj = || injector.map(std::sync::Arc::clone);
    Ok(match name {
        "scalar" => Box::new(ScalarBackend),
        "simd" | "simd-colwise" => Box::new(Simd4Backend::col_wise()),
        "simd-rowwise" => Box::new(Simd4Backend::row_wise()),
        "rayon" => {
            let b = plf_repro::multicore::RayonBackend::new(threads).map_err(|e| e.to_string())?;
            match inj() {
                Some(i) => Box::new(b.with_fault_injector(i)),
                None => Box::new(b),
            }
        }
        // The persistent pool keeps workers parked on channels; a
        // mid-kernel panic would wedge them, so it opts out of injection.
        "persistent" => Box::new(plf_repro::multicore::PersistentPoolBackend::new(threads)),
        "ps3" => {
            let b = plf_repro::cellbe::CellBackend::ps3();
            match inj() {
                Some(i) => Box::new(b.with_fault_injector(i)),
                None => Box::new(b),
            }
        }
        "qs20" => {
            let b = plf_repro::cellbe::CellBackend::qs20();
            match inj() {
                Some(i) => Box::new(b.with_fault_injector(i)),
                None => Box::new(b),
            }
        }
        "8800gt" => {
            let b = plf_repro::gpu::GpuBackend::gt8800();
            match inj() {
                Some(i) => Box::new(b.with_fault_injector(i)),
                None => Box::new(b),
            }
        }
        "gtx285" => {
            let b = plf_repro::gpu::GpuBackend::gtx285();
            match inj() {
                Some(i) => Box::new(b.with_fault_injector(i)),
                None => Box::new(b),
            }
        }
        other => return Err(format!("unknown backend {other:?}; see `plfr backends`")),
    })
}

/// Build the backend named on the command line. If any `PLF_FAULT_*`
/// environment knob is set, attach a deterministic fault injector to it
/// and wrap the result in a [`ResilientBackend`] that retries and falls
/// back to the scalar reference, so injected faults are survived rather
/// than fatal.
fn make_backend(name: &str) -> Result<Box<dyn PlfBackend>, String> {
    match FaultInjector::from_env().map_err(|e| e.to_string())? {
        None => backend_by_name(name, None),
        Some(injector) => {
            let injector = std::sync::Arc::new(injector);
            let primary = backend_by_name(name, Some(&injector))?;
            eprintln!(
                "fault injection enabled via PLF_FAULT_* env; running {name} under the resilient executor"
            );
            Ok(Box::new(
                ResilientBackend::new(primary).with_fallback(Box::new(ScalarBackend)),
            ))
        }
    }
}

const BACKEND_NAMES: &[&str] = &[
    "scalar",
    "simd",
    "simd-rowwise",
    "rayon",
    "persistent",
    "ps3",
    "qs20",
    "8800gt",
    "gtx285",
];

fn read_alignment(path: &str) -> Result<Alignment, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let is_fasta = path.ends_with(".fa") || path.ends_with(".fasta") || text.trim_start().starts_with('>');
    if is_fasta {
        io::parse_fasta(&text).map_err(|e| format!("{path}: {e}"))
    } else {
        io::parse_phylip(&text).map_err(|e| format!("{path}: {e}"))
    }
}

fn load_or_make_tree(args: &Args, data: &PatternAlignment, seed: u64) -> Result<Tree, String> {
    match args.get("tree") {
        Some(path) => {
            let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
            Tree::from_newick(text.trim()).map_err(|e| format!("{path}: {e}"))
        }
        None => {
            let mut rng = StdRng::seed_from_u64(seed ^ 0x7265_7065);
            Ok(seqgen::random_tree_for_taxa(data.taxa(), 0.1, &mut rng))
        }
    }
}

fn build_model(args: &Args) -> Result<SiteModel, String> {
    let shape: f64 = args.parse_num("shape", 0.5)?;
    let pinvar: f64 = args.parse_num("pinvar", 0.0)?;
    let n_rates: usize = args.parse_num("rates", 4)?;
    SiteModel::new(GtrParams::jc69(), shape, n_rates)
        .and_then(|m| m.with_pinvar(pinvar))
        .map_err(|e| e.to_string())
}

fn cmd_simulate(args: &Args) -> Result<(), String> {
    let taxa: usize = args.parse_num("taxa", 10)?;
    let patterns: usize = args.parse_num("patterns", 1000)?;
    let seed: u64 = args.parse_num("seed", 42)?;
    let out = args.required("out")?;
    let ds = seqgen::generate(seqgen::DatasetSpec::new(taxa, patterns), seed);
    let aln = ds.data.decompress();
    let text = if out.ends_with(".phy") || out.ends_with(".phylip") {
        io::write_phylip(&aln)
    } else {
        io::write_fasta(&aln)
    };
    std::fs::write(out, text).map_err(|e| format!("{out}: {e}"))?;
    if let Some(tree_out) = args.get("tree-out") {
        std::fs::write(tree_out, format!("{}\n", ds.tree.to_newick()))
            .map_err(|e| format!("{tree_out}: {e}"))?;
    }
    eprintln!(
        "wrote {} taxa x {} sites ({} distinct patterns) to {out}",
        aln.n_taxa(),
        aln.n_sites(),
        patterns
    );
    Ok(())
}

fn cmd_likelihood(args: &Args) -> Result<(), String> {
    let aln = read_alignment(args.required("alignment")?)?;
    let data = aln.compress();
    let seed: u64 = args.parse_num("seed", 42)?;
    let tree = load_or_make_tree(args, &data, seed)?;
    let model = build_model(args)?;
    let mut backend = make_backend(args.get("backend").unwrap_or("scalar"))?;
    let mut eval = TreeLikelihood::new(&tree, &data, model).map_err(|e| e.to_string())?;
    let t0 = std::time::Instant::now();
    let lnl = eval
        .log_likelihood(&tree, backend.as_mut())
        .map_err(|e| e.to_string())?;
    let dt = t0.elapsed();
    println!("backend:  {}", backend.name());
    println!("patterns: {} (from {} sites)", data.n_patterns(), data.n_sites());
    println!("lnL:      {lnl:.6}");
    println!("time:     {:.3} ms", dt.as_secs_f64() * 1e3);
    Ok(())
}

fn cmd_mcmc(args: &Args) -> Result<(), String> {
    let aln = read_alignment(args.required("alignment")?)?;
    let data = aln.compress();
    let seed: u64 = args.parse_num("seed", 42)?;
    let tree = load_or_make_tree(args, &data, seed)?;
    let generations: usize = args.parse_num("generations", 1000)?;
    let sample_every: usize = args.parse_num("sample-every", 100)?;
    let trace_prefix = args.get("trace");
    let options = ChainOptions {
        generations,
        seed,
        sample_every,
        incremental: args.flag("incremental"),
        initial_pinvar: args.parse_num("pinvar", 0.0)?,
        record_trace: trace_prefix.is_some(),
        ..ChainOptions::default()
    };
    let n_chains: usize = args.parse_num("mc3", 1)?;
    if n_chains > 1 {
        return cmd_mc3(args, tree, &data, options, n_chains, trace_prefix);
    }
    let mut backend = make_backend(args.get("backend").unwrap_or("scalar"))?;
    let mut chain = Chain::new(tree, &data, GtrParams::jc69(), 0.5, Priors::default(), options)
        .map_err(|e| e.to_string())?;
    let stats = chain.run(backend.as_mut()).map_err(|e| e.to_string())?;
    println!("backend:            {}", backend.name());
    println!("generations:        {generations}");
    println!("final lnL:          {:.4}", stats.final_ln_likelihood);
    println!("PLF calls:          {}", stats.plf_calls);
    println!(
        "PLF / Remaining:    {:.3}s / {:.3}s ({:.1}% PLF)",
        stats.plf_time.as_secs_f64(),
        stats.remaining_time().as_secs_f64(),
        100.0 * stats.plf_fraction()
    );
    for (kind, ps) in &stats.proposals {
        println!(
            "  {:<16} {:>5.1}% accepted ({}/{})",
            kind.name(),
            100.0 * ps.acceptance_rate(),
            ps.accepted,
            ps.proposed
        );
    }
    if let Some(prefix) = trace_prefix {
        let pf = format!("{prefix}.p");
        let tf = format!("{prefix}.t");
        std::fs::write(&pf, p_file(&stats.trace)).map_err(|e| format!("{pf}: {e}"))?;
        std::fs::write(&tf, t_file(&stats.trace)).map_err(|e| format!("{tf}: {e}"))?;
        if let Some(s) = summarize(&stats.trace, 0.25) {
            println!(
                "trace:              {pf}, {tf} ({} samples; post-burn-in mean lnL {:.3})",
                s.n, s.mean_ln_likelihood
            );
        }
    }
    Ok(())
}

fn cmd_mc3(
    args: &Args,
    tree: Tree,
    data: &PatternAlignment,
    options: ChainOptions,
    n_chains: usize,
    trace_prefix: Option<&str>,
) -> Result<(), String> {
    let backend_name = args.get("backend").unwrap_or("scalar");
    let mut backends = Vec::with_capacity(n_chains);
    for _ in 0..n_chains {
        backends.push(make_backend(backend_name)?);
    }
    let mut mc3 = Mc3::new(
        tree,
        data,
        GtrParams::jc69(),
        0.5,
        Priors::default(),
        Mc3Options {
            n_chains,
            parallel: args.flag("parallel"),
            swap_every: args.parse_num("swap-every", 10)?,
            heat: args.parse_num("heat", 0.1)?,
            chain: options,
        },
    )
    .map_err(|e| e.to_string())?;
    let stats = mc3.run(&mut backends).map_err(|e| e.to_string())?;
    println!("chains:             {n_chains} (MC3, heat ladder)");
    println!("swap acceptance:    {:.1}%", 100.0 * stats.swap_acceptance());
    println!("final cold lnL:     {:.4}", stats.final_cold_ln_likelihood);
    println!("total PLF calls:    {}", stats.total_plf_calls());
    if let Some(prefix) = trace_prefix {
        let pf = format!("{prefix}.p");
        let tf = format!("{prefix}.t");
        std::fs::write(&pf, p_file(&stats.cold_trace)).map_err(|e| format!("{pf}: {e}"))?;
        std::fs::write(&tf, t_file(&stats.cold_trace)).map_err(|e| format!("{tf}: {e}"))?;
        println!("trace:              {pf}, {tf}");
    }
    Ok(())
}

fn cmd_consensus(args: &Args) -> Result<(), String> {
    let path = args.required("trees")?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    // Accept either a NEXUS .t file or plain newick-per-line.
    let newicks: Vec<String> = text
        .lines()
        .filter_map(|l| {
            let l = l.trim();
            if let Some(eq) = l.find('=') {
                if l.starts_with("tree ") || l.starts_with("  tree ") || l.contains(" tree ") {
                    return Some(l[eq + 1..].trim().to_string());
                }
            }
            if l.starts_with('(') {
                Some(l.to_string())
            } else {
                None
            }
        })
        .collect();
    if newicks.is_empty() {
        return Err(format!("{path}: no trees found"));
    }
    let burn_in: f64 = args.parse_num("burn-in", 0.25)?;
    let skip = (newicks.len() as f64 * burn_in) as usize;
    let threshold: f64 = args.parse_num("threshold", 0.5)?;
    let c = consensus_from_newicks(&newicks[skip..], threshold).map_err(|e| e.to_string())?;
    println!("{} trees ({} after burn-in)", newicks.len(), newicks.len() - skip);
    println!("consensus: {}", c.newick);
    for s in &c.splits {
        println!("  {:.2}  {{{}}}", s.support, s.taxa.join(","));
    }
    Ok(())
}

/// Shared service-shaping flags for `serve` and `loadgen`.
fn service_config(args: &Args) -> Result<ServiceConfig, String> {
    let mut cfg = ServiceConfig::default();
    cfg.queue_capacity = args.parse_num("queue-capacity", cfg.queue_capacity)?;
    cfg.batch.max_jobs = args.parse_num("batch-jobs", cfg.batch.max_jobs)?;
    cfg.batch.max_units = args.parse_num("batch-units", cfg.batch.max_units)?;
    let linger_ms: f64 =
        args.parse_num("linger-ms", cfg.batch.linger.as_secs_f64() * 1e3)?;
    if !(linger_ms.is_finite() && linger_ms >= 0.0) {
        return Err(format!("bad value for --linger-ms: {linger_ms}"));
    }
    cfg.batch.linger = Duration::from_secs_f64(linger_ms / 1e3);
    if let Some(dir) = args.get("journal-dir") {
        let mut journal = JournalConfig::in_dir(dir);
        let fsync_ms: f64 =
            args.parse_num("fsync-ms", journal.fsync_interval.as_secs_f64() * 1e3)?;
        if !(fsync_ms.is_finite() && fsync_ms >= 0.0) {
            return Err(format!("bad value for --fsync-ms: {fsync_ms}"));
        }
        journal.fsync_interval = Duration::from_secs_f64(fsync_ms / 1e3);
        cfg.journal = Some(journal);
    } else if args.get("fsync-ms").is_some() {
        return Err("--fsync-ms requires --journal-dir".into());
    }
    Ok(cfg)
}

/// One worker backend per `--workers`, cycling through the comma list
/// in `--backend`; honors `PLF_FAULT_*` via [`make_backend`].
fn service_backends(args: &Args) -> Result<Vec<Box<dyn PlfBackend>>, String> {
    let spec = args.get("backend").unwrap_or("rayon");
    let names: Vec<&str> = spec.split(',').filter(|s| !s.is_empty()).collect();
    if names.is_empty() {
        return Err("empty --backend list".into());
    }
    let workers: usize = args.parse_num("workers", names.len().max(4))?;
    if workers == 0 {
        return Err("--workers must be at least 1".into());
    }
    (0..workers)
        .map(|i| make_backend(names[i % names.len()]))
        .collect()
}

const SERVE_USAGE: &str = "plfr serve — run the plfd batched evaluation service

USAGE:
  plfr serve --alignment FILE (--listen ADDR | --stdio)
             [--backend NAME[,NAME...]] [--workers N]
             [--queue-capacity K] [--batch-jobs N] [--batch-units N] [--linger-ms F]
             [--journal-dir DIR] [--fsync-ms F] [--drain-ms F]
             [--shape A] [--pinvar P] [--rates K]
  socket options (--listen, e.g. 127.0.0.1:7464 or 127.0.0.1:0):
             [--max-connections N] [--port-file FILE]
             [--tenant-policy NAME=WEIGHT[:RATE[:BURST[:PENDING]]][,NAME=...]]
             [--default-weight W] [--default-rate R] [--default-burst B]
             [--default-pending N]

SOCKET FRONT END (--listen ADDR, the primary interface):
  length-prefixed CRC-framed binary records
  ([magic u16][version u8][kind u8][len u32][payload][crc32 u32]);
  see the plf-net crate docs for the frame catalogue. Admission is
  weighted-fair across tenants (--tenant-policy / --default-*) with
  token-bucket rate limits; Reject frames carry retry_after and
  jobs_ahead verbatim so a remote RetryPolicy behaves exactly like an
  in-process one. --port-file writes the bound port (for --listen
  ADDR:0). At exit a combined JSON summary {service, net, reactor}
  is printed to stderr.

STDIO FRONT END (--stdio, one request per input line):
  [tenant=NAME] [priority=high|normal] [deadline_ms=N] NEWICK
responses on stdout, in submission order:
  ok id=N lnl=L wait_ms=W service_ms=S backend=B
  reject id=N retry_after_ms=M       (queue full; resubmit after M)
  fail id=N error=...                (evaluation failed)
  cancelled id=N | deadline id=N
  error id=N msg=...                 (malformed request line)
A service-metrics JSON snapshot is printed to stderr at EOF.

With --journal-dir, every acknowledged admission is written to a
crash-durable write-ahead journal before the response; on restart the
service replays admitted-but-unresolved jobs. --fsync-ms sets the
group-commit window (0 = fsync every append). SIGTERM/SIGINT trigger a
graceful drain (bounded by --drain-ms, default 10000) on either front
end — the socket server stops accepting, notifies clients with
Draining frames, resolves the backlog, flushes the journal, and
exits 0.";

fn cmd_serve(args: &Args) -> Result<(), String> {
    if args.flag("help") {
        println!("{SERVE_USAGE}");
        return Ok(());
    }
    let aln = read_alignment(args.required("alignment")?)?;
    let data = aln.compress();
    let model = build_model(args)?;
    let config = service_config(args)?;
    let drain_ms: f64 = args.parse_num("drain-ms", 10_000.0)?;
    if !(drain_ms.is_finite() && drain_ms >= 0.0) {
        return Err(format!("bad value for --drain-ms: {drain_ms}"));
    }
    let drain_deadline = Duration::from_secs_f64(drain_ms / 1e3);
    let journaled = config.journal.is_some();
    let service = PlfService::new(config, service_backends(args)?);
    let dataset = service.register_dataset(data);
    if journaled {
        let report = service.recover();
        eprintln!(
            "plfd: journal recovery — {} replayed ({} past deadline, {} unrecoverable), \
             {} journaled outcome(s) indexed, {} torn record(s) truncated",
            report.replayed,
            report.expired,
            report.unrecoverable,
            report.deduped_outcomes,
            report.truncated_records
        );
    }
    // One shutdown flag shared by both front ends, wired to
    // SIGINT/SIGTERM; the loops poll it instead of racing a signal
    // against a blocking read.
    let shutdown = plf_net::ShutdownFlag::global();
    match (args.get("listen"), args.flag("stdio")) {
        (Some(_), true) => Err("--listen and --stdio are mutually exclusive".into()),
        (Some(addr), false) => {
            let addr = addr.to_string();
            serve_listen(args, &addr, service, dataset, model, drain_deadline, shutdown)
        }
        (None, true) => {
            serve_stdio(service, dataset, &model, drain_deadline, shutdown, journaled)
        }
        (None, false) => Err(
            "serve needs a front end: --listen ADDR (binary socket protocol) \
             or --stdio (line protocol); see plfr serve --help"
                .into(),
        ),
    }
}

/// Parse `--tenant-policy NAME=WEIGHT[:RATE[:BURST[:PENDING]]],...` plus
/// the `--default-*` knobs into plf-net admission policies.
fn parse_tenant_policies(
    args: &Args,
) -> Result<(plf_net::TenantPolicy, Vec<(String, plf_net::TenantPolicy)>), String> {
    let mut default_policy = plf_net::TenantPolicy::default();
    default_policy.weight = args.parse_num("default-weight", default_policy.weight)?;
    default_policy.rate_per_sec = args.parse_num("default-rate", default_policy.rate_per_sec)?;
    default_policy.burst = args.parse_num("default-burst", default_policy.burst)?;
    default_policy.max_pending = args.parse_num("default-pending", default_policy.max_pending)?;
    let mut tenant_policies = Vec::new();
    if let Some(spec) = args.get("tenant-policy") {
        for entry in spec.split(',').filter(|s| !s.is_empty()) {
            let (name, rest) = entry
                .split_once('=')
                .ok_or_else(|| format!("bad --tenant-policy entry {entry:?} (want NAME=WEIGHT[:RATE[:BURST[:PENDING]]])"))?;
            let mut policy = default_policy;
            let mut fields = rest.split(':');
            let parse_f64 = |field: Option<&str>, what: &str, current: f64| -> Result<f64, String> {
                match field {
                    None => Ok(current),
                    Some(v) => v
                        .parse()
                        .map_err(|_| format!("bad {what} in --tenant-policy {entry:?}: {v}")),
                }
            };
            policy.weight = parse_f64(fields.next(), "weight", policy.weight)?;
            policy.rate_per_sec = parse_f64(fields.next(), "rate", policy.rate_per_sec)?;
            policy.burst = parse_f64(fields.next(), "burst", policy.burst)?;
            if let Some(v) = fields.next() {
                policy.max_pending = v
                    .parse()
                    .map_err(|_| format!("bad pending in --tenant-policy {entry:?}: {v}"))?;
            }
            if fields.next().is_some() {
                return Err(format!("too many fields in --tenant-policy {entry:?}"));
            }
            tenant_policies.push((name.to_string(), policy));
        }
    }
    Ok((default_policy, tenant_policies))
}

/// Socket front end: one epoll reactor multiplexing every connection
/// onto the batched service.
fn serve_listen(
    args: &Args,
    addr: &str,
    service: PlfService,
    dataset: plf_repro::plfd::DatasetId,
    model: SiteModel,
    drain_deadline: Duration,
    shutdown: plf_net::ShutdownFlag,
) -> Result<(), String> {
    let (default_policy, tenant_policies) = parse_tenant_policies(args)?;
    let mut net_cfg = plf_net::NetServerConfig::default();
    net_cfg.default_policy = default_policy;
    net_cfg.tenant_policies = tenant_policies;
    net_cfg.max_connections = args.parse_num("max-connections", net_cfg.max_connections)?;
    net_cfg.drain_timeout = drain_deadline;
    let counters = plf_repro::phylo::metrics::NetCounters::new();
    let journaled = service.journaled();
    let server = plf_net::NetServer::bind(
        addr,
        service,
        dataset,
        model,
        net_cfg,
        shutdown,
        std::sync::Arc::clone(&counters),
    )
    .map_err(|e| format!("{addr}: {e}"))?;
    let local = server.local_addr();
    if let Some(path) = args.get("port-file") {
        std::fs::write(path, format!("{}\n", local.port())).map_err(|e| format!("{path}: {e}"))?;
    }
    eprintln!(
        "plfd: listening on {local}{}",
        if journaled { " (journaled)" } else { "" }
    );
    let (mut service, report) = server.run().map_err(|e| format!("serve: {e}"))?;
    // The reactor already resolved or answered every staged job; this
    // drain flushes the journal and settles any service-side tail.
    let drain = service.drain(drain_deadline);
    eprintln!(
        "plfd: drained — {} resolved, {} pending at deadline, journal {} ({:.3} s); \
         {} conn(s) accepted, {} job(s) completed over the wire, {} unresolved at drain",
        drain.resolved,
        drain.pending_at_deadline,
        if drain.journal_flushed { "flushed" } else { "not flushed" },
        drain.elapsed.as_secs_f64(),
        report.accepted,
        report.completed,
        report.unresolved
    );
    let summary = serde_json::json!({
        "service": (service.snapshot()),
        "net": (counters.snapshot()),
        "reactor": (report)
    });
    drop(service);
    eprintln!(
        "{}",
        serde_json::to_string_pretty(&summary).map_err(|e| e.to_string())?
    );
    Ok(())
}

/// Stdio front end: the original line protocol, kept for piping and
/// scripting. Stdin is switched to non-blocking and multiplexed in the
/// same loop that polls the shutdown flag — no reader side thread.
fn serve_stdio(
    mut service: PlfService,
    dataset: plf_repro::plfd::DatasetId,
    model: &SiteModel,
    drain_deadline: Duration,
    shutdown: plf_net::ShutdownFlag,
    journaled: bool,
) -> Result<(), String> {
    eprintln!(
        "plfd: serving on stdio — {} worker(s), queue capacity {}, unit {} patterns{}",
        service.n_workers(),
        service.queue_capacity(),
        service.unit_patterns(),
        if journaled { ", journaled" } else { "" }
    );
    plf_net::poll::set_nonblocking_fd(0, true).map_err(|e| format!("stdin: {e}"))?;
    let result = serve_stdio_loop(&mut service, dataset, model, drain_deadline, &shutdown);
    // Restore stdin's flags even on error: the fd may be a shared
    // terminal that outlives this process.
    let _ = plf_net::poll::set_nonblocking_fd(0, false);
    result?;
    let snapshot = service.snapshot();
    drop(service);
    eprintln!(
        "{}",
        serde_json::to_string_pretty(&snapshot).map_err(|e| e.to_string())?
    );
    Ok(())
}

fn serve_stdio_loop(
    service: &mut PlfService,
    dataset: plf_repro::plfd::DatasetId,
    model: &SiteModel,
    drain_deadline: Duration,
    shutdown: &plf_net::ShutdownFlag,
) -> Result<(), String> {
    let print_outcome = |id: u64, outcome: JobOutcome| match outcome {
        JobOutcome::Completed {
            ln_likelihood,
            wait,
            service,
            backend,
        } => println!(
            "ok id={id} lnl={ln_likelihood:.6} wait_ms={:.3} service_ms={:.3} backend={backend}",
            wait.as_secs_f64() * 1e3,
            service.as_secs_f64() * 1e3
        ),
        JobOutcome::Failed { error } => println!("fail id={id} error={error}"),
        JobOutcome::Cancelled => println!("cancelled id={id}"),
        JobOutcome::DeadlineMissed => println!("deadline id={id}"),
    };
    let mut pending: std::collections::VecDeque<(u64, plf_repro::plfd::JobTicket)> =
        std::collections::VecDeque::new();
    let mut buf: Vec<u8> = Vec::new();
    let mut chunk = [0u8; 4096];
    let mut next_id: u64 = 0;
    let mut signalled = false;
    let stdin = std::io::stdin();
    loop {
        if shutdown.is_requested() {
            signalled = true;
            break;
        }
        // Flush responses that are already resolved, preserving order.
        while let Some((fid, ticket)) = pending.front() {
            match ticket.try_wait() {
                Some(outcome) => {
                    print_outcome(*fid, outcome);
                    pending.pop_front();
                }
                None => break,
            }
        }
        match std::io::Read::read(&mut stdin.lock(), &mut chunk) {
            Ok(0) => {
                // EOF: a trailing line without a newline still counts.
                if !buf.is_empty() {
                    let tail = String::from_utf8_lossy(&buf).into_owned();
                    stdio_handle_line(service, dataset, model, &tail, &mut next_id, &mut pending);
                }
                break;
            }
            Ok(n) => {
                buf.extend_from_slice(chunk.get(..n).unwrap_or(&[]));
                while let Some(pos) = buf.iter().position(|&b| b == b'\n') {
                    let line: Vec<u8> = buf.drain(..=pos).collect();
                    let line = String::from_utf8_lossy(&line).into_owned();
                    stdio_handle_line(service, dataset, model, &line, &mut next_id, &mut pending);
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                // Idle tick; the top of the loop flushes outcomes and
                // polls the shutdown flag.
                std::thread::sleep(Duration::from_millis(20));
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(format!("stdin: {e}")),
        }
    }
    // Graceful drain: resolve the admitted backlog (bounded on a
    // signal), flush the journal, answer every outstanding request,
    // and exit 0 — an acknowledged job is never abandoned.
    if signalled {
        eprintln!(
            "plfd: shutdown signal received — draining {} outstanding job(s) (bound {:.1} s)",
            pending.len(),
            drain_deadline.as_secs_f64()
        );
    }
    let drain = service.drain(drain_deadline);
    for (id, ticket) in pending {
        match ticket.try_wait() {
            Some(outcome) => print_outcome(id, outcome),
            None => println!("error id={id} msg=unresolved at drain deadline"),
        }
    }
    eprintln!(
        "plfd: drained — {} resolved, {} pending at deadline, journal {} ({:.3} s)",
        drain.resolved,
        drain.pending_at_deadline,
        if drain.journal_flushed { "flushed" } else { "not flushed" },
        drain.elapsed.as_secs_f64()
    );
    Ok(())
}

/// Handle one stdio request line: parse, submit, and answer admission
/// errors immediately (accepted jobs answer later, in order).
fn stdio_handle_line(
    service: &PlfService,
    dataset: plf_repro::plfd::DatasetId,
    model: &SiteModel,
    line: &str,
    next_id: &mut u64,
    pending: &mut std::collections::VecDeque<(u64, plf_repro::plfd::JobTicket)>,
) {
    let line = line.trim();
    if line.is_empty() || line.starts_with('#') {
        return;
    }
    *next_id += 1;
    let id = *next_id;
    match parse_serve_request(line, dataset, model) {
        Err(msg) => println!("error id={id} msg={msg}"),
        Ok(spec) => match service.submit(spec) {
            Ok(ticket) => pending.push_back((id, ticket)),
            Err(SubmitError::QueueFull { retry_after, jobs_ahead }) => println!(
                "reject id={id} retry_after_ms={:.3} jobs_ahead={jobs_ahead}",
                retry_after.as_secs_f64() * 1e3
            ),
            Err(SubmitError::Overloaded { retry_after, jobs_ahead }) => println!(
                "overloaded id={id} retry_after_ms={:.3} jobs_ahead={jobs_ahead}",
                retry_after.as_secs_f64() * 1e3
            ),
            Err(err) => println!("error id={id} msg={err}"),
        },
    }
}

/// Parse one `serve` request line: `key=value` tokens followed by the
/// Newick tree (the first token starting with `(`).
fn parse_serve_request(
    line: &str,
    dataset: plf_repro::plfd::DatasetId,
    model: &SiteModel,
) -> Result<JobSpec, String> {
    let mut tenant = "default".to_string();
    let mut priority = Priority::Normal;
    let mut deadline = None;
    let mut tree = None;
    for token in line.split_whitespace() {
        if token.starts_with('(') {
            tree = Some(Tree::from_newick(token).map_err(|e| e.to_string())?);
            continue;
        }
        let Some((key, value)) = token.split_once('=') else {
            return Err(format!("expected key=value or a Newick tree, got {token:?}"));
        };
        match key {
            "tenant" => tenant = value.to_string(),
            "priority" => {
                priority = Priority::parse(value)
                    .ok_or_else(|| format!("bad priority {value:?} (high|normal)"))?;
            }
            "deadline_ms" => {
                let ms: f64 = value
                    .parse()
                    .map_err(|_| format!("bad deadline_ms {value:?}"))?;
                if !(ms.is_finite() && ms >= 0.0) {
                    return Err(format!("bad deadline_ms {value:?}"));
                }
                deadline = Some(Duration::from_secs_f64(ms / 1e3));
            }
            other => return Err(format!("unknown key {other:?}")),
        }
    }
    let tree = tree.ok_or("missing Newick tree")?;
    let mut spec = JobSpec::new(tenant, dataset, tree, model.clone()).with_priority(priority);
    if let Some(d) = deadline {
        spec = spec.with_deadline(d);
    }
    Ok(spec)
}

const LOADGEN_USAGE: &str = "plfr loadgen — drive a plfd service with a seeded job stream

USAGE (in-process, bit-checked against the scalar reference):
  plfr loadgen [--jobs 256] [--taxa 10] [--patterns 1000] [--seed 2009]
               [--backend NAME[,NAME...]] [--workers 4]
               [--concurrency N | --serial | --qps Q]   (submission discipline)
               [--tenants 4] [--high-frac 0.125] [--cancel-frac 0.0] [--deadline-ms D]
               [--duration SECONDS]                     (stop submitting after this long)
               [--queue-capacity K] [--batch-jobs N] [--batch-units N] [--linger-ms F]
               [--no-check]                             (skip bit-identity verification)
               [--strict-deadlines]                     (missed deadlines fail the run)
               [--json] [--out FILE]

USAGE (network, against `plfr serve --listen`):
  plfr loadgen --connect ADDR [--connections 64] [--jobs 512] [--tenants 4]
               [--pipeline 1]          (outstanding jobs per connection)
               [--churn N]             (reconnect as the next tenant every N jobs; 0 = off)
               [--high-every N]        (every Nth job is high priority)
               [--seed 2009] [--duration SECONDS]
               [--json] [--out FILE]

In-process mode: default is a closed loop with every job outstanding
at once (maximum batching pressure); --serial submits one job at a
time; --qps switches to an open loop at the target rate. Every
completed log-likelihood is recomputed on the serial scalar reference
and must match bit-for-bit.

Network mode: one event-driven reactor drives --connections concurrent
sockets (10k+ scales on one thread), retrying Reject frames with the
server's retry_after hints under pinned idempotency keys, and reports
end-to-end p50/p99/p999 latency. An acknowledged (Completed/Failed/
Cancelled/DeadlineMissed) job that the generator cannot account for is
a lost ack and fails the run.

EXIT CODE: 0 on success. Non-zero when any job is lost (resolved
without an outcome / acknowledged but unaccounted), when any completed
result is not bit-identical to the serial reference (in-process), or —
with --strict-deadlines — when any job misses its deadline. Rejections
and sheds are retried internally and never affect the exit code.";

/// Network load generator: `plfr loadgen --connect ADDR`.
fn cmd_loadgen_net(args: &Args, addr: &str) -> Result<(), String> {
    let mut cfg = plf_net::NetLoadConfig::default();
    cfg.connections = args.parse_num("connections", cfg.connections)?;
    cfg.jobs = args.parse_num("jobs", cfg.jobs)?;
    cfg.tenants = args.parse_num("tenants", cfg.tenants)?;
    cfg.pipeline = args.parse_num("pipeline", cfg.pipeline)?;
    cfg.churn_every = args.parse_num("churn", cfg.churn_every)?;
    cfg.high_every = args.parse_num("high-every", cfg.high_every)?;
    cfg.seed = args.parse_num("seed", cfg.seed)?;
    if cfg.connections == 0 || cfg.jobs == 0 {
        return Err("--connections and --jobs must be at least 1".into());
    }
    if let Some(v) = args.get("duration") {
        let secs: f64 = v
            .parse()
            .map_err(|_| format!("bad value for --duration: {v}"))?;
        if !(secs.is_finite() && secs > 0.0) {
            return Err(format!("bad value for --duration: {v}"));
        }
        cfg.deadline = Duration::from_secs_f64(secs);
    }
    let report = plf_net::loadgen::run(addr, &cfg).map_err(|e| format!("loadgen: {addr}: {e}"))?;

    let json = serde_json::to_string_pretty(&report).map_err(|e| e.to_string())?;
    if let Some(path) = args.get("out") {
        std::fs::write(path, format!("{json}\n")).map_err(|e| format!("{path}: {e}"))?;
    }
    if args.flag("json") {
        println!("{json}");
    } else {
        println!(
            "connections:      {} concurrent ({} opened, {} churn reconnects, {} failures)",
            report.connections, report.connections_opened, report.reconnects,
            report.connection_failures
        );
        println!(
            "resolved:         {} completed / {} failed / {} cancelled / {} deadline-missed / {} rejected-final / {} errors",
            report.completed, report.failed, report.cancelled, report.deadline_missed,
            report.rejected_final, report.errors
        );
        println!(
            "admission:        {} rejects seen, {} retries issued",
            report.rejects_seen, report.retries
        );
        println!(
            "throughput:       {:.1} jobs/s over {:.3} s",
            report.throughput_jobs_per_s,
            report.wall_ms / 1e3
        );
        println!(
            "latency:          p50 {:.2} ms, p99 {:.2} ms, p999 {:.2} ms (max {:.2}, mean {:.2})",
            report.latency_ms.p50,
            report.latency_ms.p99,
            report.latency_ms.p999,
            report.latency_ms.max,
            report.latency_ms.mean
        );
        println!("lost acks:        {}", report.lost_acks);
    }
    if report.lost_acks > 0 {
        return Err(format!(
            "{} acknowledged job(s) lost over the wire",
            report.lost_acks
        ));
    }
    if report.completed == 0 {
        return Err("no job completed over the wire".into());
    }
    Ok(())
}

fn cmd_loadgen(args: &Args) -> Result<(), String> {
    if args.flag("help") {
        println!("{LOADGEN_USAGE}");
        return Ok(());
    }
    if let Some(addr) = args.get("connect") {
        let addr = addr.to_string();
        return cmd_loadgen_net(args, &addr);
    }
    let jobs: usize = args.parse_num("jobs", 256)?;
    let taxa: usize = args.parse_num("taxa", 10)?;
    let patterns: usize = args.parse_num("patterns", 1000)?;
    let seed: u64 = args.parse_num("seed", 2009)?;
    if jobs == 0 {
        return Err("--jobs must be at least 1".into());
    }
    let mode = if args.flag("serial") {
        LoadMode::Closed { concurrency: 1 }
    } else if let Some(qps) = args.get("qps") {
        let qps: f64 = qps.parse().map_err(|_| format!("bad value for --qps: {qps}"))?;
        if !(qps.is_finite() && qps > 0.0) {
            return Err(format!("bad value for --qps: {qps}"));
        }
        LoadMode::Open { qps }
    } else {
        LoadMode::Closed {
            concurrency: args.parse_num("concurrency", jobs)?,
        }
    };
    let deadline = match args.get("deadline-ms") {
        None => None,
        Some(v) => {
            let ms: f64 = v.parse().map_err(|_| format!("bad value for --deadline-ms: {v}"))?;
            Some(Duration::from_secs_f64(ms.max(0.0) / 1e3))
        }
    };
    let cfg = LoadgenConfig {
        jobs,
        mode,
        tenants: args.parse_num("tenants", 4)?,
        high_fraction: args.parse_num("high-frac", 0.125)?,
        cancel_fraction: args.parse_num("cancel-frac", 0.0)?,
        deadline,
        seed,
        check: !args.flag("no-check"),
        max_duration: match args.get("duration") {
            None => None,
            Some(v) => {
                let secs: f64 = v
                    .parse()
                    .map_err(|_| format!("bad value for --duration: {v}"))?;
                Some(Duration::from_secs_f64(secs.max(0.0)))
            }
        },
        ..LoadgenConfig::default()
    };

    let ds = seqgen::generate(seqgen::DatasetSpec::new(taxa, patterns), seed);
    let model = seqgen::default_model();
    let taxa_names = ds.data.taxa().to_vec();
    let service = PlfService::new(service_config(args)?, service_backends(args)?);
    let dataset = service.register_dataset(ds.data);
    let report = plf_repro::plfd::loadgen::run(&service, dataset, &taxa_names, &model, &cfg)
        .map_err(|e| format!("loadgen: {e}"))?;
    service.shutdown();

    let json = serde_json::to_string_pretty(&report).map_err(|e| e.to_string())?;
    if let Some(path) = args.get("out") {
        std::fs::write(path, format!("{json}\n")).map_err(|e| format!("{path}: {e}"))?;
    }
    if args.flag("json") {
        println!("{json}");
    } else {
        println!(
            "submitted:        {} jobs ({} tenants, seed {seed})",
            report.submitted, cfg.tenants
        );
        println!(
            "resolved:         {} completed / {} failed / {} cancelled / {} deadline-missed",
            report.completed, report.failed, report.cancelled, report.deadline_missed
        );
        println!(
            "admission:        {} rejections retried, {} sheds retried",
            report.rejections_retried, report.sheds_retried
        );
        println!(
            "throughput:       {:.1} jobs/s over {:.3} s",
            report.jobs_per_second, report.wall_seconds
        );
        println!(
            "latency:          p50 {:.2} ms, p95 {:.2} ms (wait {:.2} + service {:.2} mean)",
            report.p50_latency_ms, report.p95_latency_ms, report.mean_wait_ms, report.mean_service_ms
        );
        println!(
            "batches:          {} ({:.0}% occupancy)",
            report.service.batches,
            100.0 * report.service.batch_occupancy()
        );
        println!(
            "verification:     {} checked, {} bit mismatches, {} lost",
            report.checked, report.bit_mismatches, report.lost
        );
    }
    if report.lost > 0 {
        return Err(format!("{} job(s) resolved without an outcome", report.lost));
    }
    if report.bit_mismatches > 0 {
        return Err(format!(
            "{} completed result(s) were not bit-identical to the serial reference",
            report.bit_mismatches
        ));
    }
    if args.flag("strict-deadlines") && report.deadline_missed > 0 {
        return Err(format!(
            "{} job(s) missed their deadline (--strict-deadlines)",
            report.deadline_missed
        ));
    }
    Ok(())
}

const CHAOS_USAGE: &str = "plfr chaos — seeded self-healing soak against an in-process plfd service

USAGE:
  plfr chaos [--jobs 200] [--seed 2009] [--taxa 6] [--patterns 48]
             [--backend NAME[,NAME...]] [--workers 3] [--concurrency 64]
             [--corrupt-rate P] [--dma-rate P] [--pcie-rate P] [--launch-rate P]
             [--panic-rate P] [--kill-rate P] [--blackout-rate P]
             [--kills W@N[,W@N...] | --kills none]
             [--blackouts W@NxF[,W@NxF...] | --blackouts none]
             [--high-frac 0.125] [--cancel-frac 0.05]
             [--deadline-frac F] [--deadline-ms D]
             [--max-wall 60] [--recovery-bound 10]
             [--crash N] [--journal-dir DIR]
             [--json] [--out FILE]

Drives a seeded job stream while killing dispatch workers, blacking
out worker backends, and rolling the PLF_FAULT_* kernel fault sites,
then asserts the service healed itself: zero lost jobs, every
completed log-likelihood bit-identical to the serial scalar reference,
the blacked-out backend's circuit breaker observed open and re-closed
via half-open probes, and worker-pool capacity restored before exit.

--kills W@N kills dispatch worker W just before the N-th submission
(0-based); the watchdog must respawn it and re-queue its in-flight
jobs. --blackouts W@NxF makes worker W's backend refuse the next F
jobs and probes starting just before submission N; the breaker must
open, then re-close once the blackout lifts. Pass `none` to either to
disable the default schedule (one kill, one blackout). The --*-rate
knobs mirror the PLF_FAULT_* environment variables and add seeded
random faults on top of the schedule. A comma list in --backend cycles
names across worker slots (and respawns), so a mixed pool can exercise
the Cell DMA and GPU PCIe fault sites in one soak.

--crash N switches to the crash-durability drill instead of the soak:
the harness journals the job stream, hard-aborts the service after N
acknowledged admissions (journal frozen exactly as `kill -9` would
leave it, plus a deliberately torn tail record), restarts on the same
journal directory (--journal-dir, default a per-seed temp dir),
recovers, and resubmits every job under its original idempotency key.
It asserts zero lost acknowledged jobs, every resubmission deduped
(no duplicate execution), the torn tail truncated and counted, and
bit-identical results vs. the uncrashed same-seed reference.

EXIT CODE: 0 when every invariant held; 1 otherwise (the JSON
report's `failures` list names each violated invariant).";

/// Parse `W@N` items: kill worker `W` just before submission `N`.
fn parse_kills(spec: &str) -> Result<Vec<ScheduledKill>, String> {
    if spec == "none" {
        return Ok(Vec::new());
    }
    spec.split(',')
        .filter(|s| !s.is_empty())
        .map(|item| {
            let (w, n) = item
                .split_once('@')
                .ok_or_else(|| format!("bad --kills item {item:?} (expected W@N)"))?;
            Ok(ScheduledKill {
                worker: w.parse().map_err(|_| format!("bad worker in {item:?}"))?,
                after_jobs: n.parse().map_err(|_| format!("bad job index in {item:?}"))?,
            })
        })
        .collect()
}

/// Parse `W@N` or `W@NxF` items: black out worker `W`'s backend for
/// `F` jobs (default 6) starting just before submission `N`.
fn parse_blackouts(spec: &str) -> Result<Vec<ScheduledBlackout>, String> {
    if spec == "none" {
        return Ok(Vec::new());
    }
    spec.split(',')
        .filter(|s| !s.is_empty())
        .map(|item| {
            let (w, rest) = item
                .split_once('@')
                .ok_or_else(|| format!("bad --blackouts item {item:?} (expected W@N[xF])"))?;
            let (n, f) = match rest.split_once('x') {
                Some((n, f)) => (
                    n,
                    f.parse()
                        .map_err(|_| format!("bad failure count in {item:?}"))?,
                ),
                None => (rest, 6),
            };
            Ok(ScheduledBlackout {
                worker: w.parse().map_err(|_| format!("bad worker in {item:?}"))?,
                after_jobs: n.parse().map_err(|_| format!("bad job index in {item:?}"))?,
                failures: f,
            })
        })
        .collect()
}

fn parse_rate(args: &Args, key: &str, default: f64) -> Result<f64, String> {
    let v: f64 = args.parse_num(key, default)?;
    if !(v.is_finite() && (0.0..=1.0).contains(&v)) {
        return Err(format!("bad value for --{key}: {v} (expected 0..=1)"));
    }
    Ok(v)
}

fn cmd_chaos(args: &Args) -> Result<(), String> {
    if args.flag("help") {
        println!("{CHAOS_USAGE}");
        return Ok(());
    }
    let mut cfg = ChaosConfig::default();
    cfg.jobs = args.parse_num("jobs", cfg.jobs)?;
    cfg.seed = args.parse_num("seed", cfg.seed)?;
    cfg.taxa = args.parse_num("taxa", cfg.taxa)?;
    cfg.patterns = args.parse_num("patterns", cfg.patterns)?;
    cfg.workers = args.parse_num("workers", cfg.workers)?;
    cfg.concurrency = args.parse_num("concurrency", cfg.concurrency)?;
    cfg.corrupt_rate = parse_rate(args, "corrupt-rate", cfg.corrupt_rate)?;
    cfg.dma_rate = parse_rate(args, "dma-rate", cfg.dma_rate)?;
    cfg.pcie_rate = parse_rate(args, "pcie-rate", cfg.pcie_rate)?;
    cfg.launch_rate = parse_rate(args, "launch-rate", cfg.launch_rate)?;
    cfg.panic_rate = parse_rate(args, "panic-rate", cfg.panic_rate)?;
    cfg.kill_rate = parse_rate(args, "kill-rate", cfg.kill_rate)?;
    cfg.blackout_rate = parse_rate(args, "blackout-rate", cfg.blackout_rate)?;
    cfg.high_fraction = parse_rate(args, "high-frac", cfg.high_fraction)?;
    cfg.cancel_fraction = parse_rate(args, "cancel-frac", cfg.cancel_fraction)?;
    cfg.deadline_fraction = parse_rate(args, "deadline-frac", cfg.deadline_fraction)?;
    if cfg.jobs == 0 {
        return Err("--jobs must be at least 1".into());
    }
    if cfg.workers == 0 {
        return Err("--workers must be at least 1".into());
    }
    if let Some(spec) = args.get("kills") {
        cfg.scheduled_kills = parse_kills(spec)?;
    }
    if let Some(spec) = args.get("blackouts") {
        cfg.scheduled_blackouts = parse_blackouts(spec)?;
    }
    for k in &cfg.scheduled_kills {
        if k.worker >= cfg.workers {
            return Err(format!("--kills worker {} out of range (workers {})", k.worker, cfg.workers));
        }
    }
    for b in &cfg.scheduled_blackouts {
        if b.worker >= cfg.workers {
            return Err(format!(
                "--blackouts worker {} out of range (workers {})",
                b.worker, cfg.workers
            ));
        }
    }
    if let Some(v) = args.get("deadline-ms") {
        let ms: f64 = v.parse().map_err(|_| format!("bad value for --deadline-ms: {v}"))?;
        if !(ms.is_finite() && ms > 0.0) {
            return Err(format!("bad value for --deadline-ms: {v}"));
        }
        cfg.deadline = Duration::from_secs_f64(ms / 1e3);
    }
    let max_wall: f64 = args.parse_num("max-wall", cfg.max_wall.as_secs_f64())?;
    if !(max_wall.is_finite() && max_wall > 0.0) {
        return Err(format!("bad value for --max-wall: {max_wall}"));
    }
    cfg.max_wall = Duration::from_secs_f64(max_wall);
    let recovery: f64 = args.parse_num("recovery-bound", cfg.recovery_bound.as_secs_f64())?;
    if !(recovery.is_finite() && recovery > 0.0) {
        return Err(format!("bad value for --recovery-bound: {recovery}"));
    }
    cfg.recovery_bound = Duration::from_secs_f64(recovery);
    if let Some(v) = args.get("crash") {
        let n: usize = v.parse().map_err(|_| format!("bad value for --crash: {v}"))?;
        if n == 0 {
            return Err("--crash must be at least 1".into());
        }
        if n > cfg.jobs {
            return Err(format!("--crash {n} exceeds --jobs {}", cfg.jobs));
        }
        cfg.crash_at = Some(n);
    }
    if let Some(dir) = args.get("journal-dir") {
        if cfg.crash_at.is_none() {
            return Err("--journal-dir requires --crash (the durability drill)".into());
        }
        cfg.journal_dir = Some(std::path::PathBuf::from(dir));
    }

    // Validate every backend name up front so the factory below cannot
    // fail; inside the soak a build failure silently degrading to
    // scalar would mask a misconfiguration. A comma list cycles names
    // across worker slots (and watchdog respawns) — bit-identity makes
    // the heterogeneous pool transparent to the result checks.
    let names: Vec<String> = args
        .get("backend")
        .unwrap_or("scalar")
        .split(',')
        .filter(|s| !s.is_empty())
        .map(str::to_string)
        .collect();
    if names.is_empty() {
        return Err("empty --backend list".into());
    }
    for name in &names {
        backend_by_name(name, None)?;
    }
    let next = std::sync::atomic::AtomicUsize::new(0);
    let factory: ChaosBackendFactory = std::sync::Arc::new(move |inj| {
        let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let name = &names[i % names.len()];
        let primary = backend_by_name(name, inj.as_ref())
            .unwrap_or_else(|_| Box::new(ScalarBackend));
        match inj {
            // Kernel-level faults (corruption, DMA/PCIe, launch) are
            // armed: run under the resilient executor so they surface
            // as retries/fallbacks, not bit-divergent results.
            Some(_) => Box::new(ResilientBackend::new(primary).with_fallback(Box::new(ScalarBackend))),
            None => primary,
        }
    });

    let report = run_chaos(&cfg, &factory);
    let json = serde_json::to_string_pretty(&report).map_err(|e| e.to_string())?;
    if let Some(path) = args.get("out") {
        std::fs::write(path, format!("{json}\n")).map_err(|e| format!("{path}: {e}"))?;
    }
    if args.flag("json") {
        println!("{json}");
    } else {
        println!(
            "soak:             {} jobs, seed {}, {} workers ({backend})",
            report.submitted,
            report.seed,
            report.workers,
            backend = args.get("backend").unwrap_or("scalar")
        );
        println!(
            "resolved:         {} completed / {} failed / {} cancelled / {} deadline-missed / {} lost",
            report.completed, report.failed, report.cancelled, report.deadline_missed, report.lost
        );
        println!(
            "faults:           {} kill(s), {} blackout(s) scheduled; {} injector fault(s) fired",
            report.kills_scheduled, report.blackouts_scheduled, report.injector_faults_fired
        );
        println!(
            "self-healing:     {} respawn(s), {} requeued, breakers {} opened / {} re-closed, probes {} ok / {} failed",
            report.service.watchdog_respawns,
            report.service.requeued_jobs,
            report.service.breaker_opened,
            report.service.breaker_closed,
            report.service.probes_ok,
            report.service.probes_failed
        );
        println!(
            "recovery:         {} in {:.3} s — {} / {} workers alive, breakers [{}]",
            if report.recovered { "recovered" } else { "NOT RECOVERED" },
            report.recovery_seconds,
            report.alive_workers_at_exit,
            report.workers,
            report.breaker_states_at_exit.join(", ")
        );
        println!(
            "verification:     {} checked, {} bit mismatches ({:.3} s wall)",
            report.checked, report.bit_mismatches, report.wall_seconds
        );
        if let Some(d) = &report.durability {
            println!(
                "crash drill:      aborted after {} acknowledged job(s); {} replayed \
                 ({} past deadline, {} unrecoverable), {} torn record(s) truncated",
                d.crashed_after,
                d.recovery.replayed,
                d.recovery.expired,
                d.recovery.unrecoverable,
                d.recovery.truncated_records
            );
            println!(
                "durability:       {} resubmission(s) deduped (no duplicate execution), \
                 {} acknowledged job(s) lost",
                d.resubmits_deduped, d.lost_acknowledged
            );
        }
        for f in &report.failures {
            println!("FAILED INVARIANT: {f}");
        }
        println!("result:           {}", if report.pass { "PASS" } else { "FAIL" });
    }
    if !report.pass {
        return Err(format!(
            "chaos soak failed: {}",
            report.failures.join("; ")
        ));
    }
    Ok(())
}

fn usage() -> &'static str {
    "plfr — Phylogenetic Likelihood Function reproduction CLI

USAGE:
  plfr simulate   --taxa N --patterns M [--seed S] --out FILE [--tree-out FILE]
  plfr likelihood --alignment FILE [--tree FILE] [--backend NAME] [--shape A] [--pinvar P] [--rates K]
  plfr mcmc       --alignment FILE [--tree FILE] [--generations N] [--seed S]
                  [--backend NAME] [--incremental] [--sample-every K] [--trace PREFIX] [--pinvar P]
                  [--mc3 N --heat H --swap-every K --parallel]
  plfr consensus  --trees FILE.t [--burn-in F] [--threshold F]
  plfr serve      --alignment FILE [--backend NAME[,NAME...]] [--workers N] (see plfr serve --help)
  plfr loadgen    [--jobs 256] [--taxa 10] [--patterns 1000] [--json]      (see plfr loadgen --help)
  plfr chaos      [--jobs 200] [--seed 2009] [--kills 0@40] [--json]       (see plfr chaos --help)
  plfr backends

Formats: FASTA (.fa/.fasta) or PHYLIP; trees are Newick."
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = argv.split_first() else {
        eprintln!("{}", usage());
        return ExitCode::FAILURE;
    };
    let result = match cmd.as_str() {
        "backends" => {
            for b in BACKEND_NAMES {
                println!("{b}");
            }
            Ok(())
        }
        "simulate" | "likelihood" | "mcmc" | "consensus" | "serve" | "loadgen" | "chaos" => {
            match Args::parse(rest) {
                Err(e) => Err(e),
                Ok(args) => match cmd.as_str() {
                    "simulate" => cmd_simulate(&args),
                    "likelihood" => cmd_likelihood(&args),
                    "consensus" => cmd_consensus(&args),
                    "serve" => cmd_serve(&args),
                    "loadgen" => cmd_loadgen(&args),
                    "chaos" => cmd_chaos(&args),
                    _ => cmd_mcmc(&args),
                },
            }
        }
        "help" | "--help" | "-h" => {
            println!("{}", usage());
            Ok(())
        }
        other => Err(format!("unknown command {other:?}\n\n{}", usage())),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &[&str]) -> Args {
        Args::parse(&s.iter().map(|x| x.to_string()).collect::<Vec<_>>()).unwrap()
    }

    #[test]
    fn arg_parsing_values_and_flags() {
        let a = args(&["--taxa", "10", "--incremental", "--out", "x.fa"]);
        assert_eq!(a.get("taxa"), Some("10"));
        assert_eq!(a.get("out"), Some("x.fa"));
        assert!(a.flag("incremental"));
        assert!(!a.flag("verbose"));
        assert_eq!(a.parse_num::<usize>("taxa", 0).unwrap(), 10);
        assert_eq!(a.parse_num::<usize>("patterns", 7).unwrap(), 7);
    }

    #[test]
    fn arg_parsing_rejects_positional() {
        assert!(Args::parse(&["oops".to_string()]).is_err());
    }

    #[test]
    fn bad_numbers_error() {
        let a = args(&["--taxa", "ten"]);
        assert!(a.parse_num::<usize>("taxa", 0).is_err());
    }

    #[test]
    fn all_backend_names_resolve() {
        for name in BACKEND_NAMES {
            assert!(backend_by_name(name, None).is_ok(), "{name}");
        }
        assert!(backend_by_name("quantum", None).is_err());
    }

    fn tmpfile(name: &str, contents: &str) -> String {
        let path = std::env::temp_dir().join(format!("plfr-test-{}-{name}", std::process::id()));
        std::fs::write(&path, contents).unwrap();
        path.to_string_lossy().into_owned()
    }

    #[test]
    fn read_alignment_dispatches_on_content() {
        let fasta = tmpfile("a.txt", ">x\nACGT\n>y\nACGA\n");
        let aln = read_alignment(&fasta).unwrap();
        assert_eq!(aln.n_taxa(), 2);
        let phylip = tmpfile("b.txt", "2 4\nx ACGT\ny ACGA\n");
        let aln = read_alignment(&phylip).unwrap();
        assert_eq!(aln.n_sites(), 4);
        assert!(read_alignment("/nonexistent/path").is_err());
        std::fs::remove_file(fasta).ok();
        std::fs::remove_file(phylip).ok();
    }

    #[test]
    fn tree_loading_and_generation() {
        let fasta = tmpfile("c.fa", ">x\nACGT\n>y\nACGA\n>z\nACGT\n");
        let data = read_alignment(&fasta).unwrap().compress();
        // No --tree: a random tree over the taxa is generated.
        let a = args(&[]);
        let t = load_or_make_tree(&a, &data, 1).unwrap();
        assert_eq!(t.n_leaves(), 3);
        // Deterministic for the same seed.
        let t2 = load_or_make_tree(&a, &data, 1).unwrap();
        assert_eq!(t.to_newick(), t2.to_newick());
        // Explicit --tree wins.
        let nwk = tmpfile("d.nwk", "(x:0.1,y:0.1,z:0.1);\n");
        let a = args(&["--tree", &nwk]);
        let t3 = load_or_make_tree(&a, &data, 1).unwrap();
        assert!((t3.tree_length() - 0.3).abs() < 1e-12);
        std::fs::remove_file(fasta).ok();
        std::fs::remove_file(nwk).ok();
    }

    #[test]
    fn simulate_roundtrips_through_cli_paths() {
        let out = std::env::temp_dir().join(format!("plfr-sim-{}.fasta", std::process::id()));
        let tree_out = std::env::temp_dir().join(format!("plfr-sim-{}.nwk", std::process::id()));
        let a = args(&[
            "--taxa", "5",
            "--patterns", "40",
            "--seed", "3",
            "--out", out.to_str().unwrap(),
            "--tree-out", tree_out.to_str().unwrap(),
        ]);
        cmd_simulate(&a).unwrap();
        let aln = read_alignment(out.to_str().unwrap()).unwrap();
        assert_eq!(aln.n_taxa(), 5);
        assert_eq!(aln.compress().n_patterns(), 40);
        let tree_text = std::fs::read_to_string(&tree_out).unwrap();
        assert!(Tree::from_newick(tree_text.trim()).is_ok());
        std::fs::remove_file(out).ok();
        std::fs::remove_file(tree_out).ok();
    }

    #[test]
    fn chaos_schedule_parsing() {
        assert_eq!(parse_kills("none").unwrap(), vec![]);
        assert_eq!(
            parse_kills("0@40,2@120").unwrap(),
            vec![
                ScheduledKill { worker: 0, after_jobs: 40 },
                ScheduledKill { worker: 2, after_jobs: 120 },
            ]
        );
        assert!(parse_kills("0-40").is_err());
        assert_eq!(parse_blackouts("none").unwrap(), vec![]);
        assert_eq!(
            parse_blackouts("1@80x6,0@10").unwrap(),
            vec![
                ScheduledBlackout { worker: 1, after_jobs: 80, failures: 6 },
                ScheduledBlackout { worker: 0, after_jobs: 10, failures: 6 },
            ]
        );
        assert!(parse_blackouts("1@80xsix").is_err());
    }

    #[test]
    fn model_building_from_args() {
        let a = args(&["--shape", "1.5", "--pinvar", "0.2", "--rates", "8"]);
        let m = build_model(&a).unwrap();
        assert_eq!(m.n_rates(), 8);
        assert_eq!(m.pinvar(), 0.2);
        let bad = args(&["--pinvar", "1.5"]);
        assert!(build_model(&bad).is_err());
    }
}

//! # plf-repro
//!
//! A from-scratch Rust reproduction of
//!
//! > *Fine-grain Parallelism using Multi-core, Cell/BE, and GPU Systems:
//! > Accelerating the Phylogenetic Likelihood Function* (ICPP 2009).
//!
//! The workspace implements the paper's entire stack: a MrBayes-style
//! Bayesian phylogenetics application (GTR+Γ likelihood + MCMC), a
//! Seq-Gen-style data generator, and the three parallel execution
//! targets — general-purpose multi-cores (rayon, real parallelism),
//! and execution-driven simulators of the IBM Cell/BE and of
//! CUDA-era NVIDIA GPUs, each paired with a calibrated timing model
//! that regenerates the paper's figures.
//!
//! This crate is the facade: it re-exports every sub-crate under one
//! namespace and provides a couple of cross-backend conveniences.
//!
//! ```
//! use plf_repro::prelude::*;
//!
//! // Generate a small data set the way the paper does (Seq-Gen style),
//! // then score it on every architecture.
//! let ds = plf_repro::seqgen::generate(DatasetSpec::new(8, 64), 42);
//! let model = plf_repro::seqgen::default_model();
//! let results = plf_repro::evaluate_on_all_backends(&ds.tree, &ds.data, &model).unwrap();
//! // Every backend computes the same likelihood (bitwise for the
//! // canonical-order kernels; within float tolerance for the
//! // row-wise/reduction variants, whose summation order differs).
//! for (name, lnl) in &results {
//!     assert!((lnl - results[0].1).abs() < 1e-2, "{name} disagrees");
//! }
//! ```

#![warn(missing_docs)]

pub use plf_cellbe as cellbe;
pub use plf_gpu as gpu;
pub use plf_mcmc as mcmc;
pub use plf_multicore as multicore;
pub use plf_net as net;
pub use plf_phylo as phylo;
pub use plf_seqgen as seqgen;
pub use plf_simcore as simcore;
pub use plfd;

/// One-stop imports for examples and downstream users.
pub mod prelude {
    pub use plf_cellbe::{CellBackend, CellModel};
    pub use plf_gpu::{GpuBackend, GpuModel, LaunchConfig, WorkDistribution};
    pub use plf_mcmc::{Chain, ChainOptions, Priors};
    pub use plf_multicore::{MultiCoreModel, PersistentPoolBackend, RayonBackend};
    pub use plf_phylo::prelude::*;
    pub use plf_seqgen::{Dataset, DatasetSpec};
    pub use plf_simcore::{table1, Breakdown, MachineModel, PlfWorkload};
    pub use plfd::{JobSpec, PlfService, ServiceConfig};
}

use phylo::alignment::PatternAlignment;
use phylo::kernels::{PlfBackend, ScalarBackend, Simd4Backend};
use phylo::likelihood::{LikelihoodError, TreeLikelihood};
use phylo::model::SiteModel;
use phylo::resilience::PlfError;
use phylo::tree::Tree;

/// Every functional backend in the workspace, ready to run.
///
/// The rayon backend uses all available cores; the Cell and GPU
/// backends use the paper's flagship configurations. Fails only if the
/// host thread pools cannot be constructed.
pub fn all_backends() -> Result<Vec<Box<dyn PlfBackend>>, PlfError> {
    let n_threads = std::thread::available_parallelism().map_or(4, |n| n.get());
    Ok(vec![
        Box::new(ScalarBackend),
        Box::new(Simd4Backend::col_wise()),
        Box::new(Simd4Backend::row_wise()),
        Box::new(multicore::RayonBackend::new(n_threads)?),
        Box::new(multicore::PersistentPoolBackend::new(n_threads)),
        Box::new(cellbe::CellBackend::ps3()),
        Box::new(cellbe::CellBackend::qs20()),
        Box::new(gpu::GpuBackend::gt8800()),
        Box::new(gpu::GpuBackend::gtx285()),
    ])
}

/// Compute the log-likelihood of `tree` over `data` under `model` on
/// every backend, returning `(backend name, lnL)` pairs.
pub fn evaluate_on_all_backends(
    tree: &Tree,
    data: &PatternAlignment,
    model: &SiteModel,
) -> Result<Vec<(String, f64)>, LikelihoodError> {
    let mut out = Vec::new();
    for mut backend in all_backends().map_err(LikelihoodError::Backend)? {
        let mut eval = TreeLikelihood::new(tree, data, model.clone())?;
        let lnl = eval.log_likelihood(tree, backend.as_mut())?;
        out.push((backend.name(), lnl));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use phylo::alignment::Alignment;

    #[test]
    fn all_backends_report_distinct_names() {
        let names: Vec<String> = all_backends().unwrap().iter().map(|b| b.name()).collect();
        let unique: std::collections::HashSet<&String> = names.iter().collect();
        assert_eq!(unique.len(), names.len(), "{names:?}");
        assert_eq!(names.len(), 9);
    }

    #[test]
    fn cross_backend_agreement_tiny() {
        let tree = Tree::from_newick("((a:0.1,b:0.2):0.05,c:0.3,d:0.4);").unwrap();
        let aln = Alignment::from_strings(&[
            ("a", "ACGTACGTAA"),
            ("b", "ACGTACGTAC"),
            ("c", "ACGAACGTTA"),
            ("d", "ACTTACGTAA"),
        ])
        .unwrap()
        .compress();
        let model = SiteModel::jc69();
        let results = evaluate_on_all_backends(&tree, &aln, &model).unwrap();
        let reference = results[0].1;
        for (name, lnl) in &results {
            if name.contains("rowwise") || name.contains("reduction") {
                assert!((lnl - reference).abs() < 1e-3, "{name}: {lnl} vs {reference}");
            } else {
                assert_eq!(*lnl, reference, "{name}");
            }
        }
    }
}
